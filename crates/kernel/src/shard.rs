//! Sharded multi-core simulation with conservative lookahead.
//!
//! A [`ShardTopology`] partitions a system into *logical processes* (LPs),
//! each a complete single-threaded [`Simulator`], connected by directed
//! [`links`](ShardTopology::add_link) with declared minimum latencies — the
//! lookahead sources. Bus bridges and FIFO-style streams are the natural
//! cut points: their transport latency is known statically, so an LP can
//! safely simulate ahead of its neighbors by exactly that amount (classic
//! conservative parallel discrete-event simulation à la Chandy–Misra–Bryant,
//! specialized to a barrier-synchronous window protocol).
//!
//! ## The window protocol
//!
//! The coordinator repeatedly computes, for every LP *i*, a horizon
//!
//! ```text
//! horizon(i) = min(end,
//!                  committed(i) + window,
//!                  min over incoming links l: committed(src(l)) + latency(l))
//! ```
//!
//! and has every LP `run_until` its horizon. Messages sent across a link
//! during a window are collected in per-link egress outboxes, stamped
//! `(deliver_time, link, seq)` by the coordinator in a deterministic order
//! (LP index, then send order), globally sorted by that stamp, and injected
//! into their destination LPs before the next window. Because a message
//! sent at time *t* on a link of latency *L* delivers at `t + L`, and the
//! destination's horizon never exceeds `committed(src) + L`, every message
//! arrives before the destination simulates past its delivery time —
//! conservative safety with zero rollbacks.
//!
//! ## Determinism
//!
//! The merge order, the horizon schedule, and the per-LP kernels are all
//! pure functions of the topology — none depends on how LPs are grouped
//! onto worker threads. Running with 1 shard (the single-threaded oracle,
//! executed inline on the calling thread like `set_legacy_timed_queue`'s
//! reference heap) or with N worker threads therefore produces bit-identical
//! results: same per-LP `(time, seq)` dispatch orders, same
//! [`KernelMetrics`], same [`Simulator::state_hash`] at every window. The
//! per-slice hashes are recorded in the [`ShardRunReport`] so a
//! parallel-vs-serial divergence (a plumbing bug) pinpoints the first bad
//! slice instead of requiring a full-state diff.
//!
//! Components are not `Send` (they may hold `Rc`s into model state), so LP
//! simulators are *built on the worker thread that owns them* from `Send`
//! builder closures; only plain data — link messages, horizons, hashes,
//! metrics — ever crosses threads.

use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;
use std::sync::mpsc;

use crate::component::Component;
use crate::error::{SimError, SimErrorKind, SimResult};
use crate::event::{ComponentId, Delay, Msg, StopReason};
use crate::json::{ju64, ju64_of, Json};
use crate::kernel::{Api, KernelMetrics, Simulator};
use crate::snapshot::{register_payload_codec, PayloadCodec};
use crate::time::{SimDuration, SimTime};

/// A message crossing a shard boundary: plain `Send` data, no trait
/// objects. `tag` identifies the message to the receiving model; `words`
/// carry the payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMsg {
    /// Model-defined discriminator (packet id, opcode, ...).
    pub tag: u64,
    /// Payload words.
    pub words: Vec<u64>,
}

/// What an ingress component receives: the original [`LinkMsg`] plus the
/// `(link, seq)` stamp the deterministic merge assigned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkPacket {
    /// Index of the link the message traveled on.
    pub link: usize,
    /// Per-link monotone sequence number (assigned in merge order).
    pub seq: u64,
    /// The message itself.
    pub msg: LinkMsg,
}

/// A directed cross-shard connection with a declared minimum latency (the
/// lookahead source) and a bounded per-window capacity.
#[derive(Debug, Clone)]
pub struct LinkInfo {
    /// Index in the topology's link table.
    pub index: usize,
    /// Channel name (used for egress component names and diagnostics).
    pub name: String,
    /// Source LP index.
    pub from: usize,
    /// Destination LP index.
    pub to: usize,
    /// Minimum transport latency; must be positive — this is the lookahead.
    pub min_latency: SimDuration,
    /// Maximum messages in flight per synchronization window.
    pub capacity: usize,
}

/// Default bounded-channel capacity per window.
pub const DEFAULT_LINK_CAPACITY: usize = 4096;

/// Builder closure: constructs one LP's simulator on its worker thread.
pub type LpBuild = Box<dyn FnOnce(&mut Simulator, &mut LpIo) -> SimResult<()> + Send>;
/// Probe closure: extracts a JSON summary from a finished LP.
pub type LpProbe = Box<dyn FnOnce(&mut Simulator) -> SimResult<Json> + Send>;

struct LpSpec {
    name: String,
    build: LpBuild,
    probe: Option<LpProbe>,
    weight: u64,
}

/// Per-LP wiring handed to the builder closure.
///
/// Egress components for every outgoing link are pre-registered (in link
/// declaration order, occupying the first component ids); the builder reads
/// their ids with [`LpIo::egress`] and must register an ingress target for
/// every incoming link with [`LpIo::set_ingress`].
pub struct LpIo {
    lp: usize,
    links: Vec<LinkInfo>,
    egress: Vec<(usize, ComponentId)>,
    ingress: Vec<(usize, Option<ComponentId>)>,
}

impl LpIo {
    /// This LP's index in the topology.
    pub fn lp(&self) -> usize {
        self.lp
    }

    /// Links touching this LP (outgoing and incoming).
    pub fn links(&self) -> &[LinkInfo] {
        &self.links
    }

    /// Outgoing link indices, in declaration order.
    pub fn outgoing(&self) -> Vec<usize> {
        self.egress.iter().map(|&(l, _)| l).collect()
    }

    /// Incoming link indices, in declaration order.
    pub fn incoming(&self) -> Vec<usize> {
        self.ingress.iter().map(|&(l, _)| l).collect()
    }

    /// The pre-registered egress component for an outgoing link. Send a
    /// [`LinkMsg`] to this component (any delay) to transmit on the link.
    pub fn egress(&self, link: usize) -> SimResult<ComponentId> {
        self.egress
            .iter()
            .find(|&&(l, _)| l == link)
            .map(|&(_, id)| id)
            .ok_or_else(|| shard_err(format!("link {link} is not an egress of LP {}", self.lp)))
    }

    /// A bound transmit handle for an outgoing link — the preferred way to
    /// wire a [`LinkEndpoint`] to its channel.
    pub fn tx(&self, link: usize) -> SimResult<LinkTx> {
        Ok(LinkTx {
            link,
            egress: self.egress(link)?,
        })
    }

    /// Declare which component receives [`LinkPacket`]s for an incoming
    /// link. Every incoming link must have exactly one ingress target.
    pub fn set_ingress(&mut self, link: usize, target: ComponentId) -> SimResult<()> {
        let lp = self.lp;
        let slot = self
            .ingress
            .iter_mut()
            .find(|(l, _)| *l == link)
            .ok_or_else(|| shard_err(format!("link {link} is not an ingress of LP {lp}")))?;
        slot.1 = Some(target);
        Ok(())
    }
}

/// A bound transmit handle for one outgoing link: the link index plus the
/// pre-registered egress component id. Components hold one of these per
/// outgoing channel and call [`LinkTx::send`] to transmit — the message is
/// delivered to the egress in the same timestep, stamped with the current
/// simulation time, and carried across the shard boundary by the
/// deterministic merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkTx {
    link: usize,
    egress: ComponentId,
}

impl LinkTx {
    /// Index of the link this handle transmits on.
    pub fn link(&self) -> usize {
        self.link
    }

    /// The egress component id (useful for models that pre-date the
    /// handle and address egress components directly).
    pub fn egress(&self) -> ComponentId {
        self.egress
    }

    /// Transmit a [`LinkMsg`] on this link. The message is stamped with
    /// the current simulation time and delivered to the peer LP no earlier
    /// than `now + min_latency` of the link.
    pub fn send(&self, api: &mut Api<'_>, msg: LinkMsg) {
        api.send(self.egress, msg, Delay::Delta);
    }
}

/// Adapter trait for components that terminate a cross-shard link — the
/// bus bridge stubs implement it, as does any model that forwards local
/// traffic into [`LinkMsg`] envelopes. The partitioner constructs the
/// endpoint, hands it its transmit handles via [`LinkEndpoint::attach_tx`],
/// then registers it as the ingress target of the matching reverse link.
pub trait LinkEndpoint: Component {
    /// Hand the endpoint a transmit handle for one of its outgoing links.
    /// Called once per outgoing link, in link declaration order, before
    /// the component is added to the simulator.
    fn attach_tx(&mut self, tx: LinkTx);
}

/// A partitioned system: LPs plus the links (cut points) between them.
#[derive(Default)]
pub struct ShardTopology {
    lps: Vec<LpSpec>,
    links: Vec<LinkInfo>,
}

impl ShardTopology {
    /// Empty topology.
    pub fn new() -> ShardTopology {
        ShardTopology::default()
    }

    /// Number of LPs.
    pub fn lp_count(&self) -> usize {
        self.lps.len()
    }

    /// Number of links.
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Add a logical process. The builder runs once, on the worker thread
    /// that owns the LP, against a fresh simulator whose egress components
    /// are already registered.
    pub fn add_lp(
        &mut self,
        name: &str,
        build: impl FnOnce(&mut Simulator, &mut LpIo) -> SimResult<()> + Send + 'static,
    ) -> usize {
        self.lps.push(LpSpec {
            name: name.to_string(),
            build: Box::new(build),
            probe: None,
            weight: 1,
        });
        self.lps.len() - 1
    }

    /// Attach a result probe to an LP; its JSON lands in the LP's report.
    pub fn set_probe(
        &mut self,
        lp: usize,
        probe: impl FnOnce(&mut Simulator) -> SimResult<Json> + Send + 'static,
    ) {
        if let Some(spec) = self.lps.get_mut(lp) {
            spec.probe = Some(Box::new(probe));
        }
    }

    /// Set an LP's load weight (relative cost estimate) for the
    /// [`partition_lps`] auto-partitioner. Default 1.
    pub fn set_weight(&mut self, lp: usize, weight: u64) {
        if let Some(spec) = self.lps.get_mut(lp) {
            spec.weight = weight;
        }
    }

    /// LP load weights, indexed by LP.
    pub fn weights(&self) -> Vec<u64> {
        self.lps.iter().map(|s| s.weight).collect()
    }

    /// Add a directed link from LP `from` to LP `to` with the given minimum
    /// transport latency (must be positive; validated at run time).
    pub fn add_link(
        &mut self,
        name: &str,
        from: usize,
        to: usize,
        min_latency: SimDuration,
    ) -> usize {
        let index = self.links.len();
        self.links.push(LinkInfo {
            index,
            name: name.to_string(),
            from,
            to,
            min_latency,
            capacity: DEFAULT_LINK_CAPACITY,
        });
        index
    }

    /// Override a link's bounded per-window capacity.
    pub fn set_link_capacity(&mut self, link: usize, capacity: usize) {
        if let Some(l) = self.links.get_mut(link) {
            l.capacity = capacity;
        }
    }

    fn validate(&self) -> SimResult<()> {
        if self.lps.is_empty() {
            return Err(shard_err("topology has no LPs"));
        }
        for l in &self.links {
            if l.from >= self.lps.len() || l.to >= self.lps.len() {
                return Err(shard_err(format!(
                    "link {:?} references LP {} out of {}",
                    l.name,
                    l.from.max(l.to),
                    self.lps.len()
                )));
            }
            if l.min_latency == SimDuration::ZERO {
                return Err(shard_err(format!(
                    "link {:?} has zero min latency; conservative lookahead requires a positive \
                     link latency",
                    l.name
                )));
            }
            if l.capacity == 0 {
                return Err(shard_err(format!("link {:?} has zero capacity", l.name)));
            }
        }
        Ok(())
    }
}

/// How to execute a [`ShardTopology`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker threads. `1` runs every LP inline on the calling thread —
    /// the single-threaded oracle the parallel modes are checked against.
    pub shards: usize,
    /// End horizon: every LP runs to exactly this time.
    pub end: SimTime,
    /// Maximum window an LP advances per round. Defaults to the smallest
    /// link latency; also bounds egress outbox growth between barriers.
    pub window: Option<SimDuration>,
    /// Record a [`Simulator::state_hash`] for every LP at every window.
    pub hash_slices: bool,
    /// Explicit LP→shard assignment; defaults to [`partition_lps`] over the
    /// LP weights.
    pub assign: Option<Vec<usize>>,
    /// Structured-trace ring capacity per LP ([`crate::observe`]); `None`
    /// leaves every LP recorder disabled. Recorded events are harvested
    /// into [`LpReport::trace_events`] at the end of the run.
    pub trace_capacity: Option<usize>,
}

impl ShardConfig {
    /// Run to `end` on one shard (the sequential oracle).
    pub fn to(end: SimTime) -> ShardConfig {
        ShardConfig {
            shards: 1,
            end,
            window: None,
            hash_slices: false,
            assign: None,
            trace_capacity: None,
        }
    }

    /// Set the worker-thread count.
    pub fn shards(mut self, n: usize) -> ShardConfig {
        self.shards = n.max(1);
        self
    }

    /// Set the per-round window cap.
    pub fn window(mut self, w: SimDuration) -> ShardConfig {
        self.window = Some(w);
        self
    }

    /// Enable per-slice state hashing.
    pub fn hash_slices(mut self, on: bool) -> ShardConfig {
        self.hash_slices = on;
        self
    }

    /// Enable per-LP structured tracing with the given ring capacity.
    pub fn trace(mut self, capacity: usize) -> ShardConfig {
        self.trace_capacity = Some(capacity);
        self
    }
}

// ---------------------------------------------------------------------------
// Shard profile: per-round observability of the window protocol
// ---------------------------------------------------------------------------

/// Which term of the horizon minimum bound an LP's window:
/// `horizon(i) = min(end, committed(i)+window, min_l committed(src(l))+lat(l))`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HorizonBound {
    /// The global end horizon — the LP is finishing, not stalled.
    End,
    /// The per-round window cap — the LP advanced as far as allowed.
    Window,
    /// An incoming link's `committed(src) + latency` — the LP is waiting
    /// on its neighbor; this link's lookahead is the bottleneck.
    Link(usize),
}

impl HorizonBound {
    /// Stable lowercase label (`"end"`, `"window"`, `"link"`).
    pub fn label(self) -> &'static str {
        match self {
            HorizonBound::End => "end",
            HorizonBound::Window => "window",
            HorizonBound::Link(_) => "link",
        }
    }
}

/// One LP's record of one synchronization round. The simulated-time
/// fields (`start_fs`, `horizon_fs`, `bound`, `sent`, `received`,
/// `last_inject`) are deterministic — identical at any shard count; the
/// wall-clock fields (`busy_ns`, `blocked_ns`) describe this execution
/// only.
#[derive(Debug, Clone, PartialEq)]
pub struct LpWindow {
    /// Round index (0-based).
    pub round: u64,
    /// Committed time entering the round, femtoseconds.
    pub start_fs: u64,
    /// Committed time reached (the horizon), femtoseconds.
    pub horizon_fs: u64,
    /// Which min-term bound the horizon.
    pub bound: HorizonBound,
    /// Cross-shard messages this LP sent during the round.
    pub sent: u64,
    /// Envelopes injected into this LP at the start of the round.
    pub received: u64,
    /// `(link, seq)` of the last envelope injected this round — the
    /// newest cross-shard influence on this LP's state, which is what a
    /// divergence report wants to name.
    pub last_inject: Option<(usize, u64)>,
    /// Wall nanoseconds spent inside `run_until` (simulating).
    pub busy_ns: u64,
    /// Wall nanoseconds the round barrier outlasted this LP's work — an
    /// upper bound on barrier stall (includes coordinator merge time).
    pub blocked_ns: u64,
}

/// Per-LP profile totals plus the per-round records.
#[derive(Debug, Clone, PartialEq)]
pub struct LpProfile {
    /// LP index.
    pub lp: usize,
    /// LP name.
    pub name: String,
    /// Load weight the partitioner balanced with.
    pub weight: u64,
    /// Per-round records, in round order.
    pub windows: Vec<LpWindow>,
    /// Total wall nanoseconds simulating.
    pub busy_ns: u64,
    /// Total wall nanoseconds blocked at round barriers.
    pub blocked_ns: u64,
    /// Total cross-shard messages sent.
    pub sent: u64,
    /// Total envelopes received.
    pub received: u64,
}

impl LpProfile {
    /// Fraction of this LP's wall time spent simulating (0 when no wall
    /// time was recorded).
    pub fn busy_fraction(&self) -> f64 {
        let total = self.busy_ns + self.blocked_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    /// Fraction of this LP's wall time spent blocked at round barriers.
    pub fn blocked_fraction(&self) -> f64 {
        let total = self.busy_ns + self.blocked_ns;
        if total == 0 {
            0.0
        } else {
            self.blocked_ns as f64 / total as f64
        }
    }
}

/// Per-link profile totals.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkProfile {
    /// Link index in the topology's link table.
    pub link: usize,
    /// Link name.
    pub name: String,
    /// Source LP.
    pub from: usize,
    /// Destination LP.
    pub to: usize,
    /// Declared minimum latency (the lookahead), femtoseconds.
    pub min_latency_fs: u64,
    /// Messages carried over the whole run.
    pub messages: u64,
    /// Merge-queue high water: the most messages this link carried in any
    /// single window (compare against [`LinkInfo::capacity`]).
    pub peak_window_messages: u64,
    /// Rounds in which this link's `committed(src)+latency` term bound
    /// some LP's horizon — how often its lookahead was the bottleneck.
    pub bound_windows: u64,
}

/// Whole-run profile of the window protocol, assembled by the
/// coordinator. Carried on [`ShardRunReport::profile`]; NOT part of
/// [`ShardRunReport::same_outcome`], because the wall-clock fields differ
/// between executions (the simulated-time fields do not).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardProfile {
    /// Per-LP profiles, indexed by LP.
    pub lps: Vec<LpProfile>,
    /// Per-link profiles, indexed by link.
    pub links: Vec<LinkProfile>,
    /// Synchronization rounds executed.
    pub rounds: u64,
    /// Rounds that moved zero cross-shard messages — pure barrier
    /// overhead where the coordinator only re-checked global quiescence.
    pub quiescent_rounds: u64,
    /// Rounds at whose barrier some LP still held open obligations, so
    /// its local deadlock verdict was deferred to the coordinator's
    /// global end-of-run check.
    pub deadlock_deferrals: u64,
}

impl ShardProfile {
    /// The link whose lookahead bound LP horizons most often — the
    /// critical link limiting achievable speedup. Ties resolve to the
    /// lower link index; `None` when no link ever bound a horizon.
    pub fn critical_link(&self) -> Option<&LinkProfile> {
        self.links
            .iter()
            .filter(|l| l.bound_windows > 0)
            .max_by(|a, b| {
                a.bound_windows
                    .cmp(&b.bound_windows)
                    .then(b.link.cmp(&a.link))
            })
    }

    /// Distill the parallel-efficiency report from the per-LP totals.
    pub fn efficiency(&self) -> EfficiencyReport {
        EfficiencyReport::from_lps(&self.lps)
    }

    /// JSON summary (totals only; the per-window records are exported by
    /// the merged trace instead).
    pub fn json(&self) -> Json {
        let lps = self
            .lps
            .iter()
            .map(|l| {
                Json::obj()
                    .with("lp", ju64(l.lp as u64))
                    .with("name", Json::from(l.name.as_str()))
                    .with("weight", ju64(l.weight))
                    .with("busy_ns", ju64(l.busy_ns))
                    .with("blocked_ns", ju64(l.blocked_ns))
                    .with("sent", ju64(l.sent))
                    .with("received", ju64(l.received))
            })
            .collect();
        let links = self
            .links
            .iter()
            .map(|l| {
                Json::obj()
                    .with("link", ju64(l.link as u64))
                    .with("name", Json::from(l.name.as_str()))
                    .with("from", ju64(l.from as u64))
                    .with("to", ju64(l.to as u64))
                    .with("min_latency_fs", ju64(l.min_latency_fs))
                    .with("messages", ju64(l.messages))
                    .with("peak_window_messages", ju64(l.peak_window_messages))
                    .with("bound_windows", ju64(l.bound_windows))
            })
            .collect();
        Json::obj()
            .with("rounds", ju64(self.rounds))
            .with("quiescent_rounds", ju64(self.quiescent_rounds))
            .with("deadlock_deferrals", ju64(self.deadlock_deferrals))
            .with("lps", Json::Arr(lps))
            .with("links", Json::Arr(links))
    }
}

/// One LP's row in the parallel-efficiency report.
#[derive(Debug, Clone, PartialEq)]
pub struct LpEfficiency {
    /// LP index.
    pub lp: usize,
    /// LP name.
    pub name: String,
    /// Load weight the partitioner balanced with.
    pub weight: u64,
    /// Fraction of wall time spent simulating.
    pub busy_fraction: f64,
    /// Fraction of wall time blocked at round barriers.
    pub blocked_fraction: f64,
    /// This LP's share of the total busy time across all LPs — the
    /// *measured* load.
    pub busy_share: f64,
    /// This LP's share of the total declared weight — the *predicted*
    /// load the partitioner balanced with. A large gap between the two
    /// shares means the weight estimate misled the partitioner.
    pub weight_share: f64,
}

/// Parallel-efficiency report: per-LP busy/blocked fractions and the load
/// imbalance of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct EfficiencyReport {
    /// Per-LP rows, indexed by LP.
    pub lps: Vec<LpEfficiency>,
    /// Total busy time over total LP wall time (`1.0` = every LP
    /// simulated the whole run; low values mean barrier stalls dominate).
    pub parallel_efficiency: f64,
    /// Max per-LP busy time over mean per-LP busy time (`1.0` = perfectly
    /// balanced; `n` = one LP did all the work).
    pub load_imbalance: f64,
}

impl EfficiencyReport {
    /// Compute the report from per-LP profile totals (pure math, testable
    /// on hand-built profiles).
    pub fn from_lps(lps: &[LpProfile]) -> EfficiencyReport {
        let total_busy: u64 = lps.iter().map(|l| l.busy_ns).sum();
        let total_wall: u64 = lps.iter().map(|l| l.busy_ns + l.blocked_ns).sum();
        let total_weight: u64 = lps.iter().map(|l| l.weight).sum();
        let max_busy = lps.iter().map(|l| l.busy_ns).max().unwrap_or(0);
        let mean_busy = if lps.is_empty() {
            0.0
        } else {
            total_busy as f64 / lps.len() as f64
        };
        let rows = lps
            .iter()
            .map(|l| LpEfficiency {
                lp: l.lp,
                name: l.name.clone(),
                weight: l.weight,
                busy_fraction: l.busy_fraction(),
                blocked_fraction: l.blocked_fraction(),
                busy_share: if total_busy == 0 {
                    0.0
                } else {
                    l.busy_ns as f64 / total_busy as f64
                },
                weight_share: if total_weight == 0 {
                    0.0
                } else {
                    l.weight as f64 / total_weight as f64
                },
            })
            .collect();
        EfficiencyReport {
            lps: rows,
            parallel_efficiency: if total_wall == 0 {
                0.0
            } else {
                total_busy as f64 / total_wall as f64
            },
            load_imbalance: if mean_busy == 0.0 {
                1.0
            } else {
                max_busy as f64 / mean_busy
            },
        }
    }

    /// JSON rendering (bench artifacts and history records).
    pub fn json(&self) -> Json {
        let lps = self
            .lps
            .iter()
            .map(|l| {
                Json::obj()
                    .with("lp", ju64(l.lp as u64))
                    .with("name", Json::from(l.name.as_str()))
                    .with("weight", ju64(l.weight))
                    .with("busy_fraction", Json::Num(l.busy_fraction))
                    .with("blocked_fraction", Json::Num(l.blocked_fraction))
                    .with("busy_share", Json::Num(l.busy_share))
                    .with("weight_share", Json::Num(l.weight_share))
            })
            .collect();
        Json::obj()
            .with("parallel_efficiency", Json::Num(self.parallel_efficiency))
            .with("load_imbalance", Json::Num(self.load_imbalance))
            .with("lps", Json::Arr(lps))
    }

    /// Human-readable rendering for the experiments CLI.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "parallel efficiency {:.1}% (load imbalance {:.2}x, 1.00x = balanced)",
            100.0 * self.parallel_efficiency,
            self.load_imbalance
        );
        for l in &self.lps {
            let _ = writeln!(
                out,
                "  lp{} {:16} busy {:5.1}%  blocked {:5.1}%  load share {:5.1}% (weight predicted {:5.1}%)",
                l.lp,
                l.name,
                100.0 * l.busy_fraction,
                100.0 * l.blocked_fraction,
                100.0 * l.busy_share,
                100.0 * l.weight_share
            );
        }
        out
    }
}

/// Human-readable description of the first diverging slice between two
/// runs — what [`ShardRunReport::first_divergence`] locates, resolved to
/// names, times and hashes so the CLI can print it without a debugger.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceDetail {
    /// Diverging LP index.
    pub lp: usize,
    /// Diverging LP name.
    pub lp_name: String,
    /// Window index of the first mismatching state hash.
    pub window: usize,
    /// Simulated time the window committed to, femtoseconds (from the
    /// profile; `None` when the profile has no record for the window).
    pub time_fs: Option<u64>,
    /// `(link, seq)` of the last envelope injected into the LP during the
    /// diverging window — the newest cross-shard influence on its state.
    pub last_inject: Option<(usize, u64)>,
    /// State hash recorded by `self`.
    pub hash_self: Option<u64>,
    /// State hash recorded by `other`.
    pub hash_other: Option<u64>,
}

impl std::fmt::Display for DivergenceDetail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "LP {} ({:?}) diverged at window {}",
            self.lp, self.lp_name, self.window
        )?;
        if let Some(t) = self.time_fs {
            write!(f, ", t={t} fs")?;
        }
        match self.last_inject {
            Some((link, seq)) => write!(f, ", last injected envelope (link {link}, seq {seq})")?,
            None => write!(f, ", no envelope injected that window")?,
        }
        let h = |v: Option<u64>| match v {
            Some(h) => format!("{h:#018x}"),
            None => "<missing>".to_string(),
        };
        write!(f, ": hash {} vs {}", h(self.hash_self), h(self.hash_other))
    }
}

/// Per-LP results of a sharded run. Everything in here is deterministic:
/// equal across any shard count for the same topology and config.
#[derive(Debug, Clone, PartialEq)]
pub struct LpReport {
    /// LP name.
    pub name: String,
    /// Final simulated time in femtoseconds (always the end horizon).
    pub final_time_fs: u64,
    /// Kernel counters for this LP's simulator.
    pub metrics: KernelMetrics,
    /// One state hash per window (empty unless `hash_slices` was set).
    pub slice_hashes: Vec<u64>,
    /// State hash at the end horizon.
    pub state_hash: u64,
    /// Outstanding obligations at the end (nonzero only in error paths).
    pub obligations: u64,
    /// Output of the LP's probe closure, or `Null`.
    pub probe: Json,
    /// Structured-trace events harvested from this LP's [`Recorder`]
    /// (empty unless [`ShardConfig::trace_capacity`] was set). Event
    /// timestamps are simulated time, so the harvest is deterministic and
    /// participates in [`ShardRunReport::same_outcome`].
    ///
    /// [`Recorder`]: crate::observe::Recorder
    pub trace_events: Vec<crate::observe::SimEvent>,
    /// Component names of this LP's simulator, indexed by [`ComponentId`]
    /// (always harvested; the trace merge resolves sources against it).
    pub component_names: Vec<String>,
    /// Ring capacity the recorder ran with (0 = tracing disabled).
    pub trace_capacity: u64,
    /// Events emitted into the recorder over the whole run.
    pub trace_emitted: u64,
    /// Events evicted because the ring wrapped (nonzero means
    /// [`LpReport::trace_events`] is a suffix, not the full history).
    pub trace_dropped: u64,
}

/// Result of [`run_sharded`].
#[derive(Debug, Clone, Default)]
pub struct ShardRunReport {
    /// Per-LP reports, indexed by LP.
    pub lps: Vec<LpReport>,
    /// Synchronization rounds executed.
    pub rounds: u64,
    /// Cross-shard messages delivered.
    pub messages: u64,
    /// Messages still in flight at the end horizon (sent in the final
    /// rounds with delivery at or beyond the end; never delivered, in
    /// every execution mode alike).
    pub in_flight_at_end: u64,
    /// Worker threads actually used (not part of the deterministic outcome).
    pub shards: usize,
    /// Wall-clock run time (not part of the deterministic outcome).
    pub wall_seconds: f64,
    /// Window-protocol profile (not part of the deterministic outcome:
    /// its wall-clock fields differ between executions).
    pub profile: ShardProfile,
}

impl ShardRunReport {
    /// Deterministic-outcome equality: per-LP reports, round count and
    /// message count — everything except the execution-mode fields
    /// (`shards`, `wall_seconds`, `profile`).
    pub fn same_outcome(&self, other: &ShardRunReport) -> bool {
        self.lps == other.lps
            && self.rounds == other.rounds
            && self.messages == other.messages
            && self.in_flight_at_end == other.in_flight_at_end
    }

    /// Locate the first diverging slice between two runs of the same
    /// topology: `(lp index, window index)` of the earliest state-hash
    /// mismatch, window-major so the earliest *time* divergence wins.
    /// `None` when all recorded hashes agree.
    pub fn first_divergence(&self, other: &ShardRunReport) -> Option<(usize, usize)> {
        let windows = self
            .lps
            .iter()
            .chain(other.lps.iter())
            .map(|l| l.slice_hashes.len())
            .max()?;
        for w in 0..windows {
            for (i, (a, b)) in self.lps.iter().zip(other.lps.iter()).enumerate() {
                let (ha, hb) = (a.slice_hashes.get(w), b.slice_hashes.get(w));
                if ha != hb {
                    return Some((i, w));
                }
            }
        }
        None
    }

    /// Resolve [`ShardRunReport::first_divergence`] against this run's
    /// profile into a printable [`DivergenceDetail`] — the window's
    /// committed time, the last envelope injected into the diverging LP
    /// that window, and both state hashes. `None` when the runs agree.
    pub fn divergence_detail(&self, other: &ShardRunReport) -> Option<DivergenceDetail> {
        let (lp, window) = self.first_divergence(other)?;
        let rec = self.profile.lps.get(lp).and_then(|p| p.windows.get(window));
        Some(DivergenceDetail {
            lp,
            lp_name: self.lps.get(lp).map(|l| l.name.clone()).unwrap_or_default(),
            window,
            time_fs: rec.map(|w| w.horizon_fs),
            last_inject: rec.and_then(|w| w.last_inject),
            hash_self: self
                .lps
                .get(lp)
                .and_then(|l| l.slice_hashes.get(window))
                .copied(),
            hash_other: other
                .lps
                .get(lp)
                .and_then(|l| l.slice_hashes.get(window))
                .copied(),
        })
    }

    /// Total kernel dispatches across all LPs.
    pub fn total_dispatched(&self) -> u64 {
        self.lps.iter().map(|l| l.metrics.dispatched).sum()
    }

    /// JSON rendering (for experiment output and bench artifacts).
    pub fn json(&self) -> Json {
        let lps = self
            .lps
            .iter()
            .map(|l| {
                Json::obj()
                    .with("name", Json::from(l.name.as_str()))
                    .with("final_time_fs", ju64(l.final_time_fs))
                    .with("dispatched", ju64(l.metrics.dispatched))
                    .with("state_hash", ju64(l.state_hash))
                    .with("slices", ju64(l.slice_hashes.len() as u64))
                    .with("probe", l.probe.clone())
            })
            .collect();
        Json::obj()
            .with("lps", Json::Arr(lps))
            .with("rounds", ju64(self.rounds))
            .with("messages", ju64(self.messages))
            .with("in_flight_at_end", ju64(self.in_flight_at_end))
            .with("shards", ju64(self.shards as u64))
            .with("total_dispatched", ju64(self.total_dispatched()))
            .with("wall_seconds", Json::Num(self.wall_seconds))
            .with("profile", self.profile.json())
    }
}

/// Longest-processing-time greedy partition: assign each LP (heaviest
/// first, ties by index) to the least-loaded shard (ties by shard index).
/// Deterministic, and within 4/3 of the optimal makespan — good enough for
/// load-balancing event loops whose weights are estimates anyway.
pub fn partition_lps(weights: &[u64], shards: usize) -> Vec<usize> {
    let s = shards.max(1).min(weights.len().max(1));
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(weights[i]), i));
    let mut load = vec![0u128; s];
    let mut assign = vec![0usize; weights.len()];
    for i in order {
        let mut best = 0usize;
        for (k, &l) in load.iter().enumerate() {
            if l < load[best] {
                best = k;
            }
        }
        assign[i] = best;
        load[best] += u128::from(weights[i].max(1));
    }
    assign
}

fn shard_err(msg: impl Into<String>) -> SimError {
    SimError::new(SimErrorKind::Validation, msg)
}

// ---------------------------------------------------------------------------
// Egress plumbing
// ---------------------------------------------------------------------------

type Outbox = Rc<RefCell<Vec<(SimTime, LinkMsg)>>>;

/// Kernel-provided component that collects [`LinkMsg`]s sent to it into a
/// per-link outbox the executor drains at every horizon.
struct LinkEgress {
    outbox: Outbox,
}

impl Component for LinkEgress {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        if let Ok(m) = msg.user::<LinkMsg>() {
            self.outbox.borrow_mut().push((api.now(), m));
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        // The executor drains the outbox at every horizon and hashes are
        // only taken between windows, so a non-empty outbox here means the
        // protocol broke.
        if self.outbox.borrow().is_empty() {
            Ok(Json::Null)
        } else {
            Err(crate::snapshot::err("link egress outbox not drained"))
        }
    }

    fn restore(&mut self, _state: &Json) -> SimResult<()> {
        Ok(())
    }
}

/// Codec so [`LinkPacket`]s pending in a timed queue survive snapshots and
/// participate in state hashes.
fn link_packet_codec() -> PayloadCodec {
    PayloadCodec {
        name: "drcf-shard-link-packet",
        encode: |any| {
            let p = any.downcast_ref::<LinkPacket>()?;
            Some(
                Json::obj()
                    .with("link", ju64(p.link as u64))
                    .with("seq", ju64(p.seq))
                    .with("tag", ju64(p.msg.tag))
                    .with(
                        "words",
                        Json::Arr(p.msg.words.iter().map(|&w| ju64(w)).collect()),
                    ),
            )
        },
        decode: |data| {
            let link = ju64_of(data.get("link")?)? as usize;
            let seq = ju64_of(data.get("seq")?)?;
            let tag = ju64_of(data.get("tag")?)?;
            let words = data
                .get("words")?
                .as_arr()?
                .iter()
                .map(ju64_of)
                .collect::<Option<Vec<u64>>>()?;
            Some(Box::new(LinkPacket {
                link,
                seq,
                msg: LinkMsg { tag, words },
            }))
        },
    }
}

// ---------------------------------------------------------------------------
// Per-LP runtime (lives on exactly one thread)
// ---------------------------------------------------------------------------

struct LpRuntime {
    lp: usize,
    name: String,
    sim: Simulator,
    outboxes: Vec<(usize, Outbox)>,
    ingress: Vec<(usize, ComponentId)>,
    slice_hashes: Vec<u64>,
    probe: Option<LpProbe>,
}

/// A message drained from an egress outbox: `(send time, link, payload)`.
type SentMsg = (SimTime, usize, LinkMsg);

#[derive(Debug)]
struct Envelope {
    deliver_at: SimTime,
    link: usize,
    seq: u64,
    msg: LinkMsg,
}

struct LpRoundCmd {
    lp: usize,
    horizon: SimTime,
    inject: Vec<Envelope>,
    hash: bool,
}

/// What one LP reports back from one window: the drained egress traffic
/// plus the observability payload the coordinator folds into the profile.
struct LpRoundOut {
    lp: usize,
    sent: Vec<SentMsg>,
    /// Wall nanoseconds spent inside `run_until`.
    busy_ns: u64,
    /// Open obligations at the round barrier (deadlock verdict deferred).
    obligations: u64,
}

fn build_lp(
    spec: LpSpec,
    lp: usize,
    links: &[LinkInfo],
    trace_capacity: Option<usize>,
) -> SimResult<LpRuntime> {
    register_payload_codec(link_packet_codec());
    let mut sim = Simulator::new();
    sim.set_defer_deadlock(true);
    if let Some(cap) = trace_capacity {
        sim.enable_observe(cap);
    }

    let touching: Vec<LinkInfo> = links
        .iter()
        .filter(|l| l.from == lp || l.to == lp)
        .cloned()
        .collect();
    let mut outboxes: Vec<(usize, Outbox)> = Vec::new();
    let mut egress: Vec<(usize, ComponentId)> = Vec::new();
    for l in links.iter().filter(|l| l.from == lp) {
        let outbox: Outbox = Rc::new(RefCell::new(Vec::new()));
        let id = sim.add(
            &format!("egress:{}", l.name),
            LinkEgress {
                outbox: Rc::clone(&outbox),
            },
        );
        outboxes.push((l.index, outbox));
        egress.push((l.index, id));
    }
    let mut io = LpIo {
        lp,
        links: touching,
        egress,
        ingress: links
            .iter()
            .filter(|l| l.to == lp)
            .map(|l| (l.index, None))
            .collect(),
    };
    (spec.build)(&mut sim, &mut io)?;

    let mut ingress = Vec::with_capacity(io.ingress.len());
    for (link, target) in io.ingress {
        let target = target.ok_or_else(|| {
            shard_err(format!(
                "LP {:?} did not register an ingress target for link {link}",
                spec.name
            ))
        })?;
        if target >= sim.component_count() {
            return Err(shard_err(format!(
                "LP {:?} ingress target {target} for link {link} is not a component",
                spec.name
            )));
        }
        ingress.push((link, target));
    }
    Ok(LpRuntime {
        lp,
        name: spec.name,
        sim,
        outboxes,
        ingress,
        slice_hashes: Vec::new(),
        probe: spec.probe,
    })
}

fn lp_round(rt: &mut LpRuntime, cmd: LpRoundCmd) -> SimResult<LpRoundOut> {
    let lp = cmd.lp;
    // Inject this window's envelopes, already globally sorted by
    // (deliver_at, link, seq): `post` assigns kernel sequence numbers in
    // call order, so the injection order *is* the dispatch tiebreak and is
    // identical in every execution mode.
    for env in cmd.inject {
        let now = rt.sim.now();
        if env.deliver_at < now {
            return Err(SimError::new(
                SimErrorKind::Internal,
                format!(
                    "conservative lookahead violated: link {} message for t={} arrived at LP \
                     {:?} already at t={}",
                    env.link,
                    env.deliver_at.as_fs(),
                    rt.name,
                    now.as_fs()
                ),
            ));
        }
        let target = rt
            .ingress
            .iter()
            .find(|&&(l, _)| l == env.link)
            .map(|&(_, t)| t)
            .ok_or_else(|| {
                shard_err(format!(
                    "LP {:?} has no ingress for link {}",
                    rt.name, env.link
                ))
            })?;
        let delay = Delay::Time(env.deliver_at.saturating_since(now));
        rt.sim.post(
            target,
            LinkPacket {
                link: env.link,
                seq: env.seq,
                msg: env.msg,
            },
            delay,
        );
    }

    let sim_started = std::time::Instant::now();
    match rt.sim.run_until(cmd.horizon)? {
        StopReason::Quiescent | StopReason::TimeLimit => {}
        StopReason::Stopped => {
            return Err(shard_err(format!(
                "LP {:?} called Api::stop, which sharded runs do not support",
                rt.name
            )));
        }
    }
    let busy_ns = sim_started.elapsed().as_nanos() as u64;

    let mut sent: Vec<SentMsg> = Vec::new();
    for (link, outbox) in &rt.outboxes {
        for (at, msg) in outbox.borrow_mut().drain(..) {
            sent.push((at, *link, msg));
        }
    }
    if cmd.hash {
        rt.slice_hashes.push(rt.sim.state_hash()?);
    }
    Ok(LpRoundOut {
        lp,
        sent,
        busy_ns,
        obligations: rt.sim.obligations(),
    })
}

fn lp_finish(mut rt: LpRuntime) -> SimResult<LpReport> {
    let state_hash = rt.sim.state_hash()?;
    let probe = match rt.probe.take() {
        Some(p) => p(&mut rt.sim)?,
        None => Json::Null,
    };
    let component_names = (0..rt.sim.component_count())
        .map(|id| rt.sim.component_name(id).to_string())
        .collect();
    let recorder = rt.sim.recorder();
    let (trace_capacity, trace_emitted, trace_dropped) = (
        recorder.capacity() as u64,
        recorder.emitted(),
        recorder.dropped(),
    );
    Ok(LpReport {
        name: rt.name,
        final_time_fs: rt.sim.now().as_fs(),
        metrics: rt.sim.metrics(),
        slice_hashes: rt.slice_hashes,
        state_hash,
        obligations: rt.sim.obligations(),
        probe,
        trace_events: rt.sim.observe_events(),
        component_names,
        trace_capacity,
        trace_emitted,
        trace_dropped,
    })
}

// ---------------------------------------------------------------------------
// Execution pools: inline (the oracle) and worker threads
// ---------------------------------------------------------------------------

trait ShardPool {
    /// Run one window on every LP; returns per-LP round outputs sorted by
    /// LP index.
    fn round(&mut self, cmds: Vec<LpRoundCmd>) -> SimResult<Vec<LpRoundOut>>;
    /// Tear down and collect per-LP reports, sorted by LP index.
    fn finish(&mut self) -> SimResult<Vec<LpReport>>;
}

struct InlinePool {
    rts: Vec<LpRuntime>,
}

impl ShardPool for InlinePool {
    fn round(&mut self, cmds: Vec<LpRoundCmd>) -> SimResult<Vec<LpRoundOut>> {
        let mut out = Vec::with_capacity(cmds.len());
        for cmd in cmds {
            let rt = self
                .rts
                .iter_mut()
                .find(|r| r.lp == cmd.lp)
                .ok_or_else(|| shard_err(format!("no runtime for LP {}", cmd.lp)))?;
            out.push(lp_round(rt, cmd)?);
        }
        Ok(out)
    }

    fn finish(&mut self) -> SimResult<Vec<LpReport>> {
        let mut rts = std::mem::take(&mut self.rts);
        rts.sort_by_key(|r| r.lp);
        rts.into_iter().map(lp_finish).collect()
    }
}

enum Cmd {
    Round(Vec<LpRoundCmd>),
    Finish,
}

enum Reply {
    Built(SimResult<()>),
    Round(SimResult<Vec<LpRoundOut>>),
    Finished(SimResult<Vec<(usize, LpReport)>>),
}

fn worker_main(
    specs: Vec<(usize, LpSpec)>,
    links: Vec<LinkInfo>,
    trace_capacity: Option<usize>,
    rx: mpsc::Receiver<Cmd>,
    tx: mpsc::Sender<Reply>,
) {
    let built: SimResult<Vec<LpRuntime>> = specs
        .into_iter()
        .map(|(lp, spec)| build_lp(spec, lp, &links, trace_capacity))
        .collect();
    let mut rts = match built {
        Ok(rts) => {
            let _ = tx.send(Reply::Built(Ok(())));
            rts
        }
        Err(e) => {
            let _ = tx.send(Reply::Built(Err(e)));
            return;
        }
    };
    while let Ok(cmd) = rx.recv() {
        match cmd {
            Cmd::Round(cmds) => {
                // Panics in component code must not escape the scoped
                // thread (std::thread::scope would re-panic on join);
                // surface them as typed errors like drcf-dse's sweeps do.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut out = Vec::with_capacity(cmds.len());
                    for cmd in cmds {
                        let rt = rts
                            .iter_mut()
                            .find(|r| r.lp == cmd.lp)
                            .ok_or_else(|| shard_err(format!("no runtime for LP {}", cmd.lp)))?;
                        out.push(lp_round(rt, cmd)?);
                    }
                    Ok(out)
                }));
                let reply = match result {
                    Ok(r) => r,
                    Err(p) => Err(SimError::new(
                        SimErrorKind::Internal,
                        format!("shard worker panicked: {}", panic_text(p)),
                    )),
                };
                if tx.send(Reply::Round(reply)).is_err() {
                    return;
                }
            }
            Cmd::Finish => {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    rts.sort_by_key(|r| r.lp);
                    std::mem::take(&mut rts)
                        .into_iter()
                        .map(|rt| {
                            let lp = rt.lp;
                            lp_finish(rt).map(|r| (lp, r))
                        })
                        .collect()
                }));
                let reply = match result {
                    Ok(r) => r,
                    Err(p) => Err(SimError::new(
                        SimErrorKind::Internal,
                        format!("shard worker panicked: {}", panic_text(p)),
                    )),
                };
                let _ = tx.send(Reply::Finished(reply));
                return;
            }
        }
    }
}

fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

struct ThreadPool<'a> {
    txs: Vec<mpsc::Sender<Cmd>>,
    rxs: Vec<mpsc::Receiver<Reply>>,
    shard_of: &'a [usize],
}

impl ThreadPool<'_> {
    fn dead_worker() -> SimError {
        SimError::new(SimErrorKind::Internal, "shard worker disappeared")
    }
}

impl ShardPool for ThreadPool<'_> {
    fn round(&mut self, cmds: Vec<LpRoundCmd>) -> SimResult<Vec<LpRoundOut>> {
        let mut per: Vec<Vec<LpRoundCmd>> = (0..self.txs.len()).map(|_| Vec::new()).collect();
        for cmd in cmds {
            per[self.shard_of[cmd.lp]].push(cmd);
        }
        for (tx, batch) in self.txs.iter().zip(per) {
            tx.send(Cmd::Round(batch))
                .map_err(|_| Self::dead_worker())?;
        }
        let mut out: Vec<LpRoundOut> = Vec::new();
        let mut first_err: Option<SimError> = None;
        for rx in &self.rxs {
            match rx.recv().map_err(|_| Self::dead_worker())? {
                Reply::Round(Ok(v)) => out.extend(v),
                Reply::Round(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Reply::Built(_) | Reply::Finished(_) => {
                    first_err.get_or_insert(SimError::new(
                        SimErrorKind::Internal,
                        "shard worker protocol violation",
                    ));
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        out.sort_by_key(|o| o.lp);
        Ok(out)
    }

    fn finish(&mut self) -> SimResult<Vec<LpReport>> {
        for tx in &self.txs {
            tx.send(Cmd::Finish).map_err(|_| Self::dead_worker())?;
        }
        let mut reports: Vec<(usize, LpReport)> = Vec::new();
        let mut first_err: Option<SimError> = None;
        for rx in &self.rxs {
            match rx.recv().map_err(|_| Self::dead_worker())? {
                Reply::Finished(Ok(v)) => reports.extend(v),
                Reply::Finished(Err(e)) => {
                    first_err.get_or_insert(e);
                }
                Reply::Built(_) | Reply::Round(_) => {
                    first_err.get_or_insert(SimError::new(
                        SimErrorKind::Internal,
                        "shard worker protocol violation",
                    ));
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        reports.sort_by_key(|&(lp, _)| lp);
        Ok(reports.into_iter().map(|(_, r)| r).collect())
    }
}

// ---------------------------------------------------------------------------
// Coordinator
// ---------------------------------------------------------------------------

fn coordinate(
    pool: &mut dyn ShardPool,
    links: &[LinkInfo],
    n: usize,
    cfg: &ShardConfig,
    names: &[String],
    weights: &[u64],
) -> SimResult<(Vec<LpReport>, u64, u64, u64, ShardProfile)> {
    let end = cfg.end;
    let min_lat = links.iter().map(|l| l.min_latency).min();
    let window = match cfg.window.or(min_lat) {
        Some(w) if w > SimDuration::ZERO => w,
        Some(_) => return Err(shard_err("window must be positive")),
        // No links and no explicit window: one round covers the whole run.
        None => SimDuration::fs(end.as_fs().max(1)),
    };
    let incoming: Vec<Vec<(usize, SimDuration, usize)>> = (0..n)
        .map(|i| {
            links
                .iter()
                .filter(|l| l.to == i)
                .map(|l| (l.from, l.min_latency, l.index))
                .collect()
        })
        .collect();

    let mut committed = vec![SimTime::ZERO; n];
    let mut inject_next: Vec<Vec<Envelope>> = (0..n).map(|_| Vec::new()).collect();
    let mut link_seq = vec![0u64; links.len()];
    let mut rounds = 0u64;
    let mut messages = 0u64;

    let mut profile = ShardProfile {
        lps: (0..n)
            .map(|i| LpProfile {
                lp: i,
                name: names.get(i).cloned().unwrap_or_default(),
                weight: weights.get(i).copied().unwrap_or(1),
                windows: Vec::new(),
                busy_ns: 0,
                blocked_ns: 0,
                sent: 0,
                received: 0,
            })
            .collect(),
        links: links
            .iter()
            .map(|l| LinkProfile {
                link: l.index,
                name: l.name.clone(),
                from: l.from,
                to: l.to,
                min_latency_fs: l.min_latency.0,
                messages: 0,
                peak_window_messages: 0,
                bound_windows: 0,
            })
            .collect(),
        rounds: 0,
        quiescent_rounds: 0,
        deadlock_deferrals: 0,
    };

    while committed.iter().any(|&t| t < end) {
        let mut horizons = vec![SimTime::ZERO; n];
        let mut bounds = vec![HorizonBound::Window; n];
        for i in 0..n {
            let mut h = committed[i] + window;
            let mut b = HorizonBound::Window;
            if end < h {
                h = end;
                b = HorizonBound::End;
            }
            for &(from, lat, link) in &incoming[i] {
                let limit = committed[from] + lat;
                if limit < h {
                    h = limit;
                    b = HorizonBound::Link(link);
                }
            }
            horizons[i] = h.max(committed[i]);
            bounds[i] = b;
        }
        // Record the deterministic half of each LP's window record before
        // the inject queues are handed to the round.
        for i in 0..n {
            let received = inject_next[i].len() as u64;
            let last_inject = inject_next[i].last().map(|e| (e.link, e.seq));
            profile.lps[i].received += received;
            if let HorizonBound::Link(l) = bounds[i] {
                profile.links[l].bound_windows += 1;
            }
            profile.lps[i].windows.push(LpWindow {
                round: rounds,
                start_fs: committed[i].as_fs(),
                horizon_fs: horizons[i].as_fs(),
                bound: bounds[i],
                sent: 0,
                received,
                last_inject,
                busy_ns: 0,
                blocked_ns: 0,
            });
        }
        let cmds: Vec<LpRoundCmd> = (0..n)
            .map(|i| LpRoundCmd {
                lp: i,
                horizon: horizons[i],
                inject: std::mem::take(&mut inject_next[i]),
                hash: cfg.hash_slices,
            })
            .collect();
        let round_started = std::time::Instant::now();
        let outs = pool.round(cmds)?;
        let round_wall_ns = round_started.elapsed().as_nanos() as u64;
        rounds += 1;

        // Deterministic merge: stamp per-link sequence numbers in (LP
        // index, send order), enforce the bounded-channel capacity, then
        // deliver globally sorted by (deliver_at, link, seq).
        let mut round_count = vec![0usize; links.len()];
        let mut envs: Vec<Envelope> = Vec::new();
        let mut any_obligations = false;
        for out in outs {
            let lprof = &mut profile.lps[out.lp];
            lprof.sent += out.sent.len() as u64;
            lprof.busy_ns += out.busy_ns;
            // Barrier stall approximation: how long the slowest LP of the
            // round (plus merge overhead) outlasted this LP's own work.
            let blocked = round_wall_ns.saturating_sub(out.busy_ns);
            lprof.blocked_ns += blocked;
            if let Some(w) = lprof.windows.last_mut() {
                w.sent = out.sent.len() as u64;
                w.busy_ns = out.busy_ns;
                w.blocked_ns = blocked;
            }
            any_obligations |= out.obligations > 0;
            for (at, link, msg) in out.sent {
                let l = &links[link];
                round_count[link] += 1;
                if round_count[link] > l.capacity {
                    return Err(shard_err(format!(
                        "link {:?} exceeded its bounded capacity of {} messages per window",
                        l.name, l.capacity
                    )));
                }
                let seq = link_seq[link];
                link_seq[link] += 1;
                envs.push(Envelope {
                    deliver_at: at + l.min_latency,
                    link,
                    seq,
                    msg,
                });
            }
        }
        for (link, &count) in round_count.iter().enumerate() {
            let lprof = &mut profile.links[link];
            lprof.messages += count as u64;
            lprof.peak_window_messages = lprof.peak_window_messages.max(count as u64);
        }
        if envs.is_empty() {
            profile.quiescent_rounds += 1;
        }
        if any_obligations {
            profile.deadlock_deferrals += 1;
        }
        messages += envs.len() as u64;
        envs.sort_by_key(|e| (e.deliver_at, e.link, e.seq));
        for e in envs {
            let to = links[e.link].to;
            inject_next[to].push(e);
        }
        committed.copy_from_slice(&horizons);
    }
    profile.rounds = rounds;

    let in_flight: u64 = inject_next.iter().map(|v| v.len() as u64).sum();
    // Everything still undelivered must lie at or beyond the end horizon;
    // anything earlier would mean the lookahead protocol broke.
    for v in &inject_next {
        for e in v {
            if e.deliver_at < end {
                return Err(SimError::new(
                    SimErrorKind::Internal,
                    format!(
                        "undelivered message on link {} at t={} before the end horizon",
                        e.link,
                        e.deliver_at.as_fs()
                    ),
                ));
            }
        }
    }

    let reports = pool.finish()?;
    let pending: u64 = reports.iter().map(|r| r.obligations).sum();
    if pending > 0 {
        let blocked: Vec<&str> = reports
            .iter()
            .filter(|r| r.obligations > 0)
            .map(|r| r.name.as_str())
            .collect();
        return Err(SimError::deadlock(pending).in_component(blocked.join(",")));
    }
    Ok((reports, rounds, messages, in_flight, profile))
}

/// Execute a sharded topology to its end horizon.
///
/// With `cfg.shards == 1` every LP runs inline on the calling thread — the
/// single-threaded oracle. With more shards, LPs are grouped by the
/// [`partition_lps`] auto-partitioner (or `cfg.assign`) onto worker
/// threads; results are bit-identical to the oracle in either mode (see
/// the module docs for the argument).
pub fn run_sharded(topo: ShardTopology, cfg: &ShardConfig) -> SimResult<ShardRunReport> {
    topo.validate()?;
    let n = topo.lps.len();
    let shards = cfg.shards.max(1).min(n);
    let started = std::time::Instant::now();

    let assign = match &cfg.assign {
        Some(a) => {
            if a.len() != n || a.iter().any(|&s| s >= shards) {
                return Err(shard_err(format!(
                    "assignment must map {n} LPs onto {shards} shards"
                )));
            }
            a.clone()
        }
        None => partition_lps(&topo.weights(), shards),
    };
    let names: Vec<String> = topo.lps.iter().map(|s| s.name.clone()).collect();
    let weights = topo.weights();

    let (reports, rounds, messages, in_flight, profile) = if shards <= 1 {
        let rts: SimResult<Vec<LpRuntime>> = topo
            .lps
            .into_iter()
            .enumerate()
            .map(|(lp, spec)| build_lp(spec, lp, &topo.links, cfg.trace_capacity))
            .collect();
        let mut pool = InlinePool { rts: rts? };
        coordinate(&mut pool, &topo.links, n, cfg, &names, &weights)?
    } else {
        let mut specs: Vec<Vec<(usize, LpSpec)>> = (0..shards).map(|_| Vec::new()).collect();
        for (lp, spec) in topo.lps.into_iter().enumerate() {
            specs[assign[lp]].push((lp, spec));
        }
        let links = topo.links;
        std::thread::scope(|scope| -> SimResult<_> {
            let mut txs = Vec::with_capacity(shards);
            let mut rxs = Vec::with_capacity(shards);
            for shard_specs in specs {
                let (cmd_tx, cmd_rx) = mpsc::channel::<Cmd>();
                let (rep_tx, rep_rx) = mpsc::channel::<Reply>();
                let worker_links = links.clone();
                let trace_capacity = cfg.trace_capacity;
                scope.spawn(move || {
                    worker_main(shard_specs, worker_links, trace_capacity, cmd_rx, rep_tx)
                });
                txs.push(cmd_tx);
                rxs.push(rep_rx);
            }
            // Wait for every worker to build its LPs before round one.
            let mut build_err: Option<SimError> = None;
            for rx in &rxs {
                match rx.recv() {
                    Ok(Reply::Built(Ok(()))) => {}
                    Ok(Reply::Built(Err(e))) => {
                        build_err.get_or_insert(e);
                    }
                    Ok(_) | Err(_) => {
                        build_err.get_or_insert(ThreadPool::dead_worker());
                    }
                }
            }
            if let Some(e) = build_err {
                // Dropping the senders unblocks and terminates workers.
                return Err(e);
            }
            let mut pool = ThreadPool {
                txs,
                rxs,
                shard_of: &assign,
            };
            coordinate(&mut pool, &links, n, cfg, &names, &weights)
        })?
    };

    Ok(ShardRunReport {
        lps: reports,
        rounds,
        messages,
        in_flight_at_end: in_flight,
        shards,
        wall_seconds: started.elapsed().as_secs_f64(),
        profile,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::event::MsgKind;
    use crate::json::ju64;

    /// Snapshot-capable test node: counts ticks on a timer, folds every
    /// received packet into a checksum, and periodically emits on all of
    /// its egress links. Optionally holds an obligation open until it has
    /// received `await_n` packets.
    struct Node {
        id: u64,
        egress: Vec<ComponentId>,
        period: SimDuration,
        emit_every: u64,
        ticks: u64,
        received: u64,
        checksum: u64,
        await_n: u64,
        waiting: bool,
    }

    impl Node {
        fn new(id: u64, egress: Vec<ComponentId>, period_ns: u64, emit_every: u64) -> Node {
            Node {
                id,
                egress,
                period: SimDuration::ns(period_ns),
                emit_every,
                ticks: 0,
                received: 0,
                checksum: 0,
                await_n: 0,
                waiting: false,
            }
        }

        fn mix(&mut self, v: u64) {
            self.checksum = self
                .checksum
                .rotate_left(7)
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(v);
        }
    }

    impl Component for Node {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match msg.kind {
                MsgKind::Start => {
                    if self.await_n > 0 {
                        api.obligation_begin();
                        self.waiting = true;
                    }
                    api.timer_in(self.period, 0);
                }
                MsgKind::Timer(_) => {
                    self.ticks += 1;
                    self.mix(self.ticks);
                    if self.emit_every > 0 && self.ticks.is_multiple_of(self.emit_every) {
                        for &e in &self.egress {
                            api.send(
                                e,
                                LinkMsg {
                                    tag: self.ticks,
                                    words: vec![self.id, self.checksum],
                                },
                                Delay::Delta,
                            );
                        }
                    }
                    api.timer_in(self.period, 0);
                }
                _ => {
                    if let Ok(p) = msg.user::<LinkPacket>() {
                        self.received += 1;
                        self.mix(p.seq);
                        self.mix(p.msg.tag);
                        for w in &p.msg.words {
                            self.mix(*w);
                        }
                        if self.waiting && self.received >= self.await_n {
                            self.waiting = false;
                            api.obligation_end();
                        }
                    }
                }
            }
        }

        fn snapshot(&mut self) -> SimResult<Json> {
            Ok(Json::obj()
                .with("ticks", ju64(self.ticks))
                .with("received", ju64(self.received))
                .with("checksum", ju64(self.checksum))
                .with("waiting", Json::Bool(self.waiting)))
        }

        fn restore(&mut self, state: &Json) -> SimResult<()> {
            self.ticks = crate::snapshot::u64_field(state, "ticks")?;
            self.received = crate::snapshot::u64_field(state, "received")?;
            self.checksum = crate::snapshot::u64_field(state, "checksum")?;
            self.waiting = crate::snapshot::bool_field(state, "waiting")?;
            Ok(())
        }
    }

    fn node_probe(sim: &mut Simulator, id: ComponentId) -> SimResult<Json> {
        let n = sim.get::<Node>(id);
        Ok(Json::obj()
            .with("ticks", ju64(n.ticks))
            .with("received", ju64(n.received))
            .with("checksum", ju64(n.checksum)))
    }

    /// Ring of `n` nodes, each emitting every few ticks to its successor.
    fn ring(n: usize, latency_ns: u64, await_n: u64) -> ShardTopology {
        let mut topo2 = ShardTopology::new();
        for i in 0..n {
            let lp = topo2.add_lp(&format!("lp{i}"), move |sim, io| {
                let out = io.outgoing();
                let egress: SimResult<Vec<ComponentId>> =
                    out.iter().map(|&l| io.egress(l)).collect();
                let id = sim.add(
                    &format!("node{i}"),
                    Node {
                        await_n,
                        ..Node::new(i as u64, egress?, 100 + 10 * i as u64, 3)
                    },
                );
                for l in io.incoming() {
                    io.set_ingress(l, id)?;
                }
                Ok(())
            });
            topo2.set_probe(lp, move |sim| {
                let id = sim.component_count() - 1;
                node_probe(sim, id)
            });
            topo2.set_weight(lp, 1 + i as u64);
        }
        for i in 0..n {
            topo2.add_link(
                &format!("l{i}"),
                i,
                (i + 1) % n,
                SimDuration::ns(latency_ns),
            );
        }
        topo2
    }

    fn run_ring(shards: usize, latency_ns: u64) -> ShardRunReport {
        let topo = ring(3, latency_ns, 0);
        let cfg = ShardConfig::to(SimTime(SimDuration::us(20).0))
            .shards(shards)
            .hash_slices(true);
        run_sharded(topo, &cfg).expect("run")
    }

    #[test]
    fn sequential_oracle_produces_traffic() {
        let r = run_ring(1, 500);
        assert_eq!(r.shards, 1);
        assert!(r.rounds > 1, "multiple windows: {}", r.rounds);
        assert!(r.messages > 10, "cross-shard traffic: {}", r.messages);
        for lp in &r.lps {
            assert!(lp.metrics.dispatched > 0);
            assert!(lp.probe.get("received").is_some());
            assert_eq!(lp.slice_hashes.len() as u64, r.rounds);
            assert_eq!(lp.final_time_fs, SimDuration::us(20).0);
        }
    }

    #[test]
    fn threaded_matches_oracle_bit_for_bit() {
        let oracle = run_ring(1, 500);
        for shards in [2usize, 3] {
            let par = run_ring(shards, 500);
            assert_eq!(par.shards, shards.min(3));
            assert!(
                oracle.same_outcome(&par),
                "divergence at {:?}",
                oracle.first_divergence(&par)
            );
            assert_eq!(oracle.first_divergence(&par), None);
        }
    }

    #[test]
    fn lookahead_size_changes_rounds_not_results() {
        // A larger link latency means larger windows and fewer rounds, but
        // identical final model state (probes), since delivery times are
        // send + latency in every case... latency differs, so only compare
        // within equal latency; here we compare round counts shrink.
        let fine = run_ring(1, 200);
        let coarse = run_ring(1, 2_000);
        assert!(coarse.rounds < fine.rounds);
    }

    #[test]
    fn obligations_deferred_across_windows_but_deadlock_still_detected() {
        // Node 0 holds an obligation until it has received one packet; the
        // ring delivers within a few windows, so the run must succeed.
        let topo = ring(3, 500, 1);
        let cfg = ShardConfig::to(SimTime(SimDuration::us(20).0));
        let r = run_sharded(topo, &cfg).expect("obligation resolves");
        assert!(r.lps.iter().all(|l| l.obligations == 0));

        // An obligation that can never resolve is a deadlock at the end
        // horizon, attributed to the blocked LPs.
        let topo = ring(3, 500, u64::MAX);
        let err = run_sharded(topo, &cfg).expect_err("unresolvable obligations");
        assert!(err.is_deadlock(), "{err:?}");
    }

    #[test]
    fn bounded_links_reject_overflow() {
        let mut topo = ring(3, 500, 0);
        for l in 0..topo.link_count() {
            topo.set_link_capacity(l, 1);
        }
        let cfg = ShardConfig::to(SimTime(SimDuration::us(20).0));
        let err = run_sharded(topo, &cfg).expect_err("capacity 1 must overflow");
        assert!(err.message.contains("bounded capacity"), "{err:?}");
    }

    #[test]
    fn validation_rejects_bad_topologies() {
        let cfg = ShardConfig::to(SimTime(SimDuration::us(1).0));
        let topo = ShardTopology::new();
        assert!(run_sharded(topo, &cfg).is_err(), "no LPs");

        let mut topo = ShardTopology::new();
        topo.add_lp("a", |_, _| Ok(()));
        topo.add_link("bad", 0, 5, SimDuration::ns(1));
        assert!(run_sharded(topo, &cfg).is_err(), "dangling link");

        let mut topo = ShardTopology::new();
        topo.add_lp("a", |_, _| Ok(()));
        topo.add_link("zero", 0, 0, SimDuration::ZERO);
        assert!(run_sharded(topo, &cfg).is_err(), "zero latency");

        // Missing ingress registration is caught at build time.
        let mut topo = ShardTopology::new();
        topo.add_lp("a", |sim, _| {
            sim.add("n", crate::component::NullComponent);
            Ok(())
        });
        let b = topo.add_lp("b", |sim, _| {
            sim.add("n", crate::component::NullComponent);
            Ok(())
        });
        topo.add_link("l", 0, b, SimDuration::ns(1));
        let err = run_sharded(topo, &cfg).expect_err("missing ingress");
        assert!(err.message.contains("ingress"), "{err:?}");
    }

    #[test]
    fn lp_without_links_runs_to_end_in_one_window() {
        let mut topo = ShardTopology::new();
        topo.add_lp("solo", |sim, _| {
            sim.add("node", Node::new(0, Vec::new(), 100, 0));
            Ok(())
        });
        let cfg = ShardConfig::to(SimTime(SimDuration::us(5).0));
        let r = run_sharded(topo, &cfg).expect("run");
        assert_eq!(r.rounds, 1);
        assert_eq!(r.messages, 0);
        assert_eq!(r.lps[0].final_time_fs, SimDuration::us(5).0);
    }

    #[test]
    fn partition_balances_and_is_deterministic() {
        let w = [10u64, 1, 1, 1, 9, 2, 2, 2];
        let a = partition_lps(&w, 2);
        assert_eq!(a, partition_lps(&w, 2), "deterministic");
        assert_eq!(a.len(), w.len());
        assert!(a.iter().all(|&s| s < 2));
        let load0: u64 = w
            .iter()
            .zip(&a)
            .filter(|&(_, &s)| s == 0)
            .map(|(w, _)| w)
            .sum();
        let load1: u64 = w
            .iter()
            .zip(&a)
            .filter(|&(_, &s)| s == 1)
            .map(|(w, _)| w)
            .sum();
        let (lo, hi) = (load0.min(load1), load0.max(load1));
        assert!(hi - lo <= 2, "balanced: {load0} vs {load1}");
        // More shards than LPs degrades gracefully.
        assert_eq!(partition_lps(&[5], 4), vec![0]);
        assert!(partition_lps(&[], 4).is_empty());
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_not_a_crash() {
        struct Bomb;
        impl Component for Bomb {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match msg.kind {
                    MsgKind::Start => api.timer_in(SimDuration::ns(50), 0),
                    MsgKind::Timer(_) => panic!("component detonated"),
                    _ => {}
                }
            }
            fn snapshot(&mut self) -> SimResult<Json> {
                Ok(Json::Null)
            }
        }
        let mut topo = ShardTopology::new();
        topo.add_lp("a", |sim, _| {
            sim.add("bomb", Bomb);
            Ok(())
        });
        topo.add_lp("idle", |sim, io| {
            let id = sim.add("n", crate::component::NullComponent);
            for l in io.incoming() {
                io.set_ingress(l, id)?;
            }
            Ok(())
        });
        topo.add_link("l", 0, 1, SimDuration::ns(100));
        let cfg = ShardConfig::to(SimTime(SimDuration::us(1).0)).shards(2);
        let err = run_sharded(topo, &cfg).expect_err("panic becomes an error");
        assert_eq!(err.kind, SimErrorKind::Internal);
        assert!(err.message.contains("panicked"), "{err:?}");
    }

    #[test]
    fn profile_counters_reconcile_with_the_report() {
        let r = run_ring(1, 500);
        let p = &r.profile;
        assert_eq!(p.rounds, r.rounds);
        assert_eq!(p.lps.len(), 3);
        assert_eq!(p.links.len(), 3);
        // Every message the run counted was drained from some egress and
        // attributed to its link; deliveries are receipts.
        let link_msgs: u64 = p.links.iter().map(|l| l.messages).sum();
        let sent: u64 = p.lps.iter().map(|l| l.sent).sum();
        let received: u64 = p.lps.iter().map(|l| l.received).sum();
        assert_eq!(link_msgs, r.messages);
        assert_eq!(sent, r.messages);
        assert_eq!(received, r.messages - r.in_flight_at_end);
        for l in &p.links {
            assert!(l.peak_window_messages <= l.messages);
            assert_eq!(l.min_latency_fs, SimDuration::ns(500).0);
        }
        for lp in &p.lps {
            assert_eq!(lp.windows.len() as u64, p.rounds);
            assert_eq!(lp.sent, lp.windows.iter().map(|w| w.sent).sum::<u64>());
            assert_eq!(
                lp.received,
                lp.windows.iter().map(|w| w.received).sum::<u64>()
            );
            assert_eq!(lp.windows.last().unwrap().horizon_fs, SimDuration::us(20).0);
        }
    }

    #[test]
    fn profile_simulated_time_fields_are_shard_count_invariant() {
        let a = run_ring(1, 500);
        let b = run_ring(3, 500);
        type WindowKey = (u64, u64, u64, HorizonBound, u64, u64);
        let det = |r: &ShardRunReport| -> Vec<Vec<WindowKey>> {
            r.profile
                .lps
                .iter()
                .map(|l| {
                    l.windows
                        .iter()
                        .map(|w| {
                            (
                                w.round,
                                w.start_fs,
                                w.horizon_fs,
                                w.bound,
                                w.sent,
                                w.received,
                            )
                        })
                        .collect()
                })
                .collect()
        };
        assert_eq!(det(&a), det(&b));
        assert_eq!(a.profile.quiescent_rounds, b.profile.quiescent_rounds);
        assert_eq!(a.profile.deadlock_deferrals, b.profile.deadlock_deferrals);
    }

    #[test]
    fn link_bound_horizons_surface_the_critical_link() {
        // With the window forced above the link latency, every LP's
        // horizon is bound by its incoming link, not the window cap.
        let topo = ring(3, 500, 0);
        let cfg = ShardConfig::to(SimTime(SimDuration::us(10).0)).window(SimDuration::us(2));
        let r = run_sharded(topo, &cfg).expect("run");
        let p = &r.profile;
        assert!(
            p.lps
                .iter()
                .flat_map(|l| &l.windows)
                .any(|w| matches!(w.bound, HorizonBound::Link(_))),
            "some window must be link-bound"
        );
        let crit = p.critical_link().expect("a link bound some horizon");
        assert!(crit.bound_windows > 0);
        // All three ring links bind symmetrically; the tie resolves to the
        // lowest link index.
        assert_eq!(crit.link, 0);
    }

    #[test]
    fn solo_lp_round_is_quiescent_and_unbound_by_links() {
        let mut topo = ShardTopology::new();
        topo.add_lp("solo", |sim, _| {
            sim.add("node", Node::new(0, Vec::new(), 100, 0));
            Ok(())
        });
        let cfg = ShardConfig::to(SimTime(SimDuration::us(5).0));
        let r = run_sharded(topo, &cfg).expect("run");
        assert_eq!(r.profile.rounds, 1);
        assert_eq!(r.profile.quiescent_rounds, 1);
        assert_eq!(r.profile.deadlock_deferrals, 0);
        assert!(r.profile.critical_link().is_none());
    }

    #[test]
    fn deferred_obligations_count_as_deadlock_deferrals() {
        let topo = ring(3, 500, 1);
        let cfg = ShardConfig::to(SimTime(SimDuration::us(20).0));
        let r = run_sharded(topo, &cfg).expect("obligation resolves");
        assert!(
            r.profile.deadlock_deferrals > 0,
            "the awaiting node holds an obligation across early barriers"
        );
        assert!(r.profile.deadlock_deferrals < r.profile.rounds);
    }

    #[test]
    fn efficiency_report_math_on_hand_built_profiles() {
        let mk = |lp: usize, weight: u64, busy: u64, blocked: u64| LpProfile {
            lp,
            name: format!("lp{lp}"),
            weight,
            windows: Vec::new(),
            busy_ns: busy,
            blocked_ns: blocked,
            sent: 0,
            received: 0,
        };
        let lps = [mk(0, 3, 300, 100), mk(1, 1, 100, 300)];
        let e = EfficiencyReport::from_lps(&lps);
        assert!((e.parallel_efficiency - 0.5).abs() < 1e-12);
        assert!((e.load_imbalance - 1.5).abs() < 1e-12);
        assert!((e.lps[0].busy_fraction - 0.75).abs() < 1e-12);
        assert!((e.lps[1].busy_fraction - 0.25).abs() < 1e-12);
        assert!((e.lps[0].busy_share - 0.75).abs() < 1e-12);
        assert!((e.lps[0].weight_share - 0.75).abs() < 1e-12);
        assert!((e.lps[1].weight_share - 0.25).abs() < 1e-12);

        // Degenerate inputs stay finite.
        let idle = [mk(0, 0, 0, 0)];
        let e = EfficiencyReport::from_lps(&idle);
        assert_eq!(e.parallel_efficiency, 0.0);
        assert_eq!(e.load_imbalance, 1.0);
        assert_eq!(e.lps[0].busy_share, 0.0);
        let empty = EfficiencyReport::from_lps(&[]);
        assert_eq!(empty.parallel_efficiency, 0.0);
        assert_eq!(empty.load_imbalance, 1.0);

        // Rendering mentions every LP by name.
        let text = EfficiencyReport::from_lps(&lps).render();
        assert!(text.contains("lp0") && text.contains("lp1"), "{text}");
    }

    #[test]
    fn divergence_detail_resolves_names_times_and_hashes() {
        let a = run_ring(1, 500);
        assert!(a.divergence_detail(&a).is_none());
        let mut b = a.clone();
        b.lps[1].slice_hashes[2] ^= 1;
        let d = a.divergence_detail(&b).expect("forced divergence");
        assert_eq!((d.lp, d.window), (1, 2));
        assert_eq!(d.lp_name, "lp1");
        assert_eq!(d.time_fs, Some(a.profile.lps[1].windows[2].horizon_fs));
        assert_ne!(d.hash_self, d.hash_other);
        let text = d.to_string();
        assert!(text.contains("lp1") && text.contains("window 2"), "{text}");
    }

    #[test]
    fn trace_harvest_is_deterministic_across_shard_counts() {
        let run = |shards: usize| {
            let topo = ring(3, 500, 0);
            let cfg = ShardConfig::to(SimTime(SimDuration::us(20).0))
                .shards(shards)
                .hash_slices(true)
                .trace(4096);
            run_sharded(topo, &cfg).expect("run")
        };
        let oracle = run(1);
        for lp in &oracle.lps {
            assert_eq!(lp.trace_capacity, 4096);
            assert!(!lp.trace_events.is_empty(), "kernel events recorded");
            assert!(!lp.component_names.is_empty());
            assert_eq!(lp.trace_dropped, 0);
            assert_eq!(lp.trace_emitted, lp.trace_events.len() as u64);
        }
        let par = run(3);
        assert!(
            oracle.same_outcome(&par),
            "tracing must not perturb the outcome: {:?}",
            oracle.first_divergence(&par)
        );
        // Untraced reports carry no events and say so.
        let untraced = run_ring(1, 500);
        assert!(untraced.lps.iter().all(|l| l.trace_capacity == 0));
        assert!(untraced.lps.iter().all(|l| l.trace_events.is_empty()));
    }
}
