//! Scripted sequential processes.
//!
//! SystemC testbenches are usually written as `SC_THREAD`s: straight-line
//! code interleaved with `wait(...)`. The kernel has no blocking threads, so
//! [`Script`] provides the equivalent: an ordered list of steps, where
//! `Do` steps run back-to-back and `Wait*` steps yield to the scheduler.
//! The script holds a kernel obligation while it has steps left, so a
//! simulation cannot be declared quiescent with an unfinished script.

use std::collections::VecDeque;

use crate::component::Component;
use crate::event::{Delay, Msg, MsgKind};
use crate::kernel::Api;
use crate::time::SimDuration;

/// One step of a scripted process.
pub enum Step {
    /// Let simulated time pass.
    Wait(SimDuration),
    /// Yield for one delta cycle.
    WaitDelta,
    /// Run a closure against the kernel API.
    Do(Box<dyn FnMut(&mut Api<'_>)>),
}

impl Step {
    /// Convenience constructor for `Do`.
    pub fn run(f: impl FnMut(&mut Api<'_>) + 'static) -> Step {
        Step::Do(Box::new(f))
    }
}

/// A component that executes [`Step`]s in order.
pub struct Script {
    steps: VecDeque<Step>,
    /// Number of `Do` steps executed so far.
    pub executed: u64,
    done: bool,
}

impl Script {
    /// Build a script from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Script {
            steps: steps.into(),
            executed: 0,
            done: false,
        }
    }

    /// True once every step has run.
    pub fn is_done(&self) -> bool {
        self.done
    }

    fn advance(&mut self, api: &mut Api<'_>) {
        loop {
            match self.steps.pop_front() {
                None => {
                    if !self.done {
                        self.done = true;
                        api.obligation_end();
                    }
                    return;
                }
                Some(Step::Do(mut f)) => {
                    f(api);
                    self.executed += 1;
                }
                Some(Step::Wait(d)) => {
                    api.timer_in(d, 0);
                    return;
                }
                Some(Step::WaitDelta) => {
                    api.timer(Delay::Delta, 0);
                    return;
                }
            }
        }
    }
}

impl Component for Script {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {
                api.obligation_begin();
                self.advance(api);
            }
            MsgKind::Timer(_) => self.advance(api),
            _ => {}
        }
    }
}

/// Builder sugar for scripts.
#[derive(Default)]
pub struct ScriptBuilder {
    steps: Vec<Step>,
}

impl ScriptBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }
    /// Append a wait.
    pub fn wait(mut self, d: SimDuration) -> Self {
        self.steps.push(Step::Wait(d));
        self
    }
    /// Append a delta yield.
    pub fn wait_delta(mut self) -> Self {
        self.steps.push(Step::WaitDelta);
        self
    }
    /// Append an action.
    pub fn then(mut self, f: impl FnMut(&mut Api<'_>) + 'static) -> Self {
        self.steps.push(Step::run(f));
        self
    }
    /// Finish.
    pub fn build(self) -> Script {
        Script::new(self.steps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StopReason;
    use crate::kernel::Simulator;
    use crate::time::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn script_steps_run_in_order_with_waits() {
        let log: Rc<RefCell<Vec<(u64, &'static str)>>> = Rc::default();
        let (l1, l2, l3) = (log.clone(), log.clone(), log.clone());
        let mut sim = Simulator::new();
        let id = sim.add(
            "script",
            ScriptBuilder::new()
                .then(move |api| l1.borrow_mut().push((api.now().as_fs(), "a")))
                .wait(SimDuration::ns(10))
                .then(move |api| l2.borrow_mut().push((api.now().as_fs(), "b")))
                .wait(SimDuration::ns(5))
                .then(move |api| l3.borrow_mut().push((api.now().as_fs(), "c")))
                .build(),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(
            *log.borrow(),
            vec![(0, "a"), (10_000_000, "b"), (15_000_000, "c")]
        );
        assert!(sim.get::<Script>(id).is_done());
        assert_eq!(sim.get::<Script>(id).executed, 3);
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(15));
    }

    #[test]
    fn consecutive_do_steps_run_without_time_passing() {
        let count = Rc::new(RefCell::new(0));
        let mut sim = Simulator::new();
        let mut b = ScriptBuilder::new();
        for _ in 0..5 {
            let c = count.clone();
            b = b.then(move |_| *c.borrow_mut() += 1);
        }
        sim.add("s", b.build());
        crate::testing::ok(sim.run());
        assert_eq!(*count.borrow(), 5);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn empty_script_is_immediately_done() {
        let mut sim = Simulator::new();
        let id = sim.add("s", Script::new(vec![]));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert!(sim.get::<Script>(id).is_done());
    }

    #[test]
    fn wait_delta_yields_one_delta() {
        let seen = Rc::new(RefCell::new(Vec::new()));
        let s2 = seen.clone();
        let mut sim = Simulator::new();
        let sig = sim.add_signal("x", 0u32);
        sim.add(
            "s",
            ScriptBuilder::new()
                .then(move |api| api.write(sig, 5))
                .wait_delta()
                .then(move |api| s2.borrow_mut().push(api.read(sig)))
                .build(),
        );
        crate::testing::ok(sim.run());
        assert_eq!(*seen.borrow(), vec![5]);
    }

    #[test]
    fn unfinished_scripts_cannot_happen_silently() {
        // A script whose wait never elapses because the horizon cuts it off
        // leaves the obligation pending; a full run() to quiescence always
        // finishes scripts. Verify the obligation accounting.
        let mut sim = Simulator::new();
        sim.add("s", ScriptBuilder::new().wait(SimDuration::us(10)).build());
        crate::testing::ok(sim.run_until(SimTime::ZERO + SimDuration::ns(1)));
        assert_eq!(sim.obligations(), 1);
        crate::testing::ok(sim.run());
        assert_eq!(sim.obligations(), 0);
    }
}
