//! Measurement helpers shared by every model in the workspace.
//!
//! These are plain value types with no kernel coupling beyond taking
//! [`SimTime`]/[`SimDuration`] arguments, so models embed them directly and
//! harnesses read them back after a run.

use crate::error::SimResult;
use crate::json::{ju64, Json};
use crate::snapshot as snap;
use crate::snapshot::Snapshotable;
use crate::time::{SimDuration, SimTime};

/// Tracks how long a binary resource (bus, fabric slot, accelerator) spent
/// busy, as a time-weighted accumulator.
#[derive(Debug, Clone, Default)]
pub struct BusyTracker {
    busy: bool,
    since: SimTime,
    accumulated: SimDuration,
    /// Number of busy periods started.
    pub activations: u64,
}

impl BusyTracker {
    /// New tracker, initially idle at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the resource busy at `now`. Idempotent when already busy.
    pub fn set_busy(&mut self, now: SimTime) {
        if !self.busy {
            self.busy = true;
            self.since = now;
            self.activations += 1;
        }
    }

    /// Mark the resource idle at `now`, accumulating the just-finished busy
    /// period. Idempotent when already idle.
    pub fn set_idle(&mut self, now: SimTime) {
        if self.busy {
            self.busy = false;
            self.accumulated += now.since(self.since);
        }
    }

    /// Is the resource currently busy?
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Total busy time up to `now` (includes an in-progress busy period).
    pub fn busy_time(&self, now: SimTime) -> SimDuration {
        if self.busy {
            self.accumulated + now.since(self.since)
        } else {
            self.accumulated
        }
    }

    /// Busy fraction over `[SimTime::ZERO, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        self.busy_time(now).fraction_of(now.since(SimTime::ZERO))
    }
}

impl Snapshotable for BusyTracker {
    fn snapshot_json(&self) -> Json {
        Json::obj()
            .with("busy", Json::Bool(self.busy))
            .with("since", ju64(self.since.0))
            .with("accumulated", ju64(self.accumulated.0))
            .with("activations", ju64(self.activations))
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        self.busy = snap::bool_field(state, "busy")?;
        self.since = SimTime(snap::u64_field(state, "since")?);
        self.accumulated = SimDuration(snap::u64_field(state, "accumulated")?);
        self.activations = snap::u64_field(state, "activations")?;
        Ok(())
    }
}

/// Fixed-bucket latency histogram over durations (log2 buckets in ns).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// bucket[i] counts samples with ns in [2^(i-1), 2^i); bucket[0] is <1ns.
    buckets: Vec<u64>,
    count: u64,
    sum: SimDuration,
    min: SimDuration,
    max: SimDuration,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: vec![0; 40],
            count: 0,
            sum: SimDuration::ZERO,
            min: SimDuration::MAX,
            max: SimDuration::ZERO,
        }
    }
}

impl LatencyHistogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_fs() / crate::time::FS_PER_NS;
        let bucket = if ns == 0 {
            0
        } else {
            (64 - ns.leading_zeros()) as usize
        };
        let bucket = bucket.min(self.buckets.len() - 1);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += d;
        if d < self.min {
            self.min = d;
        }
        if d > self.max {
            self.max = d;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency; zero when empty.
    pub fn mean(&self) -> SimDuration {
        self.sum
            .as_fs()
            .checked_div(self.count)
            .map(SimDuration)
            .unwrap_or(SimDuration::ZERO)
    }

    /// Smallest sample; zero when empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            self.min
        }
    }

    /// Largest sample.
    pub fn max(&self) -> SimDuration {
        self.max
    }

    /// Structural equality (used by snapshot round-trip assertions; the
    /// type itself avoids `PartialEq` so accidental float-style comparisons
    /// of histograms stay deliberate).
    pub fn same_as(&self, other: &LatencyHistogram) -> bool {
        self.buckets == other.buckets
            && self.count == other.count
            && self.sum == other.sum
            && self.min == other.min
            && self.max == other.max
    }

    /// Approximate quantile (bucket upper edge), q in `[0, 1]`.
    pub fn quantile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let target = ((self.count as f64) * q).ceil() as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target.max(1) {
                let upper_ns = if i == 0 { 1 } else { 1u64 << i };
                return SimDuration::ns(upper_ns);
            }
        }
        self.max
    }
}

impl Snapshotable for LatencyHistogram {
    fn snapshot_json(&self) -> Json {
        // Buckets are serialized sparsely: most of the 40 log2 buckets are
        // empty in any given run.
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c != 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from(i as u64), ju64(c)]))
            .collect();
        Json::obj()
            .with("buckets", Json::Arr(buckets))
            .with("count", ju64(self.count))
            .with("sum", ju64(self.sum.0))
            .with("min", ju64(self.min.0))
            .with("max", ju64(self.max.0))
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        *self = LatencyHistogram::new();
        for pair in snap::arr_field(state, "buckets")? {
            let p = pair
                .as_arr()
                .ok_or_else(|| snap::err("histogram bucket entry is not a pair"))?;
            let (i, c) = match p {
                [i, c] => (
                    crate::json::ju64_of(i).ok_or_else(|| snap::err("bad bucket index"))?,
                    crate::json::ju64_of(c).ok_or_else(|| snap::err("bad bucket count"))?,
                ),
                _ => return Err(snap::err("histogram bucket entry is not a pair")),
            };
            let i = i as usize;
            if i >= self.buckets.len() {
                return Err(snap::err(format!("histogram bucket {i} out of range")));
            }
            self.buckets[i] = c;
        }
        self.count = snap::u64_field(state, "count")?;
        self.sum = SimDuration(snap::u64_field(state, "sum")?);
        self.min = SimDuration(snap::u64_field(state, "min")?);
        self.max = SimDuration(snap::u64_field(state, "max")?);
        Ok(())
    }
}

/// Streaming mean/min/max of an f64 series.
#[derive(Debug, Clone)]
pub struct Summary {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Summary {
    fn default() -> Self {
        Summary {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Summary {
    /// New, empty summary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a sample.
    pub fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }
    /// Mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
    /// Minimum (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }
    /// Maximum (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }
}

/// A digest of [`KernelMetrics`] normalized into rates — the numbers the
/// perf harness and throughput reports consume.
///
/// [`KernelMetrics`]: crate::kernel::KernelMetrics
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DispatchProfile {
    /// Component deliveries per wall-clock second.
    pub events_per_sec: f64,
    /// Mean delta cycles executed per visited timestep.
    pub avg_deltas_per_timestep: f64,
    /// Fraction of periodic (clock-edge) events served by the per-clock
    /// fast path instead of the general heap.
    pub fast_clock_fraction: f64,
    /// Subscriber notifications fanned out per dispatched event.
    pub notifications_per_event: f64,
    /// Peak number of entries resident in the timed-event queue — the
    /// pre-reserve hint for the next run of a sweep.
    pub queue_high_water: u64,
    /// Compact byte size of the most recent full snapshot document
    /// (0 when the run never snapshotted).
    pub snapshot_full_bytes: u64,
    /// Compact byte size of the most recent delta document (0 when no
    /// delta was captured) — compare against `snapshot_full_bytes` for the
    /// incremental-snapshot compression ratio.
    pub snapshot_delta_bytes: u64,
    /// Components restored or serialized by the most recent incremental
    /// operation (delta capture or warm rewind).
    pub snapshot_dirty_components: u64,
}

impl DispatchProfile {
    /// Summarize `m` over a measured wall-clock duration.
    pub fn from_metrics(m: &crate::kernel::KernelMetrics, wall_seconds: f64) -> Self {
        let frac = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };
        DispatchProfile {
            events_per_sec: if wall_seconds > 0.0 {
                m.dispatched as f64 / wall_seconds
            } else {
                0.0
            },
            avg_deltas_per_timestep: frac(m.delta_cycles, m.timesteps),
            fast_clock_fraction: frac(m.clock_edges_fast, m.clock_edges_fast + m.heap_events),
            notifications_per_event: frac(m.notifications, m.dispatched),
            queue_high_water: m.queue_high_water,
            snapshot_full_bytes: m.snapshot_full_bytes,
            snapshot_delta_bytes: m.snapshot_delta_bytes,
            snapshot_dirty_components: m.snapshot_dirty_components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn busy_tracker_accumulates_periods() {
        let mut b = BusyTracker::new();
        b.set_busy(SimTime(100));
        b.set_idle(SimTime(300));
        b.set_busy(SimTime(500));
        b.set_idle(SimTime(600));
        assert_eq!(b.busy_time(SimTime(1000)), SimDuration(300));
        assert_eq!(b.activations, 2);
        assert!(!b.is_busy());
    }

    #[test]
    fn busy_tracker_counts_open_period() {
        let mut b = BusyTracker::new();
        b.set_busy(SimTime(0));
        assert_eq!(b.busy_time(SimTime(400)), SimDuration(400));
        assert_eq!(b.utilization(SimTime(400)), 1.0);
        // Idempotent busy does not restart the period.
        b.set_busy(SimTime(200));
        assert_eq!(b.activations, 1);
        assert_eq!(b.busy_time(SimTime(400)), SimDuration(400));
    }

    #[test]
    fn busy_tracker_idle_is_idempotent() {
        let mut b = BusyTracker::new();
        b.set_idle(SimTime(100));
        assert_eq!(b.busy_time(SimTime(100)), SimDuration::ZERO);
        assert_eq!(b.utilization(SimTime(0)), 0.0);
    }

    #[test]
    fn histogram_tracks_extremes_and_mean() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::ns(10));
        h.record(SimDuration::ns(20));
        h.record(SimDuration::ns(30));
        assert_eq!(h.count(), 3);
        assert_eq!(h.mean(), SimDuration::ns(20));
        assert_eq!(h.min(), SimDuration::ns(10));
        assert_eq!(h.max(), SimDuration::ns(30));
    }

    #[test]
    fn histogram_quantile_monotone() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100u64 {
            h.record(SimDuration::ns(i));
        }
        let q50 = h.quantile(0.5);
        let q99 = h.quantile(0.99);
        assert!(q50 <= q99);
        assert!(q99 <= SimDuration::ns(128)); // bucket upper edge
    }

    #[test]
    fn empty_histogram_is_zeroed() {
        let h = LatencyHistogram::new();
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
        assert_eq!(h.quantile(0.5), SimDuration::ZERO);
    }

    #[test]
    fn dispatch_profile_normalizes_counters() {
        let m = crate::kernel::KernelMetrics {
            dispatched: 1000,
            delta_cycles: 400,
            timesteps: 200,
            max_deltas_in_step: 3,
            clock_edges_fast: 300,
            heap_events: 100,
            notifications: 2500,
            queue_high_water: 42,
            ..Default::default()
        };
        let p = DispatchProfile::from_metrics(&m, 0.5);
        assert_eq!(p.events_per_sec, 2000.0);
        assert_eq!(p.avg_deltas_per_timestep, 2.0);
        assert_eq!(p.fast_clock_fraction, 0.75);
        assert_eq!(p.notifications_per_event, 2.5);
        assert_eq!(p.queue_high_water, 42);
        // Degenerate denominators are zero, not NaN.
        let z = DispatchProfile::from_metrics(&crate::kernel::KernelMetrics::default(), 0.0);
        assert_eq!(z.events_per_sec, 0.0);
        assert_eq!(z.fast_clock_fraction, 0.0);
    }

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        s.record(1.0);
        s.record(3.0);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.sum(), 4.0);
    }
}
