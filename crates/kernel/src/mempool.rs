//! A size-class pooled allocator for message-bound simulations.
//!
//! Event-driven simulation at the ADRIATIC abstraction level is
//! allocation-bound: every user message (`Api::send`) boxes its payload,
//! and bus models shuttle burst-data vectors through each transaction.
//! Those blocks are small (tens to hundreds of bytes), short-lived, and
//! churn at event rate — the profile general-purpose allocators handle
//! worst. SystemC ships `sc_mempool` for exactly this reason; this module
//! is the equivalent for this workspace.
//!
//! [`PoolAlloc`] caches freed blocks of up to [`MAX_POOLED_SIZE`] bytes in
//! per-thread, per-size-class intrusive free lists (the link pointer lives
//! inside the freed block, so the cache itself never allocates). Hits cost
//! a pointer swap; misses and oversized requests fall through to the system
//! allocator. Binaries opt in:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: drcf_kernel::mempool::PoolAlloc = drcf_kernel::mempool::PoolAlloc;
//! ```
//!
//! The pool is thread-safe in the only way a thread-local cache needs to
//! be: each thread frees into its own lists, so blocks migrate between
//! threads harmlessly (all blocks of a class share one layout), and each
//! cache returns its blocks to the system allocator when its thread exits.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Number of size classes: 16, 32, 64, 128, 256, 512, 1024 bytes.
const NUM_CLASSES: usize = 7;
/// Largest pooled block size.
pub const MAX_POOLED_SIZE: usize = 16 << (NUM_CLASSES - 1);
/// Every pooled block is allocated with this alignment, so any block of a
/// class can serve any request of that class.
const POOL_ALIGN: usize = 16;
/// Per-class cache bound; beyond this, frees go to the system allocator.
const MAX_CACHED_PER_CLASS: usize = 512;

/// Size class for a layout the pool serves, or `None` to pass through.
#[inline]
fn class_of(layout: Layout) -> Option<usize> {
    if layout.size() == 0 || layout.size() > MAX_POOLED_SIZE || layout.align() > POOL_ALIGN {
        return None;
    }
    let rounded = layout.size().next_power_of_two().max(16);
    Some(rounded.trailing_zeros() as usize - 4)
}

/// The layout every block of `class` is allocated with.
#[inline]
fn class_layout(class: usize) -> Layout {
    // Size and alignment are compile-time-valid powers of two.
    unsafe { Layout::from_size_align_unchecked(16 << class, POOL_ALIGN) }
}

struct ClassList {
    head: Cell<*mut u8>,
    len: Cell<usize>,
}

struct Cache {
    lists: [ClassList; NUM_CLASSES],
}

impl Cache {
    const fn new() -> Self {
        Cache {
            lists: [const {
                ClassList {
                    head: Cell::new(std::ptr::null_mut()),
                    len: Cell::new(0),
                }
            }; NUM_CLASSES],
        }
    }

    #[inline]
    fn pop(&self, class: usize) -> Option<*mut u8> {
        let list = &self.lists[class];
        let p = list.head.get();
        if p.is_null() {
            return None;
        }
        // The first word of a cached block stores the next link.
        let next = unsafe { *(p as *mut *mut u8) };
        list.head.set(next);
        list.len.set(list.len.get() - 1);
        Some(p)
    }

    /// Returns false when the class cache is full (caller frees to System).
    #[inline]
    fn push(&self, class: usize, p: *mut u8) -> bool {
        let list = &self.lists[class];
        if list.len.get() >= MAX_CACHED_PER_CLASS {
            return false;
        }
        unsafe { *(p as *mut *mut u8) = list.head.get() };
        list.head.set(p);
        list.len.set(list.len.get() + 1);
        true
    }
}

impl Drop for Cache {
    fn drop(&mut self) {
        for (class, list) in self.lists.iter().enumerate() {
            let layout = class_layout(class);
            let mut p = list.head.get();
            while !p.is_null() {
                let next = unsafe { *(p as *mut *mut u8) };
                unsafe { System.dealloc(p, layout) };
                p = next;
            }
            list.head.set(std::ptr::null_mut());
            list.len.set(0);
        }
    }
}

thread_local! {
    static CACHE: Cache = const { Cache::new() };
}

/// The pooled global allocator. See the module docs for usage.
pub struct PoolAlloc;

// SAFETY: every layout with `class_of(l) == Some(c)` is allocated with
// `class_layout(c)` — whether served from the cache or the system
// allocator — and `class_layout(c)` satisfies the requested layout (size
// and alignment are both at least as large). Deallocation recomputes the
// same class from the same layout, so blocks always return (to the cache
// or to System) under the exact layout they were allocated with.
// Pass-through layouts go to System verbatim.
unsafe impl GlobalAlloc for PoolAlloc {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        match class_of(layout) {
            Some(class) => {
                // `try_with` so allocation during TLS teardown still works.
                if let Ok(Some(p)) = CACHE.try_with(|c| c.pop(class)) {
                    return p;
                }
                System.alloc(class_layout(class))
            }
            None => System.alloc(layout),
        }
    }

    #[inline]
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        match class_of(layout) {
            Some(class) => {
                if CACHE.try_with(|c| c.push(class, p)).unwrap_or(false) {
                    return;
                }
                System.dealloc(p, class_layout(class));
            }
            None => System.dealloc(p, layout),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up() {
        let l = |s, a| Layout::from_size_align(s, a).unwrap();
        assert_eq!(class_of(l(1, 1)), Some(0)); // -> 16
        assert_eq!(class_of(l(16, 8)), Some(0));
        assert_eq!(class_of(l(17, 8)), Some(1)); // -> 32
        assert_eq!(class_of(l(64, 16)), Some(2));
        assert_eq!(class_of(l(1024, 8)), Some(6));
        assert_eq!(class_of(l(1025, 8)), None);
        assert_eq!(class_of(l(64, 32)), None); // over-aligned
    }

    #[test]
    fn class_layout_satisfies_requests() {
        for size in [1usize, 15, 16, 17, 100, 128, 500, 1024] {
            for align in [1usize, 2, 4, 8, 16] {
                let req = Layout::from_size_align(size, align).unwrap();
                if let Some(c) = class_of(req) {
                    let cl = class_layout(c);
                    assert!(cl.size() >= req.size());
                    assert!(cl.align() >= req.align());
                }
            }
        }
    }

    #[test]
    fn alloc_roundtrip_and_reuse() {
        let a = PoolAlloc;
        let layout = Layout::from_size_align(48, 8).unwrap();
        unsafe {
            let p1 = a.alloc(layout);
            assert!(!p1.is_null());
            std::ptr::write_bytes(p1, 0xAB, 48);
            a.dealloc(p1, layout);
            // Same class (64B) must come back from the cache.
            let p2 = a.alloc(Layout::from_size_align(60, 16).unwrap());
            assert_eq!(p1, p2);
            a.dealloc(p2, Layout::from_size_align(60, 16).unwrap());
        }
    }

    #[test]
    fn oversized_passes_through() {
        let a = PoolAlloc;
        let layout = Layout::from_size_align(4096, 8).unwrap();
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            std::ptr::write_bytes(p, 0, 4096);
            a.dealloc(p, layout);
        }
    }

    #[test]
    fn cross_thread_free_is_safe() {
        let a = &PoolAlloc;
        let layout = Layout::from_size_align(64, 8).unwrap();
        let p = unsafe { a.alloc(layout) } as usize;
        std::thread::spawn(move || {
            unsafe { PoolAlloc.dealloc(p as *mut u8, Layout::from_size_align(64, 8).unwrap()) };
        })
        .join()
        .unwrap();
    }
}
