//! Assertion helpers shared by test code across the workspace.
//!
//! Test modules use these instead of sprinkling `unwrap`/`expect` — the
//! `#[track_caller]` attribute keeps the failure location at the call site,
//! and the workspace policy of auditing `unwrap()`/`expect()` density stays
//! meaningful because the escape hatch is exactly two functions.

/// Unwrap an `Ok`, panicking with the error's debug form otherwise.
#[track_caller]
pub fn ok<T, E: std::fmt::Debug>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("unexpected Err: {e:?}"),
    }
}

/// Unwrap a `Some`, panicking otherwise.
#[track_caller]
pub fn some<T>(o: Option<T>) -> T {
    match o {
        Some(v) => v,
        None => panic!("unexpected None"),
    }
}
