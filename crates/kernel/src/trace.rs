//! VCD waveform tracing.
//!
//! The tracer records value changes of registered variables and renders a
//! standard Value Change Dump file, the same artifact `sc_trace` produces in
//! a SystemC flow. Traces are accumulated in memory and rendered on demand,
//! which keeps the hot path allocation-light (a change record is three
//! words).

use std::fmt::Write as _;

use crate::error::SimResult;
use crate::json::{ju64, Json};
use crate::snapshot as snap;
use crate::time::SimTime;

/// A traced value sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceValue {
    /// Single-bit value.
    Bool(bool),
    /// Multi-bit vector, LSB-justified in `value`.
    Bits {
        /// The bit pattern.
        value: u64,
        /// Vector width in bits (1..=64).
        width: u8,
    },
    /// Real-valued sample.
    Real(f64),
}

/// Types that can be sampled into a VCD trace.
pub trait Traceable {
    /// Sample the current value.
    fn trace_value(&self) -> TraceValue;
}

impl Traceable for bool {
    fn trace_value(&self) -> TraceValue {
        TraceValue::Bool(*self)
    }
}

macro_rules! impl_traceable_uint {
    ($($t:ty => $w:expr),*) => {$(
        impl Traceable for $t {
            fn trace_value(&self) -> TraceValue {
                TraceValue::Bits { value: *self as u64, width: $w }
            }
        }
    )*};
}
impl_traceable_uint!(u8 => 8, u16 => 16, u32 => 32, u64 => 64, usize => 64);

impl Traceable for i64 {
    fn trace_value(&self) -> TraceValue {
        TraceValue::Bits {
            value: *self as u64,
            width: 64,
        }
    }
}

impl Traceable for f64 {
    fn trace_value(&self) -> TraceValue {
        TraceValue::Real(*self)
    }
}

struct VarDecl {
    name: String,
    width: u8,
    real: bool,
}

/// In-memory VCD trace recorder.
#[derive(Default)]
pub struct VcdTracer {
    vars: Vec<VarDecl>,
    changes: Vec<(SimTime, u32, TraceValue)>,
    /// Process-local mutation counter (see [`Recorder::epoch`]
    /// (crate::observe::Recorder::epoch)): bumped by declare/record/
    /// restore, never serialized, never moves backwards. Lets the delta
    /// snapshot layer skip re-serializing an unchanged trace log.
    epoch: u64,
}

impl VcdTracer {
    /// New, empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mutation epoch: changes iff the trace log may have changed since
    /// the epoch was last read. Monotonic within a process.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Declare a variable; returns its handle for [`VcdTracer::record`].
    ///
    /// Names are sanitized to the VCD identifier charset, and a collision
    /// with an already-declared variable gets a `_<index>` suffix so every
    /// `$var` line stays unambiguous for waveform viewers.
    pub fn declare(&mut self, name: &str, sample: TraceValue) -> usize {
        let (width, real) = match sample {
            TraceValue::Bool(_) => (1, false),
            TraceValue::Bits { width, .. } => (width, false),
            TraceValue::Real(_) => (64, true),
        };
        self.epoch += 1;
        let id = self.vars.len();
        let mut name = sanitize(name);
        if self.vars.iter().any(|v| v.name == name) {
            name = format!("{name}_{id}");
        }
        self.vars.push(VarDecl { name, width, real });
        self.changes.push((SimTime::ZERO, id as u32, sample));
        id
    }

    /// Record a value change at `time`.
    pub fn record(&mut self, time: SimTime, var: usize, value: TraceValue) {
        debug_assert!(var < self.vars.len(), "trace var out of range");
        self.epoch += 1;
        self.changes.push((time, var as u32, value));
    }

    /// Number of change records (including initial values).
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// The coarsest VCD timescale that represents every recorded change
    /// exactly: the largest power-of-1000 unit (fs, ps, ns, µs, ms, s)
    /// dividing all timestamps. An empty or t=0-only trace reports `1 ns`
    /// (the conventional default) rather than the vacuous femtosecond.
    pub fn timescale(&self) -> (u64, &'static str) {
        const UNITS: [(u64, &str); 6] = [
            (1_000_000_000_000_000, "s"),
            (1_000_000_000_000, "ms"),
            (1_000_000_000, "us"),
            (1_000_000, "ns"),
            (1_000, "ps"),
            (1, "fs"),
        ];
        let mut any_nonzero = false;
        for &(fs_per_unit, unit) in &UNITS {
            let mut divides_all = true;
            for &(t, _, _) in &self.changes {
                if t.as_fs() == 0 {
                    continue;
                }
                any_nonzero = true;
                if t.as_fs() % fs_per_unit != 0 {
                    divides_all = false;
                    break;
                }
            }
            if divides_all && any_nonzero {
                return (fs_per_unit, unit);
            }
        }
        (1_000_000, "ns")
    }

    /// Render the accumulated trace as VCD text. The `$timescale` is
    /// derived from the actual time resolution of the recorded changes
    /// (see [`VcdTracer::timescale`]) and timestamps are scaled to it.
    pub fn render(&self) -> String {
        let (fs_per_unit, unit) = self.timescale();
        let mut out = String::with_capacity(256 + self.changes.len() * 16);
        let _ = writeln!(out, "$timescale 1 {unit} $end");
        out.push_str("$scope module top $end\n");
        for (i, v) in self.vars.iter().enumerate() {
            let code = id_code(i);
            if v.real {
                let _ = writeln!(out, "$var real 64 {code} {} $end", v.name);
            } else {
                let _ = writeln!(out, "$var wire {} {code} {} $end", v.width, v.name);
            }
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");

        let mut last_time: Option<SimTime> = None;
        // Changes were recorded in simulation order, so a single pass with
        // timestamp markers is already a valid VCD body.
        for &(t, var, val) in &self.changes {
            if last_time != Some(t) {
                let _ = writeln!(out, "#{}", t.as_fs() / fs_per_unit);
                last_time = Some(t);
            }
            let code = id_code(var as usize);
            match val {
                TraceValue::Bool(b) => {
                    let _ = writeln!(out, "{}{}", if b { '1' } else { '0' }, code);
                }
                TraceValue::Bits { value, width } => {
                    let _ = writeln!(out, "b{:0w$b} {code}", value, w = width as usize);
                }
                TraceValue::Real(r) => {
                    let _ = writeln!(out, "r{r} {code}");
                }
            }
        }
        out
    }

    /// Write the trace to a file.
    pub fn write_to(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }
}

fn trace_value_json(v: TraceValue) -> Json {
    match v {
        TraceValue::Bool(b) => Json::obj().with("b", Json::Bool(b)),
        TraceValue::Bits { value, width } => Json::obj()
            .with("v", ju64(value))
            .with("w", Json::from(width as u64)),
        TraceValue::Real(r) => Json::obj().with("r", Json::Num(r)),
    }
}

fn trace_value_of(j: &Json) -> SimResult<TraceValue> {
    if let Some(b) = j.get("b").and_then(Json::as_bool) {
        return Ok(TraceValue::Bool(b));
    }
    if let Some(v) = j.get("v").and_then(crate::json::ju64_of) {
        let w = snap::u64_field(j, "w")? as u8;
        return Ok(TraceValue::Bits { value: v, width: w });
    }
    if let Some(r) = j.get("r").and_then(Json::as_f64) {
        return Ok(TraceValue::Real(r));
    }
    Err(snap::err(format!("malformed trace value {j}")))
}

impl crate::snapshot::Snapshotable for VcdTracer {
    fn snapshot_json(&self) -> Json {
        let vars: Vec<Json> = self
            .vars
            .iter()
            .map(|v| {
                Json::obj()
                    .with("name", Json::from(v.name.as_str()))
                    .with("width", Json::from(v.width as u64))
                    .with("real", Json::Bool(v.real))
            })
            .collect();
        let changes: Vec<Json> = self
            .changes
            .iter()
            .map(|&(t, var, val)| {
                Json::obj()
                    .with("t", ju64(t.0))
                    .with("var", Json::from(var as u64))
                    .with("val", trace_value_json(val))
            })
            .collect();
        Json::obj()
            .with("vars", Json::Arr(vars))
            .with("changes", Json::Arr(changes))
    }

    /// Restore into a tracer whose variables were re-declared by the fresh
    /// build. Declarations must match the snapshot (same spec, same
    /// registration order); the change log — including the initial t=0
    /// samples `declare` pushed — is replaced wholesale.
    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        let vars = snap::arr_field(state, "vars")?;
        if vars.len() != self.vars.len() {
            return Err(snap::err(format!(
                "tracer has {} vars, snapshot has {}",
                self.vars.len(),
                vars.len()
            )));
        }
        for (i, v) in vars.iter().enumerate() {
            let name = snap::str_field(v, "name")?;
            if name != self.vars[i].name {
                return Err(snap::err(format!(
                    "tracer var {i} is {:?}, snapshot has {name:?}",
                    self.vars[i].name
                )));
            }
        }
        self.epoch += 1;
        self.changes.clear();
        for c in snap::arr_field(state, "changes")? {
            let var = snap::usize_field(c, "var")?;
            if var >= self.vars.len() {
                return Err(snap::err(format!("trace change var {var} out of range")));
            }
            self.changes.push((
                SimTime(snap::u64_field(c, "t")?),
                var as u32,
                trace_value_of(snap::field(c, "val")?)?,
            ));
        }
        Ok(())
    }
}

/// VCD identifier codes: printable ASCII 33..=126, little-endian base-94.
fn id_code(mut idx: usize) -> String {
    let mut s = String::new();
    loop {
        s.push((33 + (idx % 94)) as u8 as char);
        idx /= 94;
        if idx == 0 {
            break;
        }
        idx -= 1;
    }
    s
}

/// Restrict a variable name to printable, non-delimiter ASCII: whitespace,
/// control characters, non-ASCII and `$` (the VCD keyword sigil) all map
/// to `_`. An empty result becomes `_`.
fn sanitize(name: &str) -> String {
    let s: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_graphic() && c != '$' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if s.is_empty() {
        "_".to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_codes_are_unique_and_printable() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let c = id_code(i);
            assert!(c.chars().all(|ch| (33..=126).contains(&(ch as u32))));
            assert!(seen.insert(c), "duplicate code at {i}");
        }
    }

    #[test]
    fn renders_header_and_changes() {
        let mut t = VcdTracer::new();
        let clk = t.declare("clk", TraceValue::Bool(false));
        let bus = t.declare(
            "bus addr",
            TraceValue::Bits {
                value: 0,
                width: 16,
            },
        );
        t.record(SimTime(1000), clk, TraceValue::Bool(true));
        t.record(
            SimTime(1000),
            bus,
            TraceValue::Bits {
                value: 0xAB,
                width: 16,
            },
        );
        t.record(SimTime(2000), clk, TraceValue::Bool(false));
        let vcd = t.render();
        // 1000/2000 fs timestamps share a picosecond resolution, so the
        // derived timescale is 1 ps and timestamps are scaled to it.
        assert!(vcd.contains("$timescale 1 ps $end"));
        assert!(vcd.contains("$var wire 1 ! clk $end"));
        assert!(vcd.contains("$var wire 16 \" bus_addr $end"));
        assert!(vcd.contains("#1\n"));
        assert!(vcd.contains("b0000000010101011 \""));
        assert!(vcd.contains("#2\n"));
        assert_eq!(t.var_count(), 2);
        assert_eq!(t.change_count(), 5); // 2 initial + 3 recorded
    }

    #[test]
    fn timescale_derivation_picks_coarsest_exact_unit() {
        let mut t = VcdTracer::new();
        let v = t.declare("v", TraceValue::Bool(false));
        t.record(SimTime(3_000_000), v, TraceValue::Bool(true)); // 3 ns
        t.record(SimTime(10_000_000), v, TraceValue::Bool(false)); // 10 ns
        assert_eq!(t.timescale(), (1_000_000, "ns"));
        // One femtosecond-odd change forces the finest unit.
        t.record(SimTime(10_000_001), v, TraceValue::Bool(true));
        assert_eq!(t.timescale(), (1, "fs"));
    }

    #[test]
    fn empty_trace_defaults_to_ns_timescale() {
        let mut t = VcdTracer::new();
        t.declare("v", TraceValue::Bool(false)); // only a t=0 initial value
        assert_eq!(t.timescale(), (1_000_000, "ns"));
        assert!(t.render().contains("$timescale 1 ns $end"));
    }

    #[test]
    fn many_variables_get_unique_multichar_codes() {
        let mut t = VcdTracer::new();
        for i in 0..120 {
            t.declare(&format!("sig{i}"), TraceValue::Bool(false));
        }
        let vcd = t.render();
        // Variable 94 is the first with a two-character identifier code.
        let code94 = id_code(94);
        assert_eq!(code94.len(), 2);
        assert!(vcd.contains(&format!("$var wire 1 {code94} sig94 $end")));
        // Every declaration line carries a distinct code.
        let codes: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(3).unwrap())
            .collect();
        let unique: std::collections::HashSet<&&str> = codes.iter().collect();
        assert_eq!(codes.len(), 120);
        assert_eq!(unique.len(), 120);
    }

    #[test]
    fn colliding_and_hostile_names_are_escaped_and_deduplicated() {
        let mut t = VcdTracer::new();
        t.declare("bus addr", TraceValue::Bool(false));
        let dup = t.declare("bus\taddr", TraceValue::Bool(false)); // same after sanitize
        t.declare("$dumpvars", TraceValue::Bool(false)); // keyword sigil
        t.declare("", TraceValue::Bool(false)); // empty
        let vcd = t.render();
        assert!(vcd.contains("bus_addr $end"));
        assert!(vcd.contains(&format!("bus_addr_{dup} $end")));
        assert!(vcd.contains("_dumpvars $end"));
        assert!(!vcd.contains('\t'));
        // All four still declared and uniquely named.
        let names: Vec<&str> = vcd
            .lines()
            .filter(|l| l.starts_with("$var"))
            .map(|l| l.split_whitespace().nth(4).unwrap())
            .collect();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(names.len(), 4);
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn real_values_render_with_r_prefix() {
        let mut t = VcdTracer::new();
        let p = t.declare("power", TraceValue::Real(0.0));
        t.record(SimTime(10), p, TraceValue::Real(2.5));
        let vcd = t.render();
        assert!(vcd.contains("$var real 64 ! power $end"));
        assert!(vcd.contains("r2.5 !"));
    }

    #[test]
    fn traceable_impls_sample_expected_widths() {
        assert_eq!(true.trace_value(), TraceValue::Bool(true));
        assert_eq!(7u8.trace_value(), TraceValue::Bits { value: 7, width: 8 });
        assert_eq!(
            0xFFFF_FFFF_FFFFu64.trace_value(),
            TraceValue::Bits {
                value: 0xFFFF_FFFF_FFFF,
                width: 64
            }
        );
        assert!(matches!(
            (-1i64).trace_value(),
            TraceValue::Bits { width: 64, .. }
        ));
        assert!(matches!(1.5f64.trace_value(), TraceValue::Real(_)));
    }
}
