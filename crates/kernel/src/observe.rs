//! Structured tracing: spans, instants and counters from every layer.
//!
//! The VCD tracer ([`crate::trace`]) answers "what value did this wire
//! hold"; this module answers "what was the *system* doing" — which bus
//! transaction was in flight, which context the fabric was loading, which
//! instruction the CPU was issuing — as a single, totally ordered event
//! stream that exporters turn into a Perfetto/`chrome://tracing` timeline.
//!
//! Design constraints (the dispatch loop is the hottest code in the repo):
//!
//! * **Allocation-light.** An event is a few plain words: a `&'static str`
//!   name, a `u64` payload, ids. No strings are built at record time.
//! * **Compile-cheap off switch.** [`Recorder::disabled`] reduces every
//!   emit to one predictable branch; the bench harness
//!   (`BENCH_kernel.json`) guards the tracing-off hot path.
//! * **Bounded memory.** Events land in a preallocated ring buffer; when
//!   it wraps, the oldest events are overwritten and counted in
//!   [`Recorder::dropped`], never reallocated.
//!
//! Spans are begin/end pairs matched per `(component, lane, name)`. A
//! *lane* is a sub-track within a component: emitters that interleave two
//! independent activities (the fabric executes on one lane while a
//! prefetch load streams on another) put them on different lanes so each
//! lane's spans nest properly — which is exactly what the Chrome
//! trace-event `B`/`E` stack model requires.

use crate::error::SimResult;
use crate::event::ComponentId;
use crate::json::{ju64, Json};
use crate::snapshot as snap;
use crate::time::SimTime;

/// Pseudo component id used for events emitted by the kernel itself
/// (delta-cycle and timed-advance phases) rather than by a component.
pub const KERNEL_SOURCE: ComponentId = usize::MAX;

/// Coarse event category, used by exporters for coloring and filtering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceCategory {
    /// Kernel phases: timed advances, delta cycles.
    Kernel,
    /// Bus transactions: request/grant/response phases, faults.
    Bus,
    /// Reconfigurable fabric: context switches, execution, evictions.
    Fabric,
    /// CPU program steps.
    Cpu,
    /// Anything model-specific.
    User,
}

impl TraceCategory {
    /// Stable lowercase name (used verbatim in exports).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceCategory::Kernel => "kernel",
            TraceCategory::Bus => "bus",
            TraceCategory::Fabric => "fabric",
            TraceCategory::Cpu => "cpu",
            TraceCategory::User => "user",
        }
    }

    /// Inverse of [`TraceCategory::as_str`] (snapshot restore).
    pub fn from_name(s: &str) -> Option<TraceCategory> {
        Some(match s {
            "kernel" => TraceCategory::Kernel,
            "bus" => TraceCategory::Bus,
            "fabric" => TraceCategory::Fabric,
            "cpu" => TraceCategory::Cpu,
            "user" => TraceCategory::User,
            _ => return None,
        })
    }
}

/// What kind of mark an event is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// Opens a span on `(comp, lane, name)`.
    Begin,
    /// Closes the most recent open span on `(comp, lane, name)`.
    End,
    /// A point-in-time marker.
    Instant,
    /// A sampled counter value (monotonic or gauge, by convention of the
    /// emitter; the exporters plot whatever sequence was recorded).
    Counter,
}

impl TraceEventKind {
    /// Stable lowercase name (exports and snapshots).
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Begin => "begin",
            TraceEventKind::End => "end",
            TraceEventKind::Instant => "instant",
            TraceEventKind::Counter => "counter",
        }
    }

    /// Inverse of [`TraceEventKind::as_str`] (snapshot restore).
    pub fn from_name(s: &str) -> Option<TraceEventKind> {
        Some(match s {
            "begin" => TraceEventKind::Begin,
            "end" => TraceEventKind::End,
            "instant" => TraceEventKind::Instant,
            "counter" => TraceEventKind::Counter,
            _ => return None,
        })
    }
}

/// One structured trace event.
///
/// `value` is the single numeric payload: a context id for fabric spans, a
/// master id or address for bus events, the counter value for
/// [`TraceEventKind::Counter`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimEvent {
    /// Simulated time of emission.
    pub at: SimTime,
    /// Kernel delta-cycle count at emission (total across the run).
    pub delta: u64,
    /// Emitting component, or [`KERNEL_SOURCE`] for the kernel itself.
    pub comp: ComponentId,
    /// Sub-track within the component (0 = main lane).
    pub lane: u8,
    /// Coarse category.
    pub cat: TraceCategory,
    /// Event name; `&'static str` so recording never allocates.
    pub name: &'static str,
    /// Span/instant/counter discriminator.
    pub kind: TraceEventKind,
    /// Numeric payload (see type-level docs).
    pub value: u64,
}

/// Ring-buffer backed recorder for [`SimEvent`]s — the `TraceSink` a
/// [`Simulator`](crate::kernel::Simulator) forwards instrumentation to.
#[derive(Debug)]
pub struct Recorder {
    enabled: bool,
    capacity: usize,
    buf: Vec<SimEvent>,
    /// Next overwrite position once `buf.len() == capacity`.
    head: usize,
    emitted: u64,
    dropped: u64,
    /// Process-local mutation counter: bumped by every state change
    /// (emit-when-enabled, clear, restore). Never serialized and never
    /// reset backwards, so two equal epochs on the same `Recorder` value
    /// always mean "no mutation in between" — the delta snapshot layer
    /// uses this to skip re-serializing an unchanged recorder.
    epoch: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// The no-op recorder: every emit is a single predictable branch, no
    /// buffer is allocated. This is the state every simulator starts in.
    pub fn disabled() -> Self {
        Recorder {
            enabled: false,
            capacity: 0,
            buf: Vec::new(),
            head: 0,
            emitted: 0,
            dropped: 0,
            epoch: 0,
        }
    }

    /// A recorder keeping the most recent `capacity` events (at least 1).
    pub fn enabled(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Recorder {
            enabled: true,
            capacity,
            buf: Vec::with_capacity(capacity),
            head: 0,
            emitted: 0,
            dropped: 0,
            epoch: 0,
        }
    }

    /// Mutation epoch: changes iff the recorder's observable state may
    /// have changed since the last time the epoch was read. Monotonic
    /// within a process; meaningless across processes.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Force the epoch to at least `floor` (used when a simulator swaps
    /// in a freshly-built recorder, so the new value can never repeat an
    /// epoch already associated with an older capture point).
    pub(crate) fn bump_epoch_past(&mut self, floor: u64) {
        self.epoch = self.epoch.max(floor) + 1;
    }

    /// Whether events are being recorded. Emitters with any per-event cost
    /// beyond building a [`SimEvent`] should check this first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (no-op when disabled).
    #[inline]
    pub fn emit(&mut self, ev: SimEvent) {
        if !self.enabled {
            return;
        }
        self.epoch += 1;
        self.emitted += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head += 1;
            if self.head == self.capacity {
                self.head = 0;
            }
            self.dropped += 1;
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> Vec<SimEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Events retained in the ring right now.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Ring capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events emitted over the recorder's lifetime.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Events overwritten because the ring wrapped.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drop all retained events (counters keep accumulating).
    pub fn clear(&mut self) {
        self.epoch += 1;
        self.buf.clear();
        self.head = 0;
    }
}

impl crate::snapshot::Snapshotable for Recorder {
    fn snapshot_json(&self) -> Json {
        let events: Vec<Json> = self
            .events()
            .iter()
            .map(|e| {
                Json::obj()
                    .with("at", ju64(e.at.0))
                    .with("delta", ju64(e.delta))
                    .with("comp", ju64(e.comp as u64))
                    .with("lane", Json::from(e.lane as u64))
                    .with("cat", Json::from(e.cat.as_str()))
                    .with("name", Json::from(e.name))
                    .with("kind", Json::from(e.kind.as_str()))
                    .with("value", ju64(e.value))
            })
            .collect();
        Json::obj()
            .with("enabled", Json::Bool(self.enabled))
            .with("capacity", Json::from(self.capacity as u64))
            .with("emitted", ju64(self.emitted))
            .with("dropped", ju64(self.dropped))
            .with("events", Json::Arr(events))
    }

    fn restore_json(&mut self, state: &Json) -> SimResult<()> {
        let enabled = snap::bool_field(state, "enabled")?;
        let capacity = snap::usize_field(state, "capacity")?;
        // The epoch is process-local and must stay monotonic through a
        // restore: a restored recorder is a new state, so it gets a fresh
        // epoch strictly above everything this instance handed out before.
        let epoch = self.epoch + 1;
        *self = if enabled {
            Recorder::enabled(capacity)
        } else {
            Recorder::disabled()
        };
        self.epoch = epoch;
        self.emitted = snap::u64_field(state, "emitted")?;
        self.dropped = snap::u64_field(state, "dropped")?;
        for e in snap::arr_field(state, "events")? {
            let cat_s = snap::str_field(e, "cat")?;
            let kind_s = snap::str_field(e, "kind")?;
            let ev = SimEvent {
                at: SimTime(snap::u64_field(e, "at")?),
                delta: snap::u64_field(e, "delta")?,
                comp: snap::u64_field(e, "comp")? as ComponentId,
                lane: snap::u64_field(e, "lane")? as u8,
                cat: TraceCategory::from_name(cat_s)
                    .ok_or_else(|| snap::err(format!("unknown trace category {cat_s:?}")))?,
                name: crate::snapshot::intern(snap::str_field(e, "name")?),
                kind: TraceEventKind::from_name(kind_s)
                    .ok_or_else(|| snap::err(format!("unknown trace event kind {kind_s:?}")))?,
                value: snap::u64_field(e, "value")?,
            };
            // Bypass emit(): the emitted/dropped totals were restored above
            // and must not double-count the retained events.
            if self.buf.len() < self.capacity {
                self.buf.push(ev);
            }
        }
        // Restored oldest-first with head 0: the next wrap overwrites the
        // oldest retained event, exactly as the live ring would.
        self.head = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, kind: TraceEventKind, value: u64) -> SimEvent {
        SimEvent {
            at: SimTime(value * 10),
            delta: value,
            comp: 0,
            lane: 0,
            cat: TraceCategory::User,
            name,
            kind,
            value,
        }
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let mut r = Recorder::disabled();
        assert!(!r.is_enabled());
        r.emit(ev("x", TraceEventKind::Instant, 1));
        assert_eq!(r.len(), 0);
        assert_eq!(r.emitted(), 0);
        assert_eq!(r.dropped(), 0);
        assert!(r.events().is_empty());
        assert_eq!(r.capacity(), 0);
    }

    #[test]
    fn span_nesting_is_preserved_in_order() {
        let mut r = Recorder::enabled(16);
        r.emit(ev("outer", TraceEventKind::Begin, 0));
        r.emit(ev("inner", TraceEventKind::Begin, 1));
        r.emit(ev("inner", TraceEventKind::End, 2));
        r.emit(ev("outer", TraceEventKind::End, 3));
        let evs = r.events();
        let names: Vec<&str> = evs.iter().map(|e| e.name).collect();
        assert_eq!(names, vec!["outer", "inner", "inner", "outer"]);
        // Begin/end pairs balance as a proper bracket sequence.
        let mut depth = 0i64;
        for e in &evs {
            match e.kind {
                TraceEventKind::Begin => depth += 1,
                TraceEventKind::End => {
                    depth -= 1;
                    assert!(depth >= 0, "end without begin");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn counters_record_monotonic_sequences() {
        let mut r = Recorder::enabled(16);
        for v in [1u64, 3, 7, 7, 12] {
            r.emit(ev("words", TraceEventKind::Counter, v));
        }
        let vals: Vec<u64> = r
            .events()
            .iter()
            .filter(|e| e.kind == TraceEventKind::Counter)
            .map(|e| e.value)
            .collect();
        assert_eq!(vals, vec![1, 3, 7, 7, 12]);
        assert!(vals.windows(2).all(|w| w[0] <= w[1]), "monotone");
    }

    #[test]
    fn ring_buffer_wraps_and_counts_drops() {
        let mut r = Recorder::enabled(4);
        for v in 0..7u64 {
            r.emit(ev("tick", TraceEventKind::Instant, v));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.emitted(), 7);
        assert_eq!(r.dropped(), 3);
        // Oldest-first order survives the wrap: values 3..=6 remain.
        let vals: Vec<u64> = r.events().iter().map(|e| e.value).collect();
        assert_eq!(vals, vec![3, 4, 5, 6]);
    }

    #[test]
    fn clear_resets_retention_but_not_totals() {
        let mut r = Recorder::enabled(2);
        r.emit(ev("a", TraceEventKind::Instant, 0));
        r.emit(ev("b", TraceEventKind::Instant, 1));
        r.emit(ev("c", TraceEventKind::Instant, 2));
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.emitted(), 3);
        r.emit(ev("d", TraceEventKind::Instant, 9));
        assert_eq!(r.events().len(), 1);
        assert_eq!(r.events()[0].value, 9);
    }

    #[test]
    fn zero_capacity_request_still_retains_one_event() {
        let mut r = Recorder::enabled(0);
        r.emit(ev("only", TraceEventKind::Instant, 5));
        r.emit(ev("only", TraceEventKind::Instant, 6));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events()[0].value, 6);
    }
}
