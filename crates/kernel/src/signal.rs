//! Two-phase signals with SystemC `sc_signal` semantics.
//!
//! Writes during the evaluate phase only *request* an update; the kernel
//! applies all requested updates between delta cycles, and subscribers are
//! notified (via `MsgKind::SignalChanged`) only when the value actually
//! changed. This is exactly the evaluate/update split that makes SystemC
//! models insensitive to process ordering — and the property our proptests
//! check.

use std::any::Any;
use std::fmt;
use std::marker::PhantomData;

use crate::event::{ComponentId, SignalIdx};
use crate::time::SimTime;
use crate::trace::{TraceValue, Traceable};

/// Values a signal can carry.
pub trait SignalValue: Clone + PartialEq + fmt::Debug + 'static {}
impl<T: Clone + PartialEq + fmt::Debug + 'static> SignalValue for T {}

/// Typed handle to a signal registered with a simulator.
pub struct SignalRef<T> {
    pub(crate) idx: SignalIdx,
    _marker: PhantomData<fn() -> T>,
}

impl<T> SignalRef<T> {
    pub(crate) fn new(idx: SignalIdx) -> Self {
        SignalRef {
            idx,
            _marker: PhantomData,
        }
    }

    /// Raw channel index (for diagnostics).
    pub fn index(&self) -> SignalIdx {
        self.idx
    }
}

impl<T> Clone for SignalRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SignalRef<T> {}

impl<T> fmt::Debug for SignalRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SignalRef({})", self.idx)
    }
}

/// Trace hook: (tracer variable id, sampling function).
pub(crate) type TraceHook<T> = (usize, fn(&T) -> TraceValue);

pub(crate) struct SignalSlot<T: SignalValue> {
    pub name: String,
    pub current: T,
    pub pending: Option<T>,
    pub subscribers: Vec<ComponentId>,
    pub trace: Option<TraceHook<T>>,
    pub change_count: u64,
    pub last_change: SimTime,
}

/// Type-erased view the kernel uses during the update phase.
pub(crate) trait AnySignalSlot: Any {
    #[allow(dead_code)]
    fn name(&self) -> &str;
    /// Apply a pending write. Returns `true` when the visible value changed.
    fn apply_update(&mut self, now: SimTime) -> bool;
    fn subscribers(&self) -> &[ComponentId];
    fn subscribe(&mut self, c: ComponentId);
    /// Sample for tracing, when tracing is enabled on this signal.
    fn trace_sample(&self) -> Option<(usize, TraceValue)>;
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: SignalValue> AnySignalSlot for SignalSlot<T> {
    fn name(&self) -> &str {
        &self.name
    }

    fn apply_update(&mut self, now: SimTime) -> bool {
        match self.pending.take() {
            Some(v) if v != self.current => {
                self.current = v;
                self.change_count += 1;
                self.last_change = now;
                true
            }
            _ => false,
        }
    }

    fn subscribers(&self) -> &[ComponentId] {
        &self.subscribers
    }

    fn subscribe(&mut self, c: ComponentId) {
        if !self.subscribers.contains(&c) {
            self.subscribers.push(c);
        }
    }

    fn trace_sample(&self) -> Option<(usize, TraceValue)> {
        self.trace.map(|(var, f)| (var, f(&self.current)))
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

impl<T: SignalValue> SignalSlot<T> {
    pub fn new(name: String, init: T) -> Self {
        SignalSlot {
            name,
            current: init,
            pending: None,
            subscribers: Vec::new(),
            trace: None,
            change_count: 0,
            last_change: SimTime::ZERO,
        }
    }
}

/// Install the trace sampling function; called by the simulator when a
/// traceable signal is registered with a tracer.
pub(crate) fn trace_fn<T: SignalValue + Traceable>() -> fn(&T) -> TraceValue {
    |v| v.trace_value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_applies_only_on_change() {
        let mut s = SignalSlot::new("s".into(), 0u32);
        s.pending = Some(0);
        assert!(!s.apply_update(SimTime(10)), "same value is not a change");
        assert_eq!(s.change_count, 0);
        s.pending = Some(5);
        assert!(s.apply_update(SimTime(20)));
        assert_eq!(s.current, 5);
        assert_eq!(s.change_count, 1);
        assert_eq!(s.last_change, SimTime(20));
        assert!(!s.apply_update(SimTime(30)), "no pending write, no change");
    }

    #[test]
    fn last_write_in_a_delta_wins() {
        let mut s = SignalSlot::new("s".into(), 0u32);
        s.pending = Some(1);
        s.pending = Some(2); // overwrites the request, like sc_signal
        assert!(s.apply_update(SimTime(0)));
        assert_eq!(s.current, 2);
        assert_eq!(s.change_count, 1);
    }

    #[test]
    fn subscribe_deduplicates() {
        let mut s = SignalSlot::new("s".into(), false);
        s.subscribe(3);
        s.subscribe(3);
        s.subscribe(7);
        assert_eq!(s.subscribers(), &[3, 7]);
    }

    #[test]
    fn trace_sample_uses_current_value() {
        let mut s = SignalSlot::new("s".into(), 0u8);
        assert!(s.trace_sample().is_none());
        s.trace = Some((4, trace_fn::<u8>()));
        s.current = 9;
        assert_eq!(
            s.trace_sample(),
            Some((4, TraceValue::Bits { value: 9, width: 8 }))
        );
    }

    #[test]
    fn signal_ref_is_copy_and_debug() {
        let r: SignalRef<bool> = SignalRef::new(12);
        let r2 = r;
        assert_eq!(r.index(), r2.index());
        assert_eq!(format!("{r:?}"), "SignalRef(12)");
    }
}
