//! The component (module) abstraction.
//!
//! A component is the unit of behavior, the analogue of an `SC_MODULE`. It
//! owns its state exclusively; all interaction with the rest of the system
//! happens through messages delivered by the kernel and through the
//! [`Api`] handed to [`Component::handle`].

use std::any::Any;

use crate::error::SimResult;
use crate::event::Msg;
use crate::json::Json;
use crate::kernel::Api;

/// A simulation component.
///
/// Requiring `Any` lets harnesses downcast components after a run to read
/// their accumulated statistics (see `Simulator::get`).
pub trait Component: Any {
    /// Deliver one message. The component may read/write channels, schedule
    /// timers, and send messages through `api`; it must not block.
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg);

    /// Capture this component's dynamic state for `Simulator::snapshot`.
    ///
    /// The default fails loudly: a component that keeps state the kernel
    /// cannot see (closure captures, model registers) must opt in
    /// explicitly, otherwise a snapshot would silently restore a stale
    /// model. Stateless components can return `Ok(Json::Null)`.
    fn snapshot(&mut self) -> SimResult<Json> {
        Err(crate::snapshot::err(
            "component does not implement snapshot",
        ))
    }

    /// Restore state captured by [`Component::snapshot`] onto a freshly
    /// constructed component of the same configuration.
    fn restore(&mut self, _state: &Json) -> SimResult<()> {
        Err(crate::snapshot::err("component does not implement restore"))
    }

    /// Restore onto the *live* component instance the document was captured
    /// from (or one of its lineage: `Simulator::rewind` applies an ancestor
    /// state, `Simulator::restore_delta` a descendant one). Because live
    /// state and document lie on one timeline, implementations may exploit
    /// the overlap — skip re-parsing payloads whose change epoch matches,
    /// truncate grow-only logs — where a cross-simulator [`Component::restore`]
    /// must parse everything. The default does a full restore, which is
    /// always correct.
    fn restore_live(&mut self, state: &Json) -> SimResult<()> {
        self.restore(state)
    }
}

/// Adapter turning a closure into a [`Component`]; handy for testbenches.
pub struct FnComponent<F: FnMut(&mut Api<'_>, Msg) + 'static> {
    f: F,
}

impl<F: FnMut(&mut Api<'_>, Msg) + 'static> FnComponent<F> {
    /// Wrap a closure.
    pub fn new(f: F) -> Self {
        FnComponent { f }
    }
}

impl<F: FnMut(&mut Api<'_>, Msg) + 'static> Component for FnComponent<F> {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        (self.f)(api, msg)
    }
}

/// A component that ignores every message; useful as an address-space
/// placeholder in tests.
#[derive(Default)]
pub struct NullComponent;

impl Component for NullComponent {
    fn handle(&mut self, _api: &mut Api<'_>, _msg: Msg) {}

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::Null)
    }

    fn restore(&mut self, _state: &Json) -> SimResult<()> {
        Ok(())
    }
}
