//! Deterministic snapshot & restore of simulator state.
//!
//! A [`Snapshot`] is a JSON document capturing everything dynamic about a
//! simulation — current time, the global sequence counter, every pending
//! timed event (with its original sequence number, so the restored run
//! dispatches in exactly the same `(time, seq)` total order), signal and
//! FIFO contents, clock phases, subscriptions created by `Start` handlers,
//! kernel metrics, trace buffers, and each component's model state.
//!
//! The contract the round-trip tests enforce: for any time `t`,
//!
//! ```text
//! run_until(t); snapshot(); restore-into-fresh-sim; run()
//! ```
//!
//! produces *bit-identical* observable results (stats, records, trace event
//! streams) to a single uninterrupted `run()`. Restoring never replays
//! `Start` — subscriptions are part of the snapshot — and the snapshot
//! contains no wall-clock or RNG state, so it is reproducible by
//! construction.
//!
//! Static configuration (component graph, channel names, clock periods,
//! address maps …) is deliberately **not** captured: a snapshot is restored
//! into a freshly built simulator of the same shape. That split is what
//! makes warm-fork DSE sweeps work — the shared prefix is snapshot once,
//! then each sweep point rebuilds its (parameter-varied) world and restores
//! the common dynamic state into it.
//!
//! The report log ([`crate::report::Reporter`]) is intentionally excluded:
//! it is a diagnostic artifact of a particular process, not simulation
//! state, and restoring it would duplicate entries already surfaced to the
//! user when the prefix ran.
//!
//! In-flight user payloads (`MsgKind::User(Box<dyn Any>)`) are serialized
//! through a process-global [`PayloadCodec`] registry; model crates
//! register codecs for their message types at construction time (see
//! `drcf-bus`). Payload types without a codec fail the snapshot with a
//! typed error naming the payload's type id.

use std::any::Any;
use std::collections::HashSet;
use std::sync::{Mutex, OnceLock};

use crate::error::{SimError, SimErrorKind, SimResult};
use crate::json::Json;

/// Schema identifier embedded in every snapshot document.
pub const SNAPSHOT_SCHEMA: &str = "drcf-snapshot-v1";

/// Schema identifier embedded in every delta-snapshot document.
pub const DELTA_SCHEMA: &str = "drcf-snapshot-delta-v1";

/// Marker a delta document carries in place of a heavy global (tracer,
/// recorder) whose mutation epoch is unchanged since the parent capture.
/// Unambiguous because every real payload in those positions is an object
/// or `null`, never a bare string.
pub const UNCHANGED_MARK: &str = "unchanged";

/// The [`UNCHANGED_MARK`] as a JSON value.
pub fn unchanged_mark() -> Json {
    Json::from(UNCHANGED_MARK)
}

/// Whether `j` is the [`UNCHANGED_MARK`].
pub fn is_unchanged_mark(j: &Json) -> bool {
    matches!(j, Json::Str(s) if s == UNCHANGED_MARK)
}

/// A serialized simulation state (see the module docs for the contract).
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    state: Json,
    /// FNV-1a 64 of the compact rendering, computed once at construction.
    /// Delta chaining compares parent hashes on every fork, so the
    /// fingerprint is cached instead of re-streaming the document.
    hash: u64,
    /// Compact-rendering byte length (size accounting for the perf bench).
    bytes: u64,
}

impl Snapshot {
    /// Wrap a state document produced by `Simulator::snapshot`.
    pub(crate) fn from_state(state: Json) -> Snapshot {
        let (hash, bytes) = state.fnv1a64_with_len();
        Snapshot { state, hash, bytes }
    }

    /// The underlying JSON document.
    pub fn json(&self) -> &Json {
        &self.state
    }

    /// Serialize (pretty-printed, suitable for a file).
    pub fn to_text(&self) -> String {
        self.state.to_string_pretty()
    }

    /// FNV-1a (64-bit) fingerprint of the canonical compact rendering —
    /// the same value `Simulator::state_hash` reports. Useful for cheap
    /// replay validation: hash a stored snapshot and compare against a
    /// re-simulated run without diffing full documents. Cached at
    /// construction, so calling it is free.
    pub fn state_hash(&self) -> u64 {
        self.hash
    }

    /// Byte length of the compact rendering (what `json().to_string()`
    /// would occupy). Cached at construction.
    pub fn byte_len(&self) -> u64 {
        self.bytes
    }

    /// Parse a snapshot previously written with [`Snapshot::to_text`],
    /// validating the schema marker.
    pub fn parse(text: &str) -> SimResult<Snapshot> {
        let state = Json::parse(text).map_err(|e| err(format!("snapshot parse failed: {e}")))?;
        match state.get("schema").and_then(Json::as_str) {
            Some(SNAPSHOT_SCHEMA) => Ok(Snapshot::from_state(state)),
            Some(other) => Err(err(format!(
                "snapshot schema mismatch: expected {SNAPSHOT_SCHEMA}, found {other}"
            ))),
            None => Err(err("snapshot document has no schema field")),
        }
    }

    /// Parse a *stored* snapshot and validate its content against the
    /// state hash recorded when it was written (the snapshot-store
    /// cache-validation idiom). A document that parses but hashes
    /// differently — truncated tail, bit flip, stale overwrite — is a
    /// typed [`SimErrorKind::SnapshotChain`] error, so callers can fall
    /// back to a cold re-simulation instead of restoring a wrong state.
    pub fn parse_validated(text: &str, expected_hash: u64) -> SimResult<Snapshot> {
        let snap = Snapshot::parse(text).map_err(|e| {
            SimError::new(
                SimErrorKind::SnapshotChain,
                format!("stored snapshot is unreadable: {}", e.message),
            )
        })?;
        if snap.state_hash() != expected_hash {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                format!(
                    "stored snapshot hashes to {:016x}, expected {expected_hash:016x} \
                     (corrupt or stale store entry)",
                    snap.state_hash()
                ),
            ));
        }
        Ok(snap)
    }
}

/// An incremental snapshot: only the components/channels that changed since
/// a parent snapshot, chained to that parent by its state hash.
///
/// Produced by `Simulator::snapshot_delta` and applied with
/// `Simulator::restore_delta`, which patches a *live* simulator standing at
/// the parent state instead of rebuilding one. The document records both
/// the parent hash (what the live state must equal before applying) and the
/// child hash (what `state_hash()` reports after a successful apply), so a
/// chain of deltas is self-validating end to end.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotDelta {
    state: Json,
    parent: u64,
    child: u64,
    bytes: u64,
}

impl SnapshotDelta {
    /// Wrap a delta document produced by `Simulator::snapshot_delta`,
    /// validating the schema marker and extracting the chain hashes.
    pub(crate) fn from_state(state: Json) -> SimResult<SnapshotDelta> {
        match state.get("schema").and_then(Json::as_str) {
            Some(DELTA_SCHEMA) => {}
            Some(other) => {
                return Err(err(format!(
                    "delta schema mismatch: expected {DELTA_SCHEMA}, found {other}"
                )))
            }
            None => return Err(err("delta document has no schema field")),
        }
        let parent = u64_field(&state, "parent")?;
        let child = u64_field(&state, "child")?;
        let (_, bytes) = state.fnv1a64_with_len();
        Ok(SnapshotDelta {
            state,
            parent,
            child,
            bytes,
        })
    }

    /// The underlying JSON document.
    pub fn json(&self) -> &Json {
        &self.state
    }

    /// Serialize (pretty-printed, suitable for a file).
    pub fn to_text(&self) -> String {
        self.state.to_string_pretty()
    }

    /// State hash of the snapshot this delta chains onto: the live
    /// simulator must be at exactly this state for `restore_delta`.
    pub fn parent_hash(&self) -> u64 {
        self.parent
    }

    /// State hash after this delta is applied (the full-snapshot hash of
    /// the child state).
    pub fn child_hash(&self) -> u64 {
        self.child
    }

    /// Compact-rendering byte length — the size the delta actually costs,
    /// versus `Snapshot::byte_len` for the full document.
    pub fn byte_len(&self) -> u64 {
        self.bytes
    }

    /// Parse a delta previously written with [`SnapshotDelta::to_text`].
    pub fn parse(text: &str) -> SimResult<SnapshotDelta> {
        let state = Json::parse(text).map_err(|e| err(format!("delta parse failed: {e}")))?;
        SnapshotDelta::from_state(state)
    }
}

/// One link of a snapshot chain: either a full (rebase) document or a delta
/// chained onto the previous link.
#[derive(Debug, Clone, PartialEq)]
pub enum ChainDoc {
    /// A full snapshot — the chain can be entered (restored) here.
    Full(Snapshot),
    /// An incremental delta onto the preceding link.
    Delta(SnapshotDelta),
}

impl ChainDoc {
    /// Parse a document that may be either a full snapshot or a delta,
    /// dispatching on the schema marker.
    pub fn parse(text: &str) -> SimResult<ChainDoc> {
        let state = Json::parse(text).map_err(|e| err(format!("snapshot parse failed: {e}")))?;
        match state.get("schema").and_then(Json::as_str) {
            Some(SNAPSHOT_SCHEMA) => Ok(ChainDoc::Full(Snapshot::from_state(state))),
            Some(DELTA_SCHEMA) => Ok(ChainDoc::Delta(SnapshotDelta::from_state(state)?)),
            Some(other) => Err(err(format!(
                "unknown snapshot schema {other:?} (expected {SNAPSHOT_SCHEMA} or {DELTA_SCHEMA})"
            ))),
            None => Err(err("snapshot document has no schema field")),
        }
    }

    /// State hash after this link is applied.
    pub fn tip_hash(&self) -> u64 {
        match self {
            ChainDoc::Full(s) => s.state_hash(),
            ChainDoc::Delta(d) => d.child_hash(),
        }
    }

    /// Serialize (pretty-printed, suitable for a file).
    pub fn to_text(&self) -> String {
        match self {
            ChainDoc::Full(s) => s.to_text(),
            ChainDoc::Delta(d) => d.to_text(),
        }
    }

    /// Compact-rendering byte length.
    pub fn byte_len(&self) -> u64 {
        match self {
            ChainDoc::Full(s) => s.byte_len(),
            ChainDoc::Delta(d) => d.byte_len(),
        }
    }

    /// Parse a *stored* chain link and validate it against the tip hash
    /// recorded when it was written (see [`Snapshot::parse_validated`]).
    /// For a full document the tip is its own state hash; for a delta it
    /// is the child hash, whose declared value is checked against the
    /// expectation so a corrupted link surfaces as a typed
    /// [`SimErrorKind::SnapshotChain`] error rather than a wrong restore.
    pub fn parse_validated(text: &str, expected_tip: u64) -> SimResult<ChainDoc> {
        let doc = ChainDoc::parse(text).map_err(|e| {
            SimError::new(
                SimErrorKind::SnapshotChain,
                format!("stored chain link is unreadable: {}", e.message),
            )
        })?;
        if doc.tip_hash() != expected_tip {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                format!(
                    "stored chain link tips at {:016x}, expected {expected_tip:016x} \
                     (corrupt or stale store entry)",
                    doc.tip_hash()
                ),
            ));
        }
        Ok(doc)
    }
}

/// A checkpoint chain: one full base snapshot followed by deltas, with a
/// periodic full-snapshot rebase every `delta_chain` links so restore cost
/// and failure blast radius stay bounded (DESIGN.md §15).
///
/// `checkpoint` captures the next link from a live simulator (delta against
/// the current tip, or a full rebase when the chain since the last full
/// document reaches `delta_chain`); `push` validates and appends documents
/// read back from disk; `restore_into` replays the whole chain into a
/// freshly built simulator.
#[derive(Debug, Clone)]
pub struct SnapshotChain {
    docs: Vec<ChainDoc>,
    /// Rebase period: after this many consecutive deltas the next
    /// checkpoint is a full snapshot. `0` disables deltas entirely (every
    /// checkpoint is full).
    delta_chain: usize,
}

impl SnapshotChain {
    /// Start a chain from a full base snapshot.
    pub fn new(base: Snapshot, delta_chain: usize) -> SnapshotChain {
        SnapshotChain {
            docs: vec![ChainDoc::Full(base)],
            delta_chain,
        }
    }

    /// The rebase period.
    pub fn delta_chain(&self) -> usize {
        self.delta_chain
    }

    /// All links, oldest first (the first is always a full snapshot).
    pub fn docs(&self) -> &[ChainDoc] {
        &self.docs
    }

    /// Number of links in the chain.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// A chain always has at least its base document.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// State hash at the tip of the chain.
    pub fn tip_hash(&self) -> u64 {
        // The chain is never empty: `new` seeds the base document.
        self.docs.last().map_or(0, ChainDoc::tip_hash)
    }

    /// Consecutive deltas since the most recent full document.
    fn deltas_since_rebase(&self) -> usize {
        self.docs
            .iter()
            .rev()
            .take_while(|d| matches!(d, ChainDoc::Delta(_)))
            .count()
    }

    /// Capture the next checkpoint from a live simulator: a delta against
    /// the current tip, or a full rebase once `delta_chain` consecutive
    /// deltas have accumulated (and always when `delta_chain` is 0).
    /// Returns the document just appended, for the caller to persist.
    pub fn checkpoint(&mut self, sim: &mut crate::kernel::Simulator) -> SimResult<&ChainDoc> {
        let doc = if self.delta_chain == 0 || self.deltas_since_rebase() >= self.delta_chain {
            ChainDoc::Full(sim.snapshot()?)
        } else {
            ChainDoc::Delta(sim.snapshot_delta_from(self.tip_hash())?)
        };
        self.docs.push(doc);
        match self.docs.last() {
            Some(d) => Ok(d),
            None => Err(err("snapshot chain invariant broken: empty after push")),
        }
    }

    /// Replay the chain into a freshly built simulator: restore the most
    /// recent full document, then apply every delta after it. Rebasing is
    /// what keeps this bounded — at most `delta_chain` deltas ever need
    /// applying.
    pub fn restore_into(&self, sim: &mut crate::kernel::Simulator) -> SimResult<()> {
        let start = self
            .docs
            .iter()
            .rposition(|d| matches!(d, ChainDoc::Full(_)))
            .ok_or_else(|| err("snapshot chain has no full document to restore from"))?;
        if let ChainDoc::Full(base) = &self.docs[start] {
            sim.restore(base)?;
        }
        for doc in &self.docs[start + 1..] {
            match doc {
                ChainDoc::Delta(d) => sim.restore_delta(d)?,
                ChainDoc::Full(_) => {
                    return Err(err(
                        "snapshot chain has a full document after the last rebase",
                    ))
                }
            }
        }
        Ok(())
    }

    /// Append a document read back from storage, validating the chain
    /// linkage: a delta must name the current tip as its parent.
    pub fn push(&mut self, doc: ChainDoc) -> SimResult<()> {
        if let ChainDoc::Delta(d) = &doc {
            let tip = self.tip_hash();
            if d.parent_hash() != tip {
                return Err(SimError::new(
                    SimErrorKind::SnapshotChain,
                    format!(
                        "delta parent hash {:016x} does not match chain tip {:016x}",
                        d.parent_hash(),
                        tip
                    ),
                ));
            }
        }
        self.docs.push(doc);
        Ok(())
    }
}

/// Anything that can capture and restore its dynamic state as JSON.
///
/// Model crates implement this for stats blocks, ports and other plain
/// state holders; [`crate::component::Component`] has equivalent
/// `snapshot`/`restore` hooks for the polymorphic component slots.
pub trait Snapshotable {
    /// Capture dynamic state. Must be a pure function of model state —
    /// no wall-clock, RNG, or environment reads.
    fn snapshot_json(&self) -> Json;
    /// Restore state captured by [`Snapshotable::snapshot_json`] on a
    /// freshly constructed value.
    fn restore_json(&mut self, state: &Json) -> SimResult<()>;
}

/// Construct the typed error all snapshot/restore failures use.
pub fn err(msg: impl Into<String>) -> SimError {
    SimError::new(SimErrorKind::Validation, msg)
}

// ---------------------------------------------------------------------------
// Payload codecs
// ---------------------------------------------------------------------------

/// Encoder/decoder pair for one concrete user-payload type.
///
/// `encode` returns `None` when the payload is not of this codec's type
/// (the registry probes codecs in registration order); `decode` returns
/// `None` when the data document is malformed.
#[derive(Clone, Copy)]
pub struct PayloadCodec {
    /// Stable codec name, written into the snapshot document.
    pub name: &'static str,
    /// Try to encode a payload of this codec's type.
    pub encode: fn(&dyn Any) -> Option<Json>,
    /// Decode a document written by `encode` into a fresh boxed payload.
    pub decode: fn(&Json) -> Option<Box<dyn Any>>,
}

impl std::fmt::Debug for PayloadCodec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PayloadCodec({})", self.name)
    }
}

fn codec_registry() -> &'static Mutex<Vec<PayloadCodec>> {
    static REGISTRY: OnceLock<Mutex<Vec<PayloadCodec>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(Vec::new()))
}

/// Register a payload codec process-wide. Registering the same name twice
/// is idempotent (the first registration wins), so model constructors can
/// call this unconditionally.
pub fn register_payload_codec(codec: PayloadCodec) {
    let Ok(mut reg) = codec_registry().lock() else {
        return; // a poisoned registry only ever loses idempotent re-adds
    };
    if !reg.iter().any(|c| c.name == codec.name) {
        reg.push(codec);
    }
}

/// Encode an in-flight user payload via the codec registry. The result is
/// `{"codec": <name>, "data": <codec document>}`.
pub fn encode_payload(payload: &dyn Any) -> SimResult<Json> {
    let reg = codec_registry()
        .lock()
        .map_err(|_| err("payload codec registry poisoned"))?;
    for c in reg.iter() {
        if let Some(data) = (c.encode)(payload) {
            return Ok(Json::obj()
                .with("codec", Json::from(c.name))
                .with("data", data));
        }
    }
    Err(err(format!(
        "no payload codec registered for in-flight message (type id {:?}); \
         register a PayloadCodec before snapshotting",
        payload.type_id()
    )))
}

/// Decode a payload document written by [`encode_payload`].
pub fn decode_payload(doc: &Json) -> SimResult<Box<dyn Any>> {
    let name = str_field(doc, "codec")?;
    let data = field(doc, "data")?;
    let reg = codec_registry()
        .lock()
        .map_err(|_| err("payload codec registry poisoned"))?;
    let codec = reg
        .iter()
        .find(|c| c.name == name)
        .ok_or_else(|| err(format!("unknown payload codec {name:?}")))?;
    (codec.decode)(data).ok_or_else(|| err(format!("payload codec {name:?} rejected its data")))
}

// ---------------------------------------------------------------------------
// Static-string interning (trace event names survive the round trip)
// ---------------------------------------------------------------------------

/// Return a `&'static str` equal to `s`. Structured-trace event names are
/// `&'static str` so recording never allocates; restoring a snapshot needs
/// to materialize names parsed from JSON, which this process-global intern
/// table does (each distinct name is leaked exactly once).
pub fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let Ok(mut set) = table.lock() else {
        // Poisoned table: fall back to a fresh leak. Correct, merely
        // wasteful, and only reachable after a panic mid-intern.
        return Box::leak(s.to_string().into_boxed_str());
    };
    if let Some(&existing) = set.get(s) {
        return existing;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    set.insert(leaked);
    leaked
}

// ---------------------------------------------------------------------------
// Field-access helpers (shared by every restore implementation)
// ---------------------------------------------------------------------------

/// Required object field.
pub fn field<'a>(j: &'a Json, key: &str) -> SimResult<&'a Json> {
    j.get(key)
        .ok_or_else(|| err(format!("snapshot field {key:?} missing")))
}

/// Required `u64` field (accepts the lossless [`crate::json::ju64`] forms).
pub fn u64_field(j: &Json, key: &str) -> SimResult<u64> {
    crate::json::ju64_of(field(j, key)?)
        .ok_or_else(|| err(format!("snapshot field {key:?} is not a u64")))
}

/// Required `usize` field.
pub fn usize_field(j: &Json, key: &str) -> SimResult<usize> {
    Ok(u64_field(j, key)? as usize)
}

/// Required `i64` field (accepts the lossless [`crate::json::ji64`] forms).
pub fn i64_field(j: &Json, key: &str) -> SimResult<i64> {
    crate::json::ji64_of(field(j, key)?)
        .ok_or_else(|| err(format!("snapshot field {key:?} is not an i64")))
}

/// Required `f64` field.
pub fn f64_field(j: &Json, key: &str) -> SimResult<f64> {
    field(j, key)?
        .as_f64()
        .ok_or_else(|| err(format!("snapshot field {key:?} is not a number")))
}

/// Required boolean field.
pub fn bool_field(j: &Json, key: &str) -> SimResult<bool> {
    field(j, key)?
        .as_bool()
        .ok_or_else(|| err(format!("snapshot field {key:?} is not a bool")))
}

/// Required string field.
pub fn str_field<'a>(j: &'a Json, key: &str) -> SimResult<&'a str> {
    field(j, key)?
        .as_str()
        .ok_or_else(|| err(format!("snapshot field {key:?} is not a string")))
}

/// Required array field.
pub fn arr_field<'a>(j: &'a Json, key: &str) -> SimResult<&'a [Json]> {
    field(j, key)?
        .as_arr()
        .ok_or_else(|| err(format!("snapshot field {key:?} is not an array")))
}

/// Decode an array of `u64` values (component-id lists, subscriber lists).
pub fn u64_list(j: &Json, key: &str) -> SimResult<Vec<u64>> {
    arr_field(j, key)?
        .iter()
        .map(|v| {
            crate::json::ju64_of(v)
                .ok_or_else(|| err(format!("snapshot field {key:?} has a non-u64 element")))
        })
        .collect()
}

/// Decode an array of `usize` values.
pub fn usize_list(j: &Json, key: &str) -> SimResult<Vec<usize>> {
    Ok(u64_list(j, key)?.into_iter().map(|v| v as usize).collect())
}

/// Encode a list of `usize` (subscriber lists and similar).
pub fn usize_list_json(v: &[usize]) -> Json {
    Json::Arr(v.iter().map(|&x| crate::json::ju64(x as u64)).collect())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct TestPayload {
        a: u64,
    }

    fn test_codec() -> PayloadCodec {
        PayloadCodec {
            name: "test-payload",
            encode: |any| {
                let p = any.downcast_ref::<TestPayload>()?;
                Some(Json::obj().with("a", crate::json::ju64(p.a)))
            },
            decode: |data| {
                let a = crate::json::ju64_of(data.get("a")?)?;
                Some(Box::new(TestPayload { a }))
            },
        }
    }

    #[test]
    fn payload_codec_round_trips() {
        register_payload_codec(test_codec());
        register_payload_codec(test_codec()); // idempotent
        let doc = encode_payload(&TestPayload { a: 1 << 60 }).unwrap();
        assert_eq!(doc.get("codec").unwrap().as_str(), Some("test-payload"));
        let back = decode_payload(&doc).unwrap();
        let p = back.downcast_ref::<TestPayload>().unwrap();
        assert_eq!(p, &TestPayload { a: 1 << 60 });
    }

    #[test]
    fn unregistered_payload_is_a_typed_error() {
        struct Opaque;
        let e = encode_payload(&Opaque).unwrap_err();
        assert_eq!(e.kind, SimErrorKind::Validation);
        assert!(e.message.contains("no payload codec"));
    }

    #[test]
    fn unknown_codec_name_is_a_typed_error() {
        let doc = Json::obj()
            .with("codec", Json::from("no-such-codec"))
            .with("data", Json::obj());
        assert!(decode_payload(&doc).is_err());
    }

    #[test]
    fn intern_deduplicates() {
        let a = intern("snapshot-test-name");
        let b = intern(&String::from("snapshot-test-name"));
        assert!(std::ptr::eq(a, b));
        assert_eq!(a, "snapshot-test-name");
    }

    #[test]
    fn snapshot_text_round_trip_validates_schema() {
        let s = Snapshot::from_state(
            Json::obj()
                .with("schema", Json::from(SNAPSHOT_SCHEMA))
                .with("now", crate::json::ju64(42)),
        );
        let text = s.to_text();
        let back = Snapshot::parse(&text).unwrap();
        assert_eq!(&back, &s);
        assert!(Snapshot::parse("{}").is_err());
        assert!(Snapshot::parse("{\"schema\":\"other\"}").is_err());
        assert!(Snapshot::parse("not json").is_err());
    }

    #[test]
    fn field_helpers_report_missing_and_mistyped() {
        let j = Json::obj()
            .with("n", Json::Num(7.0))
            .with("s", Json::from("x"))
            .with("b", Json::Bool(true))
            .with("a", Json::Arr(vec![Json::Num(1.0)]))
            .with("i", crate::json::ji64(-5));
        assert_eq!(u64_field(&j, "n").unwrap(), 7);
        assert_eq!(str_field(&j, "s").unwrap(), "x");
        assert!(bool_field(&j, "b").unwrap());
        assert_eq!(arr_field(&j, "a").unwrap().len(), 1);
        assert_eq!(i64_field(&j, "i").unwrap(), -5);
        assert!(field(&j, "missing").is_err());
        assert!(u64_field(&j, "s").is_err());
        assert!(str_field(&j, "n").is_err());
    }
}
