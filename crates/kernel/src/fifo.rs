//! Bounded FIFO channels with `sc_fifo`-style event notification.
//!
//! Because kernel processes are event-driven rather than blocking threads,
//! the blocking `read`/`write` of `sc_fifo` map to `try_get`/`try_put` plus
//! `DataWritten`/`DataRead` notifications delivered to subscribers in the
//! next delta cycle — the standard split-transaction encoding of blocking
//! channel semantics.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt;
use std::marker::PhantomData;

use crate::event::{ComponentId, FifoIdx};

/// Typed handle to a FIFO registered with a simulator.
pub struct FifoRef<T> {
    pub(crate) idx: FifoIdx,
    _marker: PhantomData<fn() -> T>,
}

impl<T> FifoRef<T> {
    pub(crate) fn new(idx: FifoIdx) -> Self {
        FifoRef {
            idx,
            _marker: PhantomData,
        }
    }

    /// Raw channel index.
    pub fn index(&self) -> FifoIdx {
        self.idx
    }
}

impl<T> Clone for FifoRef<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for FifoRef<T> {}

impl<T> fmt::Debug for FifoRef<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FifoRef({})", self.idx)
    }
}

pub(crate) struct FifoSlot<T: 'static> {
    pub name: String,
    pub capacity: usize,
    pub items: VecDeque<T>,
    pub subscribers: Vec<ComponentId>,
    pub total_written: u64,
    pub total_read: u64,
    pub high_watermark: usize,
}

impl<T: 'static> FifoSlot<T> {
    pub fn new(name: String, capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be at least 1");
        FifoSlot {
            name,
            capacity,
            items: VecDeque::with_capacity(capacity.min(1024)),
            subscribers: Vec::new(),
            total_written: 0,
            total_read: 0,
            high_watermark: 0,
        }
    }

    pub fn try_put(&mut self, v: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            return Err(v);
        }
        self.items.push_back(v);
        self.total_written += 1;
        self.high_watermark = self.high_watermark.max(self.items.len());
        Ok(())
    }

    pub fn try_get(&mut self) -> Option<T> {
        let v = self.items.pop_front();
        if v.is_some() {
            self.total_read += 1;
        }
        v
    }
}

/// Type-erased view for the kernel's bookkeeping.
pub(crate) trait AnyFifoSlot: Any {
    fn name(&self) -> &str;
    fn len(&self) -> usize;
    fn capacity(&self) -> usize;
    fn subscribers(&self) -> &[ComponentId];
    fn subscribe(&mut self, c: ComponentId);
    fn total_written(&self) -> u64;
    fn total_read(&self) -> u64;
    fn high_watermark(&self) -> usize;
    #[allow(dead_code)]
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: 'static> AnyFifoSlot for FifoSlot<T> {
    fn name(&self) -> &str {
        &self.name
    }
    fn len(&self) -> usize {
        self.items.len()
    }
    fn capacity(&self) -> usize {
        self.capacity
    }
    fn subscribers(&self) -> &[ComponentId] {
        &self.subscribers
    }
    fn subscribe(&mut self, c: ComponentId) {
        if !self.subscribers.contains(&c) {
            self.subscribers.push(c);
        }
    }
    fn total_written(&self) -> u64 {
        self.total_written
    }
    fn total_read(&self) -> u64 {
        self.total_read
    }
    fn high_watermark(&self) -> usize {
        self.high_watermark
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_order_is_fifo() {
        let mut f = FifoSlot::new("f".into(), 4);
        f.try_put(1u32).unwrap();
        f.try_put(2).unwrap();
        f.try_put(3).unwrap();
        assert_eq!(f.try_get(), Some(1));
        assert_eq!(f.try_get(), Some(2));
        assert_eq!(f.try_get(), Some(3));
        assert_eq!(f.try_get(), None);
        assert_eq!(f.total_written, 3);
        assert_eq!(f.total_read, 3);
    }

    #[test]
    fn capacity_is_enforced() {
        let mut f = FifoSlot::new("f".into(), 2);
        f.try_put('a').unwrap();
        f.try_put('b').unwrap();
        assert_eq!(f.try_put('c'), Err('c'));
        assert_eq!(f.len(), 2);
        assert_eq!(f.high_watermark, 2);
        f.try_get();
        f.try_put('c').unwrap();
        assert_eq!(f.len(), 2);
    }

    #[test]
    #[should_panic(expected = "capacity must be at least 1")]
    fn zero_capacity_rejected() {
        let _ = FifoSlot::<u8>::new("bad".into(), 0);
    }

    #[test]
    fn conservation_written_equals_read_plus_resident() {
        let mut f = FifoSlot::new("f".into(), 8);
        for i in 0..20u64 {
            let _ = f.try_put(i);
            if i % 3 == 0 {
                f.try_get();
            }
        }
        assert_eq!(f.total_written, f.total_read + f.len() as u64);
    }
}
