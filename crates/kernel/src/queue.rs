//! The timed event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number is a
//! monotonically increasing counter assigned at insertion, which makes the
//! dispatch order a *total* order: two events at the same timestamp are
//! always dispatched in the order they were scheduled. This is the property
//! every determinism test in the workspace leans on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::Delivery;
use crate::time::SimTime;

pub(crate) struct TimedEntry {
    pub time: SimTime,
    pub seq: u64,
    pub delivery: Delivery,
}

impl PartialEq for TimedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimedEntry {}

impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event queue.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<TimedEntry>,
    /// Count of non-background entries, maintained incrementally so the
    /// kernel can answer "is any foreground work pending?" in O(1).
    foreground: usize,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(128),
            foreground: 0,
        }
    }

    pub fn push(&mut self, entry: TimedEntry) {
        if !entry.delivery.background {
            self.foreground += 1;
        }
        self.heap.push(entry);
    }

    pub fn pop(&mut self) -> Option<TimedEntry> {
        let e = self.heap.pop()?;
        if !e.delivery.background {
            self.foreground -= 1;
        }
        Some(e)
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Time of the earliest pending *foreground* entry. O(n) but only
    /// consulted when deciding whether to stop, never in the hot loop.
    #[allow(dead_code)]
    pub fn peek_foreground_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|e| !e.delivery.background)
            .map(|e| e.time)
            .min()
    }

    pub fn has_foreground(&self) -> bool {
        self.foreground > 0
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Msg, MsgKind};

    fn entry(time_fs: u64, seq: u64, background: bool) -> TimedEntry {
        TimedEntry {
            time: SimTime(time_fs),
            seq,
            delivery: Delivery {
                target: 0,
                msg: Msg {
                    source: None,
                    kind: MsgKind::Timer(seq),
                },
                background,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(30, 0, false));
        q.push(entry(10, 1, false));
        q.push(entry(20, 2, false));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for seq in 0..50 {
            q.push(entry(100, seq, false));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn foreground_count_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(!q.has_foreground());
        q.push(entry(10, 0, true));
        assert!(!q.has_foreground());
        q.push(entry(20, 1, false));
        assert!(q.has_foreground());
        assert_eq!(q.peek_foreground_time(), Some(SimTime(20)));
        q.pop(); // background at t=10
        assert!(q.has_foreground());
        q.pop(); // foreground at t=20
        assert!(!q.has_foreground());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_background_too() {
        let mut q = EventQueue::new();
        q.push(entry(5, 0, true));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.peek_foreground_time(), None);
        assert_eq!(q.len(), 1);
    }
}
