//! The timed event queue.
//!
//! A two-level **hierarchical timing wheel** keyed by `(time, sequence)`.
//! The sequence number is a monotonically increasing counter assigned at
//! insertion, which makes the dispatch order a *total* order: two events at
//! the same timestamp are always dispatched in the order they were
//! scheduled. This is the property every determinism test in the workspace
//! leans on.
//!
//! # Structure
//!
//! * **Near level** — a ring of `NBUCKETS` per-tick buckets covering the
//!   next `NBUCKETS << TICK_SHIFT` femtoseconds past `base`. Scheduling
//!   into the ring is an O(1) `Vec::push`; because `seq` is monotone, a
//!   ring bucket is already in insertion (= dispatch) order.
//! * **Active bucket** — the bucket currently being drained, held sorted in
//!   *reverse* `(time, seq)` order so `pop` is an O(1) `Vec::pop` from the
//!   back. Late arrivals for the current tick binary-insert here.
//! * **Far heap** — a `BinaryHeap` for everything at or beyond the horizon
//!   (`base + NBUCKETS` buckets). Whenever `base` advances, eligible far
//!   entries are eagerly refilled into the ring, restoring the invariant
//!   that every far entry sorts after every wheel entry.
//!
//! An occupancy bitmap (`occ`) lets bucket advance skip empty ticks in
//! word-sized strides, so sparse timelines don't pay a linear scan. Bucket
//! vectors are swap-recycled (capacity is retained across rotations), the
//! same allocation-free discipline PR 1 gave the delta buffers.
//!
//! `set_legacy(true)` collapses the queue back to the plain binary heap —
//! kept as a reference implementation for the wheel-vs-heap determinism
//! proptest in `tests/determinism.rs`.

use std::collections::BinaryHeap;

use crate::event::Delivery;
use crate::time::SimTime;

/// log2 of the tick width in femtoseconds: 2^20 fs ≈ 1.05 ns per bucket.
const TICK_SHIFT: u32 = 20;
/// Ring size; horizon = `NBUCKETS << TICK_SHIFT` ≈ 1.07 µs.
const NBUCKETS: usize = 1024;
/// Words in the occupancy bitmap.
const OCC_WORDS: usize = NBUCKETS / 64;

pub(crate) struct TimedEntry {
    pub time: SimTime,
    pub seq: u64,
    pub delivery: Delivery,
}

impl PartialEq for TimedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimedEntry {}

impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. This also makes `sort_unstable` produce reverse (time, seq)
        // order, which is exactly the active-bucket layout.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[inline]
fn key(e: &TimedEntry) -> (SimTime, u64) {
    (e.time, e.seq)
}

#[inline]
fn bucket_of(t: SimTime) -> u64 {
    t.0 >> TICK_SHIFT
}

/// Deterministic future-event queue.
pub(crate) struct EventQueue {
    /// Absolute bucket index of the active bucket.
    base: u64,
    /// The bucket being drained, reverse-sorted by `(time, seq)` so the
    /// earliest entry is at the back.
    active: Vec<TimedEntry>,
    /// Near-future ring; slot `b % NBUCKETS` holds absolute bucket `b` for
    /// `b` in `(base, base + NBUCKETS)`.
    buckets: Vec<Vec<TimedEntry>>,
    /// Occupancy bitmap over ring slots.
    occ: [u64; OCC_WORDS],
    /// Far-future overflow: entries with bucket `>= base + NBUCKETS`.
    far: BinaryHeap<TimedEntry>,
    /// Total entries across active + ring + far.
    len: usize,
    /// Count of non-background entries, maintained incrementally so the
    /// kernel can answer "is any foreground work pending?" in O(1).
    foreground: usize,
    /// Reference mode: single binary heap, no wheel.
    legacy: bool,
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            base: 0,
            active: Vec::with_capacity(32),
            buckets: (0..NBUCKETS).map(|_| Vec::new()).collect(),
            occ: [0; OCC_WORDS],
            far: BinaryHeap::with_capacity(128),
            len: 0,
            foreground: 0,
            legacy: false,
        }
    }

    /// Switch between the timing wheel (default) and the reference binary
    /// heap. Pending entries are migrated, so the toggle is safe mid-run.
    pub fn set_legacy(&mut self, legacy: bool) {
        if self.legacy == legacy {
            return;
        }
        self.legacy = legacy;
        if legacy {
            // Drain the wheel into the heap.
            self.far.extend(self.active.drain(..));
            for slot in 0..NBUCKETS {
                if !self.buckets[slot].is_empty() {
                    let mut v = std::mem::take(&mut self.buckets[slot]);
                    self.far.extend(v.drain(..));
                    self.buckets[slot] = v;
                }
            }
            self.occ = [0; OCC_WORDS];
        } else {
            // Re-distribute heap entries through the wheel's placement rule.
            let drained: Vec<TimedEntry> = std::mem::take(&mut self.far).into_vec();
            for e in drained {
                self.place(e);
            }
        }
    }

    /// Grow internal storage so roughly `n` pending entries fit without
    /// reallocation (the between-runs high-water pre-reserve).
    pub fn reserve(&mut self, n: usize) {
        let extra = n.saturating_sub(self.far.len() + self.active.len());
        self.far.reserve(extra);
        self.active
            .reserve(n.min(256).saturating_sub(self.active.capacity()));
    }

    /// Place an entry into wheel storage (never touches counters).
    #[inline]
    fn place(&mut self, entry: TimedEntry) {
        let b = bucket_of(entry.time);
        if b >= self.base + NBUCKETS as u64 {
            self.far.push(entry);
        } else if b <= self.base {
            // Current tick (or, rarely, an earlier bucket reached while the
            // active front sits later than `now` — a clock edge can advance
            // `now` past `base`'s rotation point). Keep `active` the sorted
            // front run.
            let at = self.active.partition_point(|e| key(e) > key(&entry));
            self.active.insert(at, entry);
            // Neighbor check: the insert must not break the reverse
            // (time, seq) layout even mid-drain.
            debug_assert!(at == 0 || key(&self.active[at - 1]) > key(&self.active[at]));
            debug_assert!(
                at + 1 >= self.active.len() || key(&self.active[at]) > key(&self.active[at + 1])
            );
        } else {
            let slot = (b % NBUCKETS as u64) as usize;
            self.buckets[slot].push(entry);
            self.occ[slot / 64] |= 1u64 << (slot % 64);
        }
    }

    pub fn push(&mut self, entry: TimedEntry) {
        if !entry.delivery.background {
            self.foreground += 1;
        }
        self.len += 1;
        if self.legacy {
            self.far.push(entry);
        } else {
            self.place(entry);
        }
    }

    /// Next occupied ring slot strictly after the active slot, as a
    /// distance in `1..NBUCKETS`, or `None` when the ring is empty.
    fn next_occupied_distance(&self) -> Option<u64> {
        let cur = (self.base % NBUCKETS as u64) as usize;
        let start = (cur + 1) % NBUCKETS;
        let mut w = start / 64;
        let mut mask = !0u64 << (start % 64);
        // Scan at most one full wrap of the bitmap.
        for _ in 0..=OCC_WORDS {
            let bits = self.occ[w] & mask;
            if bits != 0 {
                let slot = w * 64 + bits.trailing_zeros() as usize;
                let d = (slot + NBUCKETS - cur) % NBUCKETS;
                // slot == cur is impossible (that slot drained into active),
                // so d is never 0 here; guard anyway for safety.
                if d != 0 {
                    return Some(d as u64);
                }
            }
            w = (w + 1) % OCC_WORDS;
            mask = !0;
        }
        None
    }

    /// Move far entries that now fall inside the horizon into the wheel.
    fn refill_from_far(&mut self) {
        let horizon = self.base + NBUCKETS as u64;
        while let Some(top) = self.far.peek() {
            let b = bucket_of(top.time);
            if b >= horizon {
                break;
            }
            let e = match self.far.pop() {
                Some(e) => e,
                None => break,
            };
            if b <= self.base {
                // Lands in the active bucket; caller sorts afterwards.
                self.active.push(e);
            } else {
                let slot = (b % NBUCKETS as u64) as usize;
                self.buckets[slot].push(e);
                self.occ[slot / 64] |= 1u64 << (slot % 64);
            }
        }
    }

    /// Sort `active` into reverse `(time, seq)` order. The common case — a
    /// ring bucket appended in seq order with monotone times — is already
    /// ascending, so a reverse suffices.
    fn sort_active(&mut self) {
        let ascending = self.active.windows(2).all(|w| key(&w[0]) < key(&w[1]));
        if ascending {
            self.active.reverse();
        } else {
            // TimedEntry's inverted Ord makes plain sort produce reverse
            // (time, seq) order.
            self.active.sort_unstable();
        }
    }

    /// Ensure `active` holds the queue front (non-legacy mode). After this,
    /// `active` is empty iff the queue is empty.
    fn ensure_active(&mut self) {
        if self.legacy || !self.active.is_empty() || self.len == 0 {
            return;
        }
        if let Some(d) = self.next_occupied_distance() {
            self.base += d;
            let slot = (self.base % NBUCKETS as u64) as usize;
            std::mem::swap(&mut self.buckets[slot], &mut self.active);
            self.occ[slot / 64] &= !(1u64 << (slot % 64));
            self.refill_from_far();
        } else {
            // Ring empty: jump straight to the earliest far bucket.
            let front = match self.far.peek() {
                Some(e) => bucket_of(e.time),
                None => return,
            };
            self.base = front;
            self.refill_from_far();
        }
        self.sort_active();
        self.debug_assert_active_sorted();
    }

    /// Debug-build audit: `active` must be in strict reverse `(time, seq)`
    /// order whenever a rotation completes (the invariant `pop`/`peek` and
    /// mid-drain `place` inserts rely on).
    fn debug_assert_active_sorted(&self) {
        debug_assert!(
            self.active.windows(2).all(|w| key(&w[0]) > key(&w[1])),
            "active bucket lost reverse (time, seq) order after rotation"
        );
    }

    /// Iterate every pending entry, in no particular order (snapshot
    /// support; callers sort by `(time, seq)`).
    pub(crate) fn iter_entries(&self) -> impl Iterator<Item = &TimedEntry> {
        self.iter_all()
    }

    pub fn pop(&mut self) -> Option<TimedEntry> {
        let e = if self.legacy {
            self.far.pop()?
        } else {
            self.ensure_active();
            self.active.pop()?
        };
        self.len -= 1;
        if !e.delivery.background {
            self.foreground -= 1;
        }
        Some(e)
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek().map(|(t, _)| t)
    }

    /// `(time, seq)` of the earliest pending entry. The dispatch loop uses
    /// the sequence number to merge queue entries with the per-clock
    /// next-edge slots while preserving the global `(time, seq)` order.
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        if self.legacy {
            return self.far.peek().map(|e| (e.time, e.seq));
        }
        self.ensure_active();
        self.active.last().map(|e| (e.time, e.seq))
    }

    /// Time of the earliest pending *foreground* entry. O(n) but only
    /// consulted when deciding whether to stop, never in the hot loop.
    #[allow(dead_code)]
    pub fn peek_foreground_time(&self) -> Option<SimTime> {
        self.iter_all()
            .filter(|e| !e.delivery.background)
            .map(|e| e.time)
            .min()
    }

    fn iter_all(&self) -> impl Iterator<Item = &TimedEntry> {
        self.active
            .iter()
            .chain(self.buckets.iter().flatten())
            .chain(self.far.iter())
    }

    pub fn has_foreground(&self) -> bool {
        self.foreground > 0
    }

    pub fn len(&self) -> usize {
        self.len
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drop every pending entry and reset the foreground counter. Bucket
    /// capacity is retained for reuse.
    #[allow(dead_code)]
    pub fn clear(&mut self) {
        self.debug_assert_foreground_consistent();
        self.active.clear();
        for b in &mut self.buckets {
            b.clear();
        }
        self.occ = [0; OCC_WORDS];
        self.far.clear();
        self.base = 0;
        self.len = 0;
        self.foreground = 0;
    }

    /// Recount foreground entries the slow way (audit for the incremental
    /// counter).
    pub fn foreground_recount(&self) -> usize {
        self.iter_all().filter(|e| !e.delivery.background).count()
    }

    /// Debug-build audit: the incrementally maintained `foreground` counter
    /// must always equal a from-scratch recount. O(n), so it is only called
    /// at run-termination decisions and in tests, never per event.
    pub fn debug_assert_foreground_consistent(&self) {
        debug_assert_eq!(
            self.foreground,
            self.foreground_recount(),
            "incremental foreground counter diverged from recount"
        );
        debug_assert_eq!(
            self.len,
            self.iter_all().count(),
            "incremental len counter diverged from recount"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Msg, MsgKind};

    fn entry(time_fs: u64, seq: u64, background: bool) -> TimedEntry {
        TimedEntry {
            time: SimTime(time_fs),
            seq,
            delivery: Delivery {
                target: 0,
                msg: Msg {
                    source: None,
                    kind: MsgKind::Timer(seq),
                },
                background,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(30, 0, false));
        q.push(entry(10, 1, false));
        q.push(entry(20, 2, false));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for seq in 0..50 {
            q.push(entry(100, seq, false));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn foreground_count_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(!q.has_foreground());
        q.push(entry(10, 0, true));
        assert!(!q.has_foreground());
        q.push(entry(20, 1, false));
        assert!(q.has_foreground());
        assert_eq!(q.peek_foreground_time(), Some(SimTime(20)));
        q.pop(); // background at t=10
        assert!(q.has_foreground());
        q.pop(); // foreground at t=20
        assert!(!q.has_foreground());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_background_too() {
        let mut q = EventQueue::new();
        q.push(entry(5, 0, true));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.peek_foreground_time(), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek(), Some((SimTime(5), 0)));
    }

    #[test]
    fn clear_resets_len_and_foreground() {
        let mut q = EventQueue::new();
        for seq in 0..10 {
            q.push(entry(seq * 3, seq, seq % 2 == 0));
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.foreground_recount(), 5);
        q.debug_assert_foreground_consistent();
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert!(!q.has_foreground());
        q.debug_assert_foreground_consistent();
        // Usable after clear.
        q.push(entry(1, 100, false));
        assert!(q.has_foreground());
        assert_eq!(q.pop().unwrap().seq, 100);
    }

    #[test]
    fn foreground_counter_matches_recount_under_churn() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for round in 0..20u64 {
            for k in 0..(round % 5 + 1) {
                q.push(entry(round * 10 + k, seq, (seq * 7).is_multiple_of(3)));
                seq += 1;
            }
            if round % 3 == 0 {
                q.pop();
            }
            q.debug_assert_foreground_consistent();
        }
        while q.pop().is_some() {
            q.debug_assert_foreground_consistent();
        }
    }

    /// Cross-bucket and past-horizon traffic pops in global (time, seq)
    /// order, both in wheel and legacy mode.
    #[test]
    fn wheel_orders_across_buckets_and_horizon() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let horizon = TICK * NBUCKETS as u64;
        for legacy in [false, true] {
            let mut q = EventQueue::new();
            q.set_legacy(legacy);
            // Same bucket, same tick, far future, next bucket, mid-ring.
            let times = [
                3,
                7,
                horizon * 3 + 5, // far heap
                TICK + 1,        // next bucket
                TICK * 500,      // mid-ring
                horizon * 3 + 5, // far, same time, later seq
            ];
            for (seq, t) in times.iter().enumerate() {
                q.push(entry(*t, seq as u64, false));
            }
            let mut popped: Vec<(u64, u64)> = Vec::new();
            while let Some(e) = q.pop() {
                popped.push((e.time.0, e.seq));
            }
            let mut expect: Vec<(u64, u64)> = times
                .iter()
                .enumerate()
                .map(|(s, t)| (*t, s as u64))
                .collect();
            expect.sort_unstable();
            assert_eq!(popped, expect, "legacy={legacy}");
        }
    }

    /// Entries pushed for a bucket the wheel has already rotated past (time
    /// moved forward through a clock slot while the queue front sat later)
    /// still pop before the previously queued front.
    #[test]
    fn late_push_before_active_front_pops_first() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let mut q = EventQueue::new();
        q.push(entry(TICK * 800 + 3, 0, false));
        // Rotate: peek advances base to bucket 800.
        assert_eq!(q.peek_time(), Some(SimTime(TICK * 800 + 3)));
        // Now a component schedules something earlier (bucket 10 < base).
        q.push(entry(TICK * 10, 1, false));
        assert_eq!(q.pop().unwrap().seq, 1);
        assert_eq!(q.pop().unwrap().seq, 0);
        assert!(q.is_empty());
    }

    /// Toggling legacy mode mid-stream keeps every pending entry and the
    /// global order.
    #[test]
    fn legacy_toggle_migrates_entries() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let horizon = TICK * NBUCKETS as u64;
        let mut q = EventQueue::new();
        q.push(entry(5, 0, false));
        q.push(entry(horizon + 17, 1, true));
        q.push(entry(TICK * 3, 2, false));
        q.set_legacy(true);
        q.debug_assert_foreground_consistent();
        q.push(entry(6, 3, false));
        q.set_legacy(false);
        q.debug_assert_foreground_consistent();
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 3, 2, 1]);
    }

    /// The far heap refills the ring when the wheel rotates across the
    /// horizon repeatedly (multi-horizon sweep).
    #[test]
    fn far_refill_across_many_horizons() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let horizon = TICK * NBUCKETS as u64;
        let mut q = EventQueue::new();
        let mut times: Vec<u64> = Vec::new();
        for i in 0..40u64 {
            // Scatter across 5 horizons, some colliding in one bucket.
            let t = (i % 5) * horizon + (i * 37 % 900) * TICK + (i % 3);
            times.push(t);
            q.push(entry(t, i, false));
        }
        let mut expect: Vec<(u64, u64)> = times
            .iter()
            .enumerate()
            .map(|(s, t)| (*t, s as u64))
            .collect();
        expect.sort_unstable();
        let got: Vec<(u64, u64)> = std::iter::from_fn(|| q.pop())
            .map(|e| (e.time.0, e.seq))
            .collect();
        assert_eq!(got, expect);
    }

    /// Pop from `q` and a parallel legacy-heap oracle simultaneously; the
    /// streams must match element for element.
    fn drain_against_oracle(q: &mut EventQueue, oracle: &mut EventQueue) {
        loop {
            let got = q.pop().map(|e| (e.time.0, e.seq));
            let want = oracle.pop().map(|e| (e.time.0, e.seq));
            assert_eq!(got, want, "wheel diverged from legacy heap oracle");
            if want.is_none() {
                break;
            }
        }
    }

    /// Satellite regression (ISSUE 5): events scheduled mid-drain with
    /// `b <= base` — exactly at the rotation point and at
    /// `base + NBUCKETS ± 1` — keep global (time, seq) order. The wheel is
    /// checked against the legacy binary heap fed the identical schedule.
    #[test]
    fn mid_drain_push_at_rotation_point_and_horizon_edges() {
        const TICK: u64 = 1 << TICK_SHIFT;
        // Rotate base to bucket 700 by parking two entries there and
        // peeking; then drain one so `active` is mid-drain.
        let rot = 700 * TICK;
        let mut q = EventQueue::new();
        let mut oracle = EventQueue::new();
        oracle.set_legacy(true);
        for (t, s) in [(rot + 9, 0u64), (rot + 20, 1)] {
            q.push(entry(t, s, false));
            oracle.push(entry(t, s, false));
        }
        assert_eq!(q.peek(), Some((SimTime(rot + 9), 0)));
        assert_eq!(q.pop().map(|e| e.seq), Some(0));
        assert_eq!(oracle.pop().map(|e| e.seq), Some(0));
        // Mid-drain arrivals at every boundary the placement rule branches
        // on: the rotation point itself (start of the active bucket, i.e.
        // earlier than the remaining front), the last ring slot, the
        // horizon, and one past it. Plus one earlier-than-base straggler.
        let horizon = NBUCKETS as u64 * TICK;
        let late = [
            rot,                  // rotation point, before remaining front
            rot + 10,             // active bucket, before remaining front
            rot + 21,             // active bucket, after remaining front
            rot + horizon - TICK, // base + NBUCKETS - 1 (last ring slot)
            rot + horizon - 1,    // last fs of the ring
            rot + horizon,        // exactly the horizon -> far heap
            rot + horizon + 1,    // one past the horizon
            rot + horizon + TICK, // base + NBUCKETS + 1
            rot - TICK,           // bucket base - 1 (time moved past it)
        ];
        for (k, &t) in late.iter().enumerate() {
            q.push(entry(t, 2 + k as u64, false));
            oracle.push(entry(t, 2 + k as u64, false));
        }
        drain_against_oracle(&mut q, &mut oracle);
    }

    /// Satellite regression (ISSUE 5): `refill_from_far` entries landing on
    /// the *current* bucket (`b <= base`) after a `peek`-driven base advance
    /// must interleave correctly with entries already placed there. Far
    /// entries sharing one bucket arrive out of (time, seq) order relative
    /// to ring contents; the drain must still match the legacy heap.
    #[test]
    fn refill_from_far_onto_current_bucket_keeps_order() {
        const TICK: u64 = 1 << TICK_SHIFT;
        let horizon = NBUCKETS as u64 * TICK;
        // Target bucket far beyond the first horizon so the entries start
        // life in the far heap.
        let b = horizon * 2 + 37 * TICK;
        let mut q = EventQueue::new();
        let mut oracle = EventQueue::new();
        oracle.set_legacy(true);
        // Same far bucket, times deliberately not in seq order.
        let seed = [(b + 7, 0u64), (b + 2, 1), (b + 7, 2), (b, 3)];
        // And one a full horizon later, so the refill loop has a stop case.
        let tail = (b + horizon + 5, 4u64);
        for &(t, s) in seed.iter().chain([&tail]) {
            q.push(entry(t, s, false));
            oracle.push(entry(t, s, false));
        }
        // peek() advances base straight to bucket `b` (far jump) and pulls
        // the four eligible far entries into the active bucket.
        assert_eq!(q.peek(), Some((SimTime(b), 3)));
        // Mid-drain: schedule more traffic landing on the current bucket,
        // both before and after the remaining front.
        assert_eq!(q.pop().map(|e| e.seq), Some(3));
        assert_eq!(oracle.pop().map(|e| e.seq), Some(3));
        for &(t, s) in &[(b + 1, 5u64), (b + 7, 6), (b + 2, 7)] {
            q.push(entry(t, s, false));
            oracle.push(entry(t, s, false));
        }
        drain_against_oracle(&mut q, &mut oracle);
    }

    #[test]
    fn reserve_is_harmless() {
        let mut q = EventQueue::new();
        q.reserve(10_000);
        q.push(entry(1, 0, false));
        assert_eq!(q.pop().unwrap().seq, 0);
    }
}
