//! The timed event queue.
//!
//! A binary heap keyed by `(time, sequence)`. The sequence number is a
//! monotonically increasing counter assigned at insertion, which makes the
//! dispatch order a *total* order: two events at the same timestamp are
//! always dispatched in the order they were scheduled. This is the property
//! every determinism test in the workspace leans on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::event::Delivery;
use crate::time::SimTime;

pub(crate) struct TimedEntry {
    pub time: SimTime,
    pub seq: u64,
    pub delivery: Delivery,
}

impl PartialEq for TimedEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for TimedEntry {}

impl PartialOrd for TimedEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TimedEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Deterministic future-event queue.
#[derive(Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<TimedEntry>,
    /// Count of non-background entries, maintained incrementally so the
    /// kernel can answer "is any foreground work pending?" in O(1).
    foreground: usize,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(128),
            foreground: 0,
        }
    }

    pub fn push(&mut self, entry: TimedEntry) {
        if !entry.delivery.background {
            self.foreground += 1;
        }
        self.heap.push(entry);
    }

    pub fn pop(&mut self) -> Option<TimedEntry> {
        let e = self.heap.pop()?;
        if !e.delivery.background {
            self.foreground -= 1;
        }
        Some(e)
    }

    /// Time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// `(time, seq)` of the earliest pending entry. The dispatch loop uses
    /// the sequence number to merge heap entries with the per-clock
    /// next-edge slots while preserving the global `(time, seq)` order.
    pub fn peek(&self) -> Option<(SimTime, u64)> {
        self.heap.peek().map(|e| (e.time, e.seq))
    }

    /// Time of the earliest pending *foreground* entry. O(n) but only
    /// consulted when deciding whether to stop, never in the hot loop.
    #[allow(dead_code)]
    pub fn peek_foreground_time(&self) -> Option<SimTime> {
        self.heap
            .iter()
            .filter(|e| !e.delivery.background)
            .map(|e| e.time)
            .min()
    }

    pub fn has_foreground(&self) -> bool {
        self.foreground > 0
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drop every pending entry and reset the foreground counter.
    #[allow(dead_code)]
    pub fn clear(&mut self) {
        self.debug_assert_foreground_consistent();
        self.heap.clear();
        self.foreground = 0;
    }

    /// Recount foreground entries the slow way (audit for the incremental
    /// counter).
    pub fn foreground_recount(&self) -> usize {
        self.heap.iter().filter(|e| !e.delivery.background).count()
    }

    /// Debug-build audit: the incrementally maintained `foreground` counter
    /// must always equal a from-scratch recount. O(n), so it is only called
    /// at run-termination decisions and in tests, never per event.
    pub fn debug_assert_foreground_consistent(&self) {
        debug_assert_eq!(
            self.foreground,
            self.foreground_recount(),
            "incremental foreground counter diverged from recount"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Msg, MsgKind};

    fn entry(time_fs: u64, seq: u64, background: bool) -> TimedEntry {
        TimedEntry {
            time: SimTime(time_fs),
            seq,
            delivery: Delivery {
                target: 0,
                msg: Msg {
                    source: None,
                    kind: MsgKind::Timer(seq),
                },
                background,
            },
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(entry(30, 0, false));
        q.push(entry(10, 1, false));
        q.push(entry(20, 2, false));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time.0).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn equal_times_pop_in_insertion_order() {
        let mut q = EventQueue::new();
        for seq in 0..50 {
            q.push(entry(100, seq, false));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn foreground_count_tracks_pushes_and_pops() {
        let mut q = EventQueue::new();
        assert!(!q.has_foreground());
        q.push(entry(10, 0, true));
        assert!(!q.has_foreground());
        q.push(entry(20, 1, false));
        assert!(q.has_foreground());
        assert_eq!(q.peek_foreground_time(), Some(SimTime(20)));
        q.pop(); // background at t=10
        assert!(q.has_foreground());
        q.pop(); // foreground at t=20
        assert!(!q.has_foreground());
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_sees_background_too() {
        let mut q = EventQueue::new();
        q.push(entry(5, 0, true));
        assert_eq!(q.peek_time(), Some(SimTime(5)));
        assert_eq!(q.peek_foreground_time(), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek(), Some((SimTime(5), 0)));
    }

    #[test]
    fn clear_resets_len_and_foreground() {
        let mut q = EventQueue::new();
        for seq in 0..10 {
            q.push(entry(seq * 3, seq, seq % 2 == 0));
        }
        assert_eq!(q.len(), 10);
        assert_eq!(q.foreground_recount(), 5);
        q.debug_assert_foreground_consistent();
        q.clear();
        assert_eq!(q.len(), 0);
        assert!(q.is_empty());
        assert!(!q.has_foreground());
        q.debug_assert_foreground_consistent();
        // Usable after clear.
        q.push(entry(1, 100, false));
        assert!(q.has_foreground());
        assert_eq!(q.pop().unwrap().seq, 100);
    }

    #[test]
    fn foreground_counter_matches_recount_under_churn() {
        let mut q = EventQueue::new();
        let mut seq = 0u64;
        for round in 0..20u64 {
            for k in 0..(round % 5 + 1) {
                q.push(entry(round * 10 + k, seq, (seq * 7).is_multiple_of(3)));
                seq += 1;
            }
            if round % 3 == 0 {
                q.pop();
            }
            q.debug_assert_foreground_consistent();
        }
        while q.pop().is_some() {
            q.debug_assert_foreground_consistent();
        }
    }
}
