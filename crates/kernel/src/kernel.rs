//! The simulation kernel: elaboration, the evaluate/update/delta loop, and
//! the [`Api`] components use to interact with channels and each other.
//!
//! Semantics follow the SystemC 2.0 scheduler the paper builds on:
//!
//! 1. all deliveries at the current (time, delta) run in a deterministic
//!    order (scheduling order);
//! 2. signal writes become visible in the *update* phase between deltas;
//! 3. value changes notify subscribers in the next delta;
//! 4. when no delta work remains, time advances to the earliest pending
//!    timed event.
//!
//! Beyond SystemC, the kernel adds *obligations* — a counter of outstanding
//! split transactions — so a run can distinguish healthy quiescence from the
//! bus deadlock of the paper's §5.4 limitation 3.

use std::any::Any;

use crate::component::Component;
use crate::error::{SimError, SimErrorKind, SimResult};
use crate::event::{
    ClockIdx, ComponentId, Delay, Delivery, Edge, FifoEventKind, FifoIdx, Msg, MsgKind, SignalIdx,
    StopReason,
};
use crate::fifo::{AnyFifoSlot, FifoRef, FifoSlot};
use crate::json::{ju64, Json};
use crate::observe::{Recorder, SimEvent, TraceCategory, TraceEventKind, KERNEL_SOURCE};
use crate::queue::{EventQueue, TimedEntry};
use crate::report::{Reporter, Severity};
use crate::signal::{AnySignalSlot, SignalRef, SignalSlot, SignalValue};
use crate::snapshot::{self as snap, Snapshot, SnapshotDelta, Snapshotable};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Traceable, VcdTracer};

/// Pseudo-target used internally for clock tick events.
const CLOCK_TARGET: ComponentId = usize::MAX;

/// Handle to a clock generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockRef(pub(crate) ClockIdx);

/// Handle to a cancellable timer (see `Api::timer_cancellable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerHandle(u64);

impl TimerHandle {
    /// The underlying queue sequence number. Snapshot support: components
    /// holding live handles serialize this value.
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Rebuild a handle from [`TimerHandle::raw`] (snapshot restore).
    /// Sequence numbers are global to a run, so a restored handle is only
    /// meaningful inside the simulator whose snapshot produced it.
    pub fn from_raw(seq: u64) -> TimerHandle {
        TimerHandle(seq)
    }
}

struct ClockState {
    name: String,
    period: SimDuration,
    high_time: SimDuration,
    start_offset: SimDuration,
    pos_subs: Vec<ComponentId>,
    neg_subs: Vec<ComponentId>,
    started: bool,
    pos_edges: u64,
    /// Periodic-event fast path: a free-running clock has exactly one
    /// pending edge at any moment, so it lives in this slot instead of the
    /// general heap. `next_seq` is still drawn from the kernel's shared
    /// sequence counter, so merging slots with the heap by `(time, seq)`
    /// reproduces the heap-only dispatch order bit for bit.
    armed: bool,
    next_time: SimTime,
    next_seq: u64,
    next_edge: Edge,
}

/// Counters the kernel maintains about its own operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelMetrics {
    /// Messages dispatched to components.
    pub dispatched: u64,
    /// Delta cycles executed.
    pub delta_cycles: u64,
    /// Distinct timesteps visited.
    pub timesteps: u64,
    /// Largest number of delta cycles within one timestep.
    pub max_deltas_in_step: u64,
    /// Clock edges fired from the per-clock next-edge slots (the periodic
    /// fast path) rather than the general timed-event heap.
    pub clock_edges_fast: u64,
    /// Timed entries popped from the general heap.
    pub heap_events: u64,
    /// Subscriber notifications fanned out (clock edges, FIFO events, and
    /// signal changes delivered to subscribers).
    pub notifications: u64,
    /// Largest number of entries the timed-event queue held at once. Feed
    /// it back via [`Simulator::prereserve_queue`] between runs of a sweep
    /// so the next run's first timestep pays no regrow costs.
    pub queue_high_water: u64,
    /// Compact byte size of the most recent full snapshot document.
    ///
    /// This and the two counters below are *process-local* observability:
    /// they are deliberately excluded from the serialized snapshot metrics
    /// (and preserved across restore/rewind), because a run that happened
    /// to snapshot must stay bit-identical — same `state_hash` — to one
    /// that never did.
    pub snapshot_full_bytes: u64,
    /// Compact byte size of the most recent delta document
    /// ([`Simulator::snapshot_delta`]).
    pub snapshot_delta_bytes: u64,
    /// Components that were dirty (changed since the parent) in the most
    /// recent delta capture or warm rewind — the numerator of how
    /// incremental the incremental path actually was.
    pub snapshot_dirty_components: u64,
}

pub(crate) struct KernelState {
    now: SimTime,
    seq: u64,
    /// Sequence numbers of cancelled (not-yet-fired) timed deliveries.
    canceled: std::collections::HashSet<u64>,
    queue: EventQueue,
    next_delta: Vec<Delivery>,
    update_requests: Vec<SignalIdx>,
    /// Recycled buffer `apply_updates` swaps with `update_requests`, so the
    /// update phase allocates nothing in steady state.
    update_scratch: Vec<SignalIdx>,
    /// When set, clock edges are scheduled through the general heap instead
    /// of the per-clock slots. The resulting schedule is identical (same
    /// `(time, seq)` assignment); only the data path differs. Regression
    /// tests use it to diff the fast path against the reference path.
    legacy_clock_path: bool,
    signals: Vec<Box<dyn AnySignalSlot>>,
    clocks: Vec<ClockState>,
    fifos: Vec<Box<dyn AnyFifoSlot>>,
    tracer: Option<VcdTracer>,
    /// Structured span/counter recorder ([`crate::observe`]); starts
    /// disabled, where every emit is one predictable branch.
    recorder: Recorder,
    reporter: Reporter,
    obligations: u64,
    stop: bool,
    delta_limit: u64,
    metrics: KernelMetrics,
    component_count: usize,
    /// First typed error raised during the current run (`Api::raise`); the
    /// source id is resolved to a component name when the run finishes.
    pending_error: Option<(Option<ComponentId>, SimError)>,
    /// Dirty-tracking generation. Every mutation of a component, signal, or
    /// FIFO stamps the owning slot with the current generation; every
    /// capture point (snapshot, restore, rewind, delta) records the
    /// generation and then advances it. A slot is dirty relative to a
    /// capture iff its stamp is greater than the capture's generation.
    gen: u64,
    /// Per-signal dirty stamps, parallel to `signals`.
    signal_touched: Vec<u64>,
    /// Per-FIFO dirty stamps, parallel to `fifos`.
    fifo_touched: Vec<u64>,
}

impl KernelState {
    fn schedule(&mut self, delay: Delay, delivery: Delivery) -> Option<u64> {
        match delay {
            Delay::Delta => {
                self.next_delta.push(delivery);
                None
            }
            Delay::Time(d) if d.is_zero() => {
                self.next_delta.push(delivery);
                None
            }
            Delay::Time(d) => Some(self.schedule_timed(d, delivery)),
        }
    }

    /// Push a strictly-timed entry and return its sequence number (the
    /// cancellation handle).
    fn schedule_timed(&mut self, after: SimDuration, delivery: Delivery) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(TimedEntry {
            time: self.now + after,
            seq,
            delivery,
        });
        self.note_queue_depth();
        seq
    }

    #[inline]
    fn note_queue_depth(&mut self) {
        let depth = self.queue.len() as u64;
        if depth > self.metrics.queue_high_water {
            self.metrics.queue_high_water = depth;
        }
    }

    fn check_target(&self, target: ComponentId) {
        assert!(
            target < self.component_count,
            "message target {target} out of range (have {} components)",
            self.component_count
        );
    }

    fn clock_delivery(idx: ClockIdx, edge: Edge) -> Delivery {
        Delivery {
            target: CLOCK_TARGET,
            msg: Msg {
                source: None,
                kind: MsgKind::ClockEdge(idx, edge),
            },
            background: true,
        }
    }

    fn clock_schedule_edge(&mut self, idx: ClockIdx, edge: Edge, at: SimDuration) {
        if at.is_zero() {
            // A clock started with zero offset delivers its first edge in
            // the next delta, like any other zero-delay schedule (no seq).
            self.next_delta.push(Self::clock_delivery(idx, edge));
            return;
        }
        let seq = self.seq;
        self.seq += 1;
        let time = self.now + at;
        if self.legacy_clock_path {
            self.queue.push(TimedEntry {
                time,
                seq,
                delivery: Self::clock_delivery(idx, edge),
            });
            self.note_queue_depth();
        } else {
            let c = &mut self.clocks[idx];
            debug_assert!(!c.armed, "a clock has at most one pending edge");
            c.armed = true;
            c.next_time = time;
            c.next_seq = seq;
            c.next_edge = edge;
        }
    }

    /// Earliest pending time across the queue and the armed clock slots.
    /// `&mut` because peeking the timing wheel may rotate it forward to the
    /// next occupied bucket.
    fn next_pending_time(&mut self) -> Option<SimTime> {
        let mut t = self.queue.peek_time();
        for c in &self.clocks {
            if c.armed && t.is_none_or(|x| c.next_time < x) {
                t = Some(c.next_time);
            }
        }
        t
    }

    /// Move every event scheduled exactly at `next_t` into `next_delta`,
    /// merging the heap with the armed clock slots by `(time, seq)` so the
    /// dispatch order is identical to a heap-only schedule.
    fn drain_events_at(&mut self, next_t: SimTime) {
        loop {
            let heap_seq = match self.queue.peek() {
                Some((t, s)) if t == next_t => Some(s),
                _ => None,
            };
            let mut clock_best: Option<(u64, ClockIdx)> = None;
            for (i, c) in self.clocks.iter().enumerate() {
                if c.armed
                    && c.next_time == next_t
                    && clock_best.is_none_or(|(s, _)| c.next_seq < s)
                {
                    clock_best = Some((c.next_seq, i));
                }
            }
            match (heap_seq, clock_best) {
                (Some(hs), Some((cs, ci))) => {
                    if hs < cs {
                        self.pop_heap_event();
                    } else {
                        self.fire_clock_slot(ci);
                    }
                }
                (Some(_), None) => self.pop_heap_event(),
                (None, Some((_, ci))) => self.fire_clock_slot(ci),
                (None, None) => break,
            }
        }
    }

    fn pop_heap_event(&mut self) {
        let Some(e) = self.queue.pop() else {
            return; // caller peeked an entry, so this cannot happen
        };
        self.metrics.heap_events += 1;
        // Cancellation is rare; skip the hash probe entirely when no timer
        // was ever cancelled (the common case in clock/bus-heavy runs).
        if !self.canceled.is_empty() && self.canceled.remove(&e.seq) {
            return; // timer was cancelled before firing
        }
        self.next_delta.push(e.delivery);
    }

    fn fire_clock_slot(&mut self, idx: ClockIdx) {
        let edge = {
            let c = &mut self.clocks[idx];
            c.armed = false;
            c.next_edge
        };
        self.metrics.clock_edges_fast += 1;
        self.next_delta.push(Self::clock_delivery(idx, edge));
    }

    fn clock_start_if_needed(&mut self, idx: ClockIdx) {
        if !self.clocks[idx].started {
            self.clocks[idx].started = true;
            let offset = self.clocks[idx].start_offset;
            self.clock_schedule_edge(idx, Edge::Pos, offset);
        }
    }

    /// Handle an internal clock tick: notify subscribers (next delta) and
    /// schedule the opposite edge.
    ///
    /// Borrows are split by destructuring `KernelState`, so the subscriber
    /// list is iterated in place — no per-tick clone.
    fn clock_tick(&mut self, idx: ClockIdx, edge: Edge) {
        let next_delay = {
            let KernelState {
                clocks,
                next_delta,
                metrics,
                ..
            } = self;
            let c = &mut clocks[idx];
            let (subs, next_delay) = match edge {
                Edge::Pos => {
                    c.pos_edges += 1;
                    (&c.pos_subs, c.high_time)
                }
                Edge::Neg => (&c.neg_subs, c.period - c.high_time),
            };
            for &target in subs {
                next_delta.push(Delivery {
                    target,
                    msg: Msg {
                        source: None,
                        kind: MsgKind::ClockEdge(idx, edge),
                    },
                    background: false,
                });
            }
            metrics.notifications += subs.len() as u64;
            next_delay
        };
        let next_edge = match edge {
            Edge::Pos => Edge::Neg,
            Edge::Neg => Edge::Pos,
        };
        self.clock_schedule_edge(idx, next_edge, next_delay);
    }

    fn notify_fifo(&mut self, idx: FifoIdx, kind: FifoEventKind) {
        let KernelState {
            fifos,
            next_delta,
            metrics,
            ..
        } = self;
        let subs = fifos[idx].subscribers();
        for &target in subs {
            next_delta.push(Delivery {
                target,
                msg: Msg {
                    source: None,
                    kind: MsgKind::Fifo(idx, kind),
                },
                background: false,
            });
        }
        metrics.notifications += subs.len() as u64;
    }

    fn apply_updates(&mut self) {
        if self.update_requests.is_empty() {
            return;
        }
        let KernelState {
            signals,
            next_delta,
            tracer,
            update_requests,
            update_scratch,
            metrics,
            now,
            ..
        } = self;
        // Swap the request list with the recycled scratch buffer instead of
        // taking it (which would allocate a fresh Vec every delta cycle).
        std::mem::swap(update_requests, update_scratch);
        update_scratch.sort_unstable();
        update_scratch.dedup();
        for &idx in update_scratch.iter() {
            let slot = &mut signals[idx];
            if slot.apply_update(*now) {
                if let Some(tracer) = tracer.as_mut() {
                    if let Some((var, val)) = slot.trace_sample() {
                        tracer.record(*now, var, val);
                    }
                }
                let subs = slot.subscribers();
                for &target in subs {
                    next_delta.push(Delivery {
                        target,
                        msg: Msg {
                            source: None,
                            kind: MsgKind::SignalChanged(idx),
                        },
                        background: false,
                    });
                }
                metrics.notifications += subs.len() as u64;
            }
        }
        update_scratch.clear();
    }

    // The typed channel handles (`SignalRef<T>`, `FifoRef<T>`) are only
    // produced by the registration calls, so a downcast mismatch means the
    // host program forged a handle across simulators — a programming error
    // with no sensible recovery. These three helpers are the kernel's only
    // sanctioned panic sites for it.
    /// Record one structured trace event ([`crate::observe`]). The enabled
    /// check happens *here*, before the event struct is built, so callers
    /// on the hot path pay a single branch when tracing is off.
    #[inline]
    fn observe(
        &mut self,
        comp: ComponentId,
        lane: u8,
        cat: TraceCategory,
        name: &'static str,
        kind: TraceEventKind,
        value: u64,
    ) {
        if self.recorder.is_enabled() {
            self.recorder.emit(SimEvent {
                at: self.now,
                delta: self.metrics.delta_cycles,
                comp,
                lane,
                cat,
                name,
                kind,
                value,
            });
        }
    }

    #[allow(clippy::expect_used)]
    fn signal_slot<T: SignalValue>(&self, idx: SignalIdx) -> &SignalSlot<T> {
        self.signals[idx]
            .as_any()
            .downcast_ref::<SignalSlot<T>>()
            .expect("signal type mismatch")
    }

    #[allow(clippy::expect_used)]
    fn signal_slot_mut<T: SignalValue>(&mut self, idx: SignalIdx) -> &mut SignalSlot<T> {
        self.signals[idx]
            .as_any_mut()
            .downcast_mut::<SignalSlot<T>>()
            .expect("signal type mismatch")
    }

    #[allow(clippy::expect_used)]
    fn fifo_slot_mut<T: 'static>(&mut self, idx: FifoIdx) -> &mut FifoSlot<T> {
        self.fifos[idx]
            .as_any_mut()
            .downcast_mut::<FifoSlot<T>>()
            .expect("fifo type mismatch")
    }
}

// ---------------------------------------------------------------------------
// Snapshot support: channel value codecs and message-kind serialization
// ---------------------------------------------------------------------------

/// Primitive channel value types the snapshot subsystem understands.
/// Signals and FIFOs instantiated at other types fail the snapshot with a
/// typed error naming the channel, so unsupported state is never silently
/// dropped.
trait SnapPrim: Clone + PartialEq + std::fmt::Debug + 'static {
    const TAG: &'static str;
    fn enc(&self) -> Json;
    fn dec(j: &Json) -> Option<Self>;
}

impl SnapPrim for bool {
    const TAG: &'static str = "bool";
    fn enc(&self) -> Json {
        Json::Bool(*self)
    }
    fn dec(j: &Json) -> Option<bool> {
        j.as_bool()
    }
}

macro_rules! snap_prim_small_uint {
    ($($t:ty => $tag:literal),*) => {$(
        impl SnapPrim for $t {
            const TAG: &'static str = $tag;
            fn enc(&self) -> Json {
                Json::Num(*self as f64)
            }
            fn dec(j: &Json) -> Option<$t> {
                <$t>::try_from(j.as_u64()?).ok()
            }
        }
    )*};
}
snap_prim_small_uint!(u8 => "u8", u16 => "u16", u32 => "u32");

impl SnapPrim for u64 {
    const TAG: &'static str = "u64";
    fn enc(&self) -> Json {
        ju64(*self)
    }
    fn dec(j: &Json) -> Option<u64> {
        crate::json::ju64_of(j)
    }
}

impl SnapPrim for usize {
    const TAG: &'static str = "usize";
    fn enc(&self) -> Json {
        ju64(*self as u64)
    }
    fn dec(j: &Json) -> Option<usize> {
        usize::try_from(crate::json::ju64_of(j)?).ok()
    }
}

impl SnapPrim for i32 {
    const TAG: &'static str = "i32";
    fn enc(&self) -> Json {
        Json::Num(*self as f64)
    }
    fn dec(j: &Json) -> Option<i32> {
        i32::try_from(crate::json::ji64_of(j)?).ok()
    }
}

impl SnapPrim for i64 {
    const TAG: &'static str = "i64";
    fn enc(&self) -> Json {
        crate::json::ji64(*self)
    }
    fn dec(j: &Json) -> Option<i64> {
        crate::json::ji64_of(j)
    }
}

impl SnapPrim for f64 {
    const TAG: &'static str = "f64";
    fn enc(&self) -> Json {
        Json::Num(*self)
    }
    fn dec(j: &Json) -> Option<f64> {
        j.as_f64()
    }
}

fn signal_snapshot_typed<T: SnapPrim>(any: &dyn AnySignalSlot) -> Option<SimResult<Json>> {
    let slot = any.as_any().downcast_ref::<SignalSlot<T>>()?;
    Some(if slot.pending.is_some() {
        Err(snap::err(format!(
            "signal {:?} has an unapplied write; snapshot only between run slices",
            slot.name
        )))
    } else {
        Ok(Json::obj()
            .with("name", Json::from(slot.name.as_str()))
            .with("type", Json::from(T::TAG))
            .with("current", slot.current.enc())
            .with("change_count", ju64(slot.change_count))
            .with("last_change", ju64(slot.last_change.0))
            .with("subs", snap::usize_list_json(&slot.subscribers)))
    })
}

fn signal_restore_typed<T: SnapPrim>(any: &mut dyn AnySignalSlot, state: &Json) -> SimResult<bool> {
    let Some(slot) = any.as_any_mut().downcast_mut::<SignalSlot<T>>() else {
        return Ok(false);
    };
    let cur = snap::field(state, "current")?;
    slot.current = T::dec(cur).ok_or_else(|| {
        snap::err(format!(
            "signal {:?}: bad {} value {cur}",
            slot.name,
            T::TAG
        ))
    })?;
    slot.pending = None;
    slot.change_count = snap::u64_field(state, "change_count")?;
    slot.last_change = SimTime(snap::u64_field(state, "last_change")?);
    slot.subscribers = snap::usize_list(state, "subs")?;
    Ok(true)
}

macro_rules! for_each_snap_prim {
    ($m:ident) => {
        $m!(bool);
        $m!(u8);
        $m!(u16);
        $m!(u32);
        $m!(u64);
        $m!(usize);
        $m!(i32);
        $m!(i64);
        $m!(f64);
    };
}

fn signal_snapshot(idx: usize, any: &dyn AnySignalSlot) -> SimResult<Json> {
    macro_rules! try_type {
        ($t:ty) => {
            if let Some(r) = signal_snapshot_typed::<$t>(any) {
                return r;
            }
        };
    }
    for_each_snap_prim!(try_type);
    Err(snap::err(format!(
        "signal {idx} ({:?}) holds a type the snapshot subsystem does not support",
        any.name()
    )))
}

fn signal_restore(idx: usize, any: &mut dyn AnySignalSlot, state: &Json) -> SimResult<()> {
    let tag = snap::str_field(state, "type")?;
    macro_rules! try_type {
        ($t:ty) => {
            if tag == <$t as SnapPrim>::TAG {
                return if signal_restore_typed::<$t>(any, state)? {
                    Ok(())
                } else {
                    Err(snap::err(format!(
                        "signal {idx} ({:?}) is not of snapshot type {tag:?}",
                        any.name()
                    )))
                };
            }
        };
    }
    for_each_snap_prim!(try_type);
    Err(snap::err(format!("unknown signal type tag {tag:?}")))
}

fn fifo_snapshot_typed<T: SnapPrim>(any: &dyn AnyFifoSlot) -> Option<Json> {
    let slot = any.as_any().downcast_ref::<FifoSlot<T>>()?;
    let items: Vec<Json> = slot.items.iter().map(SnapPrim::enc).collect();
    Some(
        Json::obj()
            .with("name", Json::from(slot.name.as_str()))
            .with("type", Json::from(T::TAG))
            .with("items", Json::Arr(items))
            .with("total_written", ju64(slot.total_written))
            .with("total_read", ju64(slot.total_read))
            .with("high_watermark", ju64(slot.high_watermark as u64))
            .with("subs", snap::usize_list_json(&slot.subscribers)),
    )
}

fn fifo_restore_typed<T: SnapPrim>(any: &mut dyn AnyFifoSlot, state: &Json) -> SimResult<bool> {
    let Some(slot) = any.as_any_mut().downcast_mut::<FifoSlot<T>>() else {
        return Ok(false);
    };
    let mut items = std::collections::VecDeque::new();
    for it in snap::arr_field(state, "items")? {
        items.push_back(
            T::dec(it).ok_or_else(|| {
                snap::err(format!("fifo {:?}: bad {} item {it}", slot.name, T::TAG))
            })?,
        );
    }
    if items.len() > slot.capacity {
        return Err(snap::err(format!(
            "fifo {:?}: snapshot holds {} items, capacity is {}",
            slot.name,
            items.len(),
            slot.capacity
        )));
    }
    slot.items = items;
    slot.total_written = snap::u64_field(state, "total_written")?;
    slot.total_read = snap::u64_field(state, "total_read")?;
    slot.high_watermark = snap::usize_field(state, "high_watermark")?;
    slot.subscribers = snap::usize_list(state, "subs")?;
    Ok(true)
}

fn fifo_snapshot(idx: usize, any: &dyn AnyFifoSlot) -> SimResult<Json> {
    macro_rules! try_type {
        ($t:ty) => {
            if let Some(j) = fifo_snapshot_typed::<$t>(any) {
                return Ok(j);
            }
        };
    }
    for_each_snap_prim!(try_type);
    Err(snap::err(format!(
        "fifo {idx} ({:?}) holds a type the snapshot subsystem does not support",
        any.name()
    )))
}

fn fifo_restore(idx: usize, any: &mut dyn AnyFifoSlot, state: &Json) -> SimResult<()> {
    let tag = snap::str_field(state, "type")?;
    macro_rules! try_type {
        ($t:ty) => {
            if tag == <$t as SnapPrim>::TAG {
                return if fifo_restore_typed::<$t>(any, state)? {
                    Ok(())
                } else {
                    Err(snap::err(format!(
                        "fifo {idx} ({:?}) is not of snapshot type {tag:?}",
                        any.name()
                    )))
                };
            }
        };
    }
    for_each_snap_prim!(try_type);
    Err(snap::err(format!("unknown fifo type tag {tag:?}")))
}

fn edge_str(e: Edge) -> &'static str {
    match e {
        Edge::Pos => "pos",
        Edge::Neg => "neg",
    }
}

fn edge_of(s: &str) -> SimResult<Edge> {
    match s {
        "pos" => Ok(Edge::Pos),
        "neg" => Ok(Edge::Neg),
        other => Err(snap::err(format!("unknown clock edge {other:?}"))),
    }
}

fn msg_kind_json(kind: &MsgKind) -> SimResult<Json> {
    Ok(match kind {
        MsgKind::Start => Json::obj().with("k", Json::from("start")),
        MsgKind::SignalChanged(i) => Json::obj()
            .with("k", Json::from("signal"))
            .with("idx", ju64(*i as u64)),
        MsgKind::ClockEdge(i, e) => Json::obj()
            .with("k", Json::from("clock"))
            .with("idx", ju64(*i as u64))
            .with("edge", Json::from(edge_str(*e))),
        MsgKind::Fifo(i, ev) => Json::obj()
            .with("k", Json::from("fifo"))
            .with("idx", ju64(*i as u64))
            .with(
                "ev",
                Json::from(match ev {
                    FifoEventKind::DataWritten => "written",
                    FifoEventKind::DataRead => "read",
                }),
            ),
        MsgKind::Timer(tag) => Json::obj()
            .with("k", Json::from("timer"))
            .with("tag", ju64(*tag)),
        MsgKind::User(payload) => Json::obj()
            .with("k", Json::from("user"))
            .with("payload", snap::encode_payload(payload.as_ref())?),
    })
}

fn msg_kind_of(j: &Json) -> SimResult<MsgKind> {
    Ok(match snap::str_field(j, "k")? {
        "start" => MsgKind::Start,
        "signal" => MsgKind::SignalChanged(snap::usize_field(j, "idx")?),
        "clock" => MsgKind::ClockEdge(
            snap::usize_field(j, "idx")?,
            edge_of(snap::str_field(j, "edge")?)?,
        ),
        "fifo" => MsgKind::Fifo(
            snap::usize_field(j, "idx")?,
            match snap::str_field(j, "ev")? {
                "written" => FifoEventKind::DataWritten,
                "read" => FifoEventKind::DataRead,
                other => return Err(snap::err(format!("unknown fifo event {other:?}"))),
            },
        ),
        "timer" => MsgKind::Timer(snap::u64_field(j, "tag")?),
        "user" => MsgKind::User(snap::decode_payload(snap::field(j, "payload")?)?),
        other => return Err(snap::err(format!("unknown message kind {other:?}"))),
    })
}

fn metrics_json(m: &KernelMetrics) -> Json {
    Json::obj()
        .with("dispatched", ju64(m.dispatched))
        .with("delta_cycles", ju64(m.delta_cycles))
        .with("timesteps", ju64(m.timesteps))
        .with("max_deltas_in_step", ju64(m.max_deltas_in_step))
        .with("clock_edges_fast", ju64(m.clock_edges_fast))
        .with("heap_events", ju64(m.heap_events))
        .with("notifications", ju64(m.notifications))
        .with("queue_high_water", ju64(m.queue_high_water))
}

fn metrics_of(j: &Json) -> SimResult<KernelMetrics> {
    Ok(KernelMetrics {
        dispatched: snap::u64_field(j, "dispatched")?,
        delta_cycles: snap::u64_field(j, "delta_cycles")?,
        timesteps: snap::u64_field(j, "timesteps")?,
        max_deltas_in_step: snap::u64_field(j, "max_deltas_in_step")?,
        clock_edges_fast: snap::u64_field(j, "clock_edges_fast")?,
        heap_events: snap::u64_field(j, "heap_events")?,
        notifications: snap::u64_field(j, "notifications")?,
        queue_high_water: snap::u64_field(j, "queue_high_water")?,
        // Snapshot-size counters are process-local observability and are
        // deliberately absent from the serialized document (their values
        // would differ between a straight run and a restored one, breaking
        // state-hash bit-identity). `restore_globals_from` preserves the
        // live values across a restore.
        ..KernelMetrics::default()
    })
}

/// The interface a component uses while handling a message.
pub struct Api<'a> {
    st: &'a mut KernelState,
    me: ComponentId,
}

impl Api<'_> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.st.now
    }

    /// This component's id.
    pub fn me(&self) -> ComponentId {
        self.me
    }

    /// Send a user payload to `target` after `delay`.
    pub fn send<P: Any>(&mut self, target: ComponentId, payload: P, delay: Delay) {
        self.st.check_target(target);
        let me = self.me;
        self.st.schedule(
            delay,
            Delivery {
                target,
                msg: Msg {
                    source: Some(me),
                    kind: MsgKind::User(Box::new(payload)),
                },
                background: false,
            },
        );
    }

    /// Send a user payload after a plain duration.
    pub fn send_in<P: Any>(&mut self, target: ComponentId, payload: P, after: SimDuration) {
        self.send(target, payload, Delay::Time(after));
    }

    /// Arm a timer on this component; a `MsgKind::Timer(tag)` arrives after
    /// `delay`.
    pub fn timer(&mut self, delay: Delay, tag: u64) {
        let me = self.me;
        self.st.schedule(
            delay,
            Delivery {
                target: me,
                msg: Msg {
                    source: Some(me),
                    kind: MsgKind::Timer(tag),
                },
                background: false,
            },
        );
    }

    /// Arm a timer after a plain duration.
    pub fn timer_in(&mut self, after: SimDuration, tag: u64) {
        self.timer(Delay::Time(after), tag);
    }

    /// Arm a *cancellable* timer; keep the handle to revoke it before it
    /// fires (watchdogs, poll timeouts). A zero duration is rounded up to
    /// the smallest timed delay so the timer stays cancellable.
    pub fn timer_cancellable(&mut self, after: SimDuration, tag: u64) -> TimerHandle {
        let me = self.me;
        let after = if after.is_zero() {
            SimDuration::fs(1)
        } else {
            after
        };
        let seq = self.st.schedule_timed(
            after,
            Delivery {
                target: me,
                msg: Msg {
                    source: Some(me),
                    kind: MsgKind::Timer(tag),
                },
                background: false,
            },
        );
        TimerHandle(seq)
    }

    /// Cancel a timer armed with [`Api::timer_cancellable`]. Cancelling a
    /// timer that already fired (or was already cancelled) is a no-op.
    pub fn cancel_timer(&mut self, h: TimerHandle) {
        self.st.canceled.insert(h.0);
    }

    /// Read a signal's current (update-phase) value.
    pub fn read<T: SignalValue>(&self, s: SignalRef<T>) -> T {
        self.st.signal_slot::<T>(s.idx).current.clone()
    }

    /// Request a signal update; visible to readers in the next delta cycle.
    pub fn write<T: SignalValue>(&mut self, s: SignalRef<T>, v: T) {
        self.st.signal_touched[s.idx] = self.st.gen;
        self.st.signal_slot_mut::<T>(s.idx).pending = Some(v);
        self.st.update_requests.push(s.idx);
    }

    /// Subscribe to change notifications of a signal.
    pub fn subscribe_signal<T: SignalValue>(&mut self, s: SignalRef<T>) {
        let me = self.me;
        self.st.signal_touched[s.idx] = self.st.gen;
        self.st.signals[s.idx].subscribe(me);
    }

    /// Subscribe to a clock edge. The clock starts free-running on first
    /// subscription.
    pub fn subscribe_clock(&mut self, c: ClockRef, edge: Edge) {
        let me = self.me;
        {
            let clock = &mut self.st.clocks[c.0];
            let subs = match edge {
                Edge::Pos => &mut clock.pos_subs,
                Edge::Neg => &mut clock.neg_subs,
            };
            if !subs.contains(&me) {
                subs.push(me);
            }
        }
        self.st.clock_start_if_needed(c.0);
    }

    /// Non-blocking FIFO write; on success subscribers get `DataWritten` in
    /// the next delta.
    pub fn fifo_try_put<T: 'static>(&mut self, f: FifoRef<T>, v: T) -> Result<(), T> {
        let slot = self.st.fifo_slot_mut::<T>(f.idx);
        match slot.try_put(v) {
            Ok(()) => {
                self.st.fifo_touched[f.idx] = self.st.gen;
                self.st.notify_fifo(f.idx, FifoEventKind::DataWritten);
                Ok(())
            }
            Err(v) => Err(v),
        }
    }

    /// Non-blocking FIFO read; on success subscribers get `DataRead` in the
    /// next delta.
    pub fn fifo_try_get<T: 'static>(&mut self, f: FifoRef<T>) -> Option<T> {
        let slot = self.st.fifo_slot_mut::<T>(f.idx);
        match slot.try_get() {
            Some(v) => {
                self.st.fifo_touched[f.idx] = self.st.gen;
                self.st.notify_fifo(f.idx, FifoEventKind::DataRead);
                Some(v)
            }
            None => None,
        }
    }

    /// Items currently queued in a FIFO.
    pub fn fifo_len<T: 'static>(&self, f: FifoRef<T>) -> usize {
        self.st.fifos[f.idx].len()
    }

    /// FIFO capacity.
    pub fn fifo_capacity<T: 'static>(&self, f: FifoRef<T>) -> usize {
        self.st.fifos[f.idx].capacity()
    }

    /// Subscribe to a FIFO's data-written/data-read notifications.
    pub fn subscribe_fifo<T: 'static>(&mut self, f: FifoRef<T>) {
        let me = self.me;
        self.st.fifo_touched[f.idx] = self.st.gen;
        self.st.fifos[f.idx].subscribe(me);
    }

    /// Declare the start of an outstanding obligation (e.g. a split
    /// transaction awaiting its response). A run that drains all events
    /// while obligations remain fails with a deadlock [`SimError`]
    /// carrying the outstanding count.
    pub fn obligation_begin(&mut self) {
        self.st.obligations += 1;
    }

    /// Declare an obligation fulfilled.
    pub fn obligation_end(&mut self) {
        debug_assert!(self.st.obligations > 0, "obligation underflow");
        self.st.obligations = self.st.obligations.saturating_sub(1);
    }

    /// Ask the kernel to stop after the current delivery.
    pub fn stop(&mut self) {
        self.st.stop = true;
    }

    /// Log a report entry.
    pub fn log(&mut self, severity: Severity, text: impl Into<String>) {
        let now = self.st.now;
        let me = self.me;
        self.st.reporter.log(now, Some(me), severity, text.into());
    }

    /// Raise a typed modeling error: logs a `Severity::Error` report *and*
    /// arms the run's typed error, so the enclosing `run`/`run_until`
    /// returns `Err(SimError { kind, .. })` attributed to this component.
    /// The first raise of a run determines the returned error; later raises
    /// still land in the report log.
    pub fn raise(&mut self, kind: SimErrorKind, text: impl Into<String>) {
        let text = text.into();
        let now = self.st.now;
        let me = self.me;
        self.st
            .reporter
            .log(now, Some(me), Severity::Error, text.clone());
        if self.st.pending_error.is_none() {
            self.st.pending_error = Some((Some(me), SimError::new(kind, text).at(now)));
        }
    }

    /// Whether structured tracing is recording. Instrumentation whose cost
    /// goes beyond one emit (e.g. computing a payload) should gate on this.
    #[inline]
    pub fn tracing_enabled(&self) -> bool {
        self.st.recorder.is_enabled()
    }

    /// Open a span on this component's main lane (see [`crate::observe`]).
    #[inline]
    pub fn trace_begin(&mut self, cat: TraceCategory, name: &'static str, value: u64) {
        let me = self.me;
        self.st
            .observe(me, 0, cat, name, TraceEventKind::Begin, value);
    }

    /// Close the span opened by [`Api::trace_begin`] with the same name.
    #[inline]
    pub fn trace_end(&mut self, cat: TraceCategory, name: &'static str, value: u64) {
        let me = self.me;
        self.st
            .observe(me, 0, cat, name, TraceEventKind::End, value);
    }

    /// Open a span on a specific lane. Lanes are sub-tracks within a
    /// component; put independent overlapping activities (execution vs. a
    /// background configuration load) on different lanes so each lane's
    /// spans nest.
    #[inline]
    pub fn trace_begin_lane(
        &mut self,
        lane: u8,
        cat: TraceCategory,
        name: &'static str,
        value: u64,
    ) {
        let me = self.me;
        self.st
            .observe(me, lane, cat, name, TraceEventKind::Begin, value);
    }

    /// Close a span on a specific lane.
    #[inline]
    pub fn trace_end_lane(&mut self, lane: u8, cat: TraceCategory, name: &'static str, value: u64) {
        let me = self.me;
        self.st
            .observe(me, lane, cat, name, TraceEventKind::End, value);
    }

    /// Record a point-in-time marker.
    #[inline]
    pub fn trace_instant(&mut self, cat: TraceCategory, name: &'static str, value: u64) {
        let me = self.me;
        self.st
            .observe(me, 0, cat, name, TraceEventKind::Instant, value);
    }

    /// Sample a counter value under this component's track.
    #[inline]
    pub fn trace_counter(&mut self, cat: TraceCategory, name: &'static str, value: u64) {
        let me = self.me;
        self.st
            .observe(me, 0, cat, name, TraceEventKind::Counter, value);
    }
}

struct CompSlot {
    name: String,
    comp: Option<Box<dyn Component>>,
    /// Generation of the last mutation (dispatch or `get_mut`); see
    /// `KernelState::gen`.
    touched_gen: u64,
}

/// Most recent capture points the kernel remembers for delta chaining and
/// warm rewind; older captures fall off and can no longer serve as parents.
const CAPTURED_CAP: usize = 64;

/// One remembered capture point: the live state equalled the document with
/// this hash at this generation, with the recorder and tracer at these
/// mutation epochs. The epochs let `snapshot_delta_from` skip the heavy
/// recorder/tracer globals when they have not changed since the parent
/// capture (the dominant payload of deltas over traced runs).
#[derive(Debug, Clone, Copy)]
struct Capture {
    hash: u64,
    gen: u64,
    recorder_epoch: u64,
    tracer_epoch: u64,
}

/// The simulator: owns all components and channels and runs the event loop.
pub struct Simulator {
    comps: Vec<CompSlot>,
    st: KernelState,
    started: bool,
    /// Recent capture points, oldest first, capped at [`CAPTURED_CAP`].
    /// `rewind` and `snapshot_delta` look parents up here; a hash that is
    /// not present (never captured on this simulator, or evicted, or pruned
    /// because it belonged to an abandoned branch) is a typed
    /// `SnapshotChain` error.
    captured: Vec<Capture>,
    /// Hash of the document the live state is known to equal — set by every
    /// capture point, invalidated by running. `restore_delta` requires it
    /// to match the delta's parent hash.
    current_doc_hash: Option<u64>,
    /// Recycled delta-cycle buffer; swapped with `st.next_delta` each delta
    /// so the dispatch loop reuses two buffers forever instead of
    /// allocating one per delta cycle.
    runnable: Vec<Delivery>,
    /// When set, running *under a horizon* with outstanding obligations and
    /// no local work returns `TimeLimit` instead of a deadlock error — a
    /// shard may be waiting on a cross-shard reply its coordinator injects
    /// before the next slice. Unbounded `run()` still detects deadlock.
    defer_deadlock: bool,
}

impl Default for Simulator {
    fn default() -> Self {
        Self::new()
    }
}

impl Simulator {
    /// New, empty simulator at time zero.
    pub fn new() -> Self {
        Simulator {
            comps: Vec::new(),
            st: KernelState {
                now: SimTime::ZERO,
                seq: 0,
                canceled: std::collections::HashSet::new(),
                queue: EventQueue::new(),
                next_delta: Vec::new(),
                update_requests: Vec::new(),
                update_scratch: Vec::new(),
                legacy_clock_path: false,
                signals: Vec::new(),
                clocks: Vec::new(),
                fifos: Vec::new(),
                tracer: None,
                recorder: Recorder::disabled(),
                reporter: Reporter::new(),
                obligations: 0,
                stop: false,
                delta_limit: 100_000,
                metrics: KernelMetrics::default(),
                component_count: 0,
                pending_error: None,
                gen: 1,
                signal_touched: Vec::new(),
                fifo_touched: Vec::new(),
            },
            started: false,
            captured: Vec::new(),
            current_doc_hash: None,
            runnable: Vec::new(),
            defer_deadlock: false,
        }
    }

    /// Register a component; returns its id. Must be called before `run`.
    pub fn add_component(&mut self, name: &str, comp: Box<dyn Component>) -> ComponentId {
        assert!(!self.started, "cannot add components after the run started");
        self.comps.push(CompSlot {
            name: name.to_string(),
            comp: Some(comp),
            touched_gen: 0,
        });
        self.st.component_count = self.comps.len();
        self.comps.len() - 1
    }

    /// Convenience for concrete component types.
    pub fn add<C: Component>(&mut self, name: &str, comp: C) -> ComponentId {
        self.add_component(name, Box::new(comp))
    }

    /// Register a signal channel.
    pub fn add_signal<T: SignalValue>(&mut self, name: &str, init: T) -> SignalRef<T> {
        self.st
            .signals
            .push(Box::new(SignalSlot::new(name.to_string(), init)));
        self.st.signal_touched.push(0);
        SignalRef::new(self.st.signals.len() - 1)
    }

    /// Register a bounded FIFO channel.
    pub fn add_fifo<T: 'static>(&mut self, name: &str, capacity: usize) -> FifoRef<T> {
        self.st
            .fifos
            .push(Box::new(FifoSlot::<T>::new(name.to_string(), capacity)));
        self.st.fifo_touched.push(0);
        FifoRef::new(self.st.fifos.len() - 1)
    }

    /// Register a clock. `high_time` is how long the clock stays high after
    /// a posedge (use `period / 2` for a symmetric clock).
    pub fn add_clock(
        &mut self,
        name: &str,
        period: SimDuration,
        high_time: SimDuration,
        start_offset: SimDuration,
    ) -> ClockRef {
        assert!(!period.is_zero(), "clock period must be nonzero");
        assert!(
            !high_time.is_zero() && high_time < period,
            "high time must be in (0, period)"
        );
        self.st.clocks.push(ClockState {
            name: name.to_string(),
            period,
            high_time,
            start_offset,
            pos_subs: Vec::new(),
            neg_subs: Vec::new(),
            started: false,
            pos_edges: 0,
            armed: false,
            next_time: SimTime::ZERO,
            next_seq: 0,
            next_edge: Edge::Pos,
        });
        ClockRef(self.st.clocks.len() - 1)
    }

    /// Symmetric clock from a frequency in MHz.
    pub fn add_clock_mhz(&mut self, name: &str, freq_mhz: u64) -> ClockRef {
        let period = SimDuration::cycles_at_mhz(1, freq_mhz);
        self.add_clock(name, period, period / 2, SimDuration::ZERO)
    }

    /// Enable VCD tracing.
    pub fn enable_trace(&mut self) {
        if self.st.tracer.is_none() {
            self.st.tracer = Some(VcdTracer::new());
        }
    }

    /// Register a signal with the tracer. Implicitly enables tracing if
    /// [`enable_trace`] has not been called yet.
    ///
    /// [`enable_trace`]: Simulator::enable_trace
    pub fn trace_signal<T: SignalValue + Traceable>(&mut self, s: SignalRef<T>) {
        self.enable_trace();
        let (name, value) = {
            let slot = self.st.signal_slot::<T>(s.idx);
            (slot.name.clone(), slot.current.trace_value())
        };
        let Some(tracer) = self.st.tracer.as_mut() else {
            return; // enable_trace just populated it
        };
        let var = tracer.declare(&name, value);
        self.st.signal_slot_mut::<T>(s.idx).trace = Some((var, crate::signal::trace_fn::<T>()));
    }

    /// Access the accumulated trace.
    pub fn tracer(&self) -> Option<&VcdTracer> {
        self.st.tracer.as_ref()
    }

    /// Enable structured tracing ([`crate::observe`]) with a ring buffer
    /// holding the most recent `capacity` events.
    pub fn enable_observe(&mut self, capacity: usize) {
        let floor = self.st.recorder.epoch();
        self.st.recorder = Recorder::enabled(capacity);
        self.st.recorder.bump_epoch_past(floor);
    }

    /// Install a preconfigured recorder (e.g. [`Recorder::disabled`] to
    /// turn tracing back off between runs). The mutation epoch stays
    /// monotonic across the swap so older capture points can never
    /// mistake the new recorder for an unchanged one.
    pub fn set_recorder(&mut self, r: Recorder) {
        let floor = self.st.recorder.epoch();
        self.st.recorder = r;
        self.st.recorder.bump_epoch_past(floor);
    }

    /// The structured-trace recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.st.recorder
    }

    /// Retained structured-trace events, oldest first.
    pub fn observe_events(&self) -> Vec<SimEvent> {
        self.st.recorder.events()
    }

    /// Access the report log.
    pub fn reports(&self) -> &Reporter {
        &self.st.reporter
    }

    /// Echo reports at or above `sev` to stderr.
    pub fn set_report_echo(&mut self, sev: Option<Severity>) {
        self.st.reporter.set_echo(sev);
    }

    /// Override the delta-cycle limit per timestep.
    pub fn set_delta_limit(&mut self, limit: u64) {
        self.st.delta_limit = limit;
    }

    /// Route clock edges through the general timed-event heap instead of
    /// the per-clock next-edge slots. The resulting schedule is identical —
    /// both paths draw sequence numbers from the same counter and dispatch
    /// in `(time, seq)` order — only the internal data path differs.
    /// Determinism regression tests use this to diff the optimized path
    /// against the reference path; benchmarks use it to measure the win.
    pub fn set_legacy_clock_path(&mut self, on: bool) {
        self.st.legacy_clock_path = on;
    }

    /// Route timed events through the reference binary heap instead of the
    /// hierarchical timing wheel. Both structures dispatch in the same
    /// global `(time, seq)` order; pending entries migrate on toggle.
    /// Determinism regression tests use this to diff the wheel against the
    /// reference path.
    pub fn set_legacy_timed_queue(&mut self, on: bool) {
        self.st.queue.set_legacy(on);
    }

    /// Treat quiescence-with-obligations under a `run_until` horizon as
    /// [`StopReason::TimeLimit`] instead of a deadlock error.
    ///
    /// Sharded runs (see [`crate::shard`]) set this on every shard
    /// simulator: a component blocked on a split transaction may be waiting
    /// for a cross-shard reply that the coordinator injects before the next
    /// window, which a single simulator cannot distinguish from true
    /// deadlock. Unbounded `run()` calls still detect deadlock normally,
    /// and the shard coordinator re-checks obligations once every shard has
    /// reached the end horizon.
    pub fn set_defer_deadlock(&mut self, on: bool) {
        self.defer_deadlock = on;
    }

    /// Pre-reserve timed-queue storage for roughly `n` concurrent entries —
    /// typically the previous run's [`KernelMetrics::queue_high_water`] —
    /// so a sweep point's first timestep doesn't pay regrow costs.
    pub fn prereserve_queue(&mut self, n: usize) {
        self.st.queue.reserve(n);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.st.now
    }

    /// Kernel operation counters.
    pub fn metrics(&self) -> KernelMetrics {
        self.st.metrics
    }

    /// Timed events currently pending (general heap plus armed per-clock
    /// next-edge slots).
    pub fn pending_timed_events(&self) -> usize {
        self.st.queue.len() + self.st.clocks.iter().filter(|c| c.armed).count()
    }

    /// Name of a component.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.comps[id].name
    }

    /// Number of registered components.
    pub fn component_count(&self) -> usize {
        self.comps.len()
    }

    /// Downcast a component to its concrete type (panics on mismatch).
    pub fn get<T: Component>(&self, id: ComponentId) -> &T {
        match self.try_get(id) {
            Some(c) => c,
            None => component_access_failure::<T>(id, &self.comps[id].name),
        }
    }

    /// Downcast a component to its concrete type.
    pub fn try_get<T: Component>(&self, id: ComponentId) -> Option<&T> {
        let c = self.comps[id].comp.as_deref()?;
        (c as &dyn Any).downcast_ref::<T>()
    }

    /// Mutable downcast (for injecting state between runs in tests).
    pub fn get_mut<T: Component>(&mut self, id: ComponentId) -> &mut T {
        // Handing out `&mut` may mutate the component — conservatively mark
        // it dirty for the incremental-snapshot machinery.
        self.comps[id].touched_gen = self.st.gen;
        let name = self.comps[id].name.clone();
        match self.comps[id]
            .comp
            .as_deref_mut()
            .and_then(|c| (c as &mut dyn Any).downcast_mut::<T>())
        {
            Some(c) => c,
            None => component_access_failure::<T>(id, &name),
        }
    }

    /// Read a signal's current value from outside the simulation.
    pub fn signal_value<T: SignalValue>(&self, s: SignalRef<T>) -> T {
        self.st.signal_slot::<T>(s.idx).current.clone()
    }

    /// Number of value changes a signal has seen.
    pub fn signal_change_count<T: SignalValue>(&self, s: SignalRef<T>) -> u64 {
        self.st.signal_slot::<T>(s.idx).change_count
    }

    /// Snapshot of a FIFO's occupancy statistics:
    /// `(name, len, capacity, total_written, total_read, high_watermark)`.
    pub fn fifo_stats<T: 'static>(&self, f: FifoRef<T>) -> (String, usize, usize, u64, u64, usize) {
        let s = &self.st.fifos[f.idx];
        (
            s.name().to_string(),
            s.len(),
            s.capacity(),
            s.total_written(),
            s.total_read(),
            s.high_watermark(),
        )
    }

    /// Posedge count of a clock.
    pub fn clock_posedges(&self, c: ClockRef) -> u64 {
        self.st.clocks[c.0].pos_edges
    }

    /// Name of a clock.
    pub fn clock_name(&self, c: ClockRef) -> &str {
        &self.st.clocks[c.0].name
    }

    /// Outstanding obligations (nonzero after a deadlock return).
    pub fn obligations(&self) -> u64 {
        self.st.obligations
    }

    /// Schedule an initial user payload before the run starts (testbench
    /// stimulus).
    pub fn post<P: Any>(&mut self, target: ComponentId, payload: P, delay: Delay) {
        self.st.check_target(target);
        self.st.schedule(
            delay,
            Delivery {
                target,
                msg: Msg {
                    source: None,
                    kind: MsgKind::User(Box::new(payload)),
                },
                background: false,
            },
        );
    }

    fn ensure_started(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        for id in 0..self.comps.len() {
            self.st.next_delta.push(Delivery {
                target: id,
                msg: Msg {
                    source: None,
                    kind: MsgKind::Start,
                },
                background: false,
            });
        }
    }

    fn dispatch(&mut self, d: Delivery) {
        if d.target == CLOCK_TARGET {
            if let MsgKind::ClockEdge(idx, edge) = d.msg.kind {
                self.st.clock_tick(idx, edge);
            }
            return;
        }
        self.st.metrics.dispatched += 1;
        self.comps[d.target].touched_gen = self.st.gen;
        let Some(mut comp) = self.comps[d.target].comp.take() else {
            // The single-threaded kernel never re-enters dispatch, so a
            // vacant slot means the invariant broke; surface it as a typed
            // error instead of unwinding mid-run.
            let now = self.st.now;
            let msg = format!(
                "re-entrant dispatch on component {} ({})",
                d.target, self.comps[d.target].name
            );
            self.st
                .reporter
                .log(now, None, Severity::Error, msg.clone());
            if self.st.pending_error.is_none() {
                self.st.pending_error =
                    Some((None, SimError::new(SimErrorKind::Internal, msg).at(now)));
            }
            return;
        };
        {
            let mut api = Api {
                st: &mut self.st,
                me: d.target,
            };
            comp.handle(&mut api, d.msg);
        }
        self.comps[d.target].comp = Some(comp);
    }

    /// Run until quiescent. `Err` on deadlock, delta overflow, or an
    /// escalated `Severity::Error` report / `Api::raise`.
    pub fn run(&mut self) -> SimResult<StopReason> {
        self.run_inner(None)
    }

    /// Run until `horizon` (inclusive of events at the horizon).
    pub fn run_until(&mut self, horizon: SimTime) -> SimResult<StopReason> {
        self.run_inner(Some(horizon))
    }

    /// Run for an additional duration from the current time.
    pub fn run_for(&mut self, d: SimDuration) -> SimResult<StopReason> {
        let horizon = self.st.now + d;
        self.run_inner(Some(horizon))
    }

    /// Capture the complete dynamic state of this simulation as a
    /// [`Snapshot`] (see [`crate::snapshot`] for the contract).
    ///
    /// Legal only *between* run slices — after a `run_until` returned and
    /// before the next `run*` call — when no delta work or signal update is
    /// in flight. `&mut` because inspecting the timed queue may rotate the
    /// timing wheel (which never changes the dispatch order).
    ///
    /// The report log is deliberately not captured; everything else that
    /// influences future dispatch is.
    pub fn snapshot(&mut self) -> SimResult<Snapshot> {
        if !self.started {
            return Err(snap::err(
                "snapshot before the run started; run at least one slice first",
            ));
        }
        if !self.st.next_delta.is_empty() || !self.st.update_requests.is_empty() {
            return Err(snap::err(
                "snapshot mid-delta-cycle; snapshot only between run slices",
            ));
        }
        if self.st.pending_error.is_some() {
            return Err(snap::err("snapshot with a pending simulation error"));
        }

        // Pending timed events, in global (time, seq) dispatch order so the
        // document is canonical and restore re-inserts front-to-back.
        let mut entries: Vec<&TimedEntry> = self.st.queue.iter_entries().collect();
        entries.sort_by_key(|e| (e.time, e.seq));
        let mut queue = Vec::with_capacity(entries.len());
        for e in entries {
            queue.push(
                Json::obj()
                    .with("t", ju64(e.time.0))
                    .with("seq", ju64(e.seq))
                    .with("target", ju64(e.delivery.target as u64))
                    .with(
                        "source",
                        match e.delivery.msg.source {
                            Some(s) => ju64(s as u64),
                            None => Json::Null,
                        },
                    )
                    .with("background", Json::Bool(e.delivery.background))
                    .with("kind", msg_kind_json(&e.delivery.msg.kind)?),
            );
        }

        let mut canceled: Vec<u64> = self.st.canceled.iter().copied().collect();
        canceled.sort_unstable();

        let clocks: Vec<Json> = self
            .st
            .clocks
            .iter()
            .map(|c| {
                Json::obj()
                    .with("name", Json::from(c.name.as_str()))
                    .with("started", Json::Bool(c.started))
                    .with("pos_edges", ju64(c.pos_edges))
                    .with("armed", Json::Bool(c.armed))
                    .with("next_time", ju64(c.next_time.0))
                    .with("next_seq", ju64(c.next_seq))
                    .with("next_edge", Json::from(edge_str(c.next_edge)))
                    .with("pos_subs", snap::usize_list_json(&c.pos_subs))
                    .with("neg_subs", snap::usize_list_json(&c.neg_subs))
            })
            .collect();

        let mut signals = Vec::with_capacity(self.st.signals.len());
        for (i, s) in self.st.signals.iter().enumerate() {
            signals.push(signal_snapshot(i, s.as_ref())?);
        }
        let mut fifos = Vec::with_capacity(self.st.fifos.len());
        for (i, f) in self.st.fifos.iter().enumerate() {
            fifos.push(fifo_snapshot(i, f.as_ref())?);
        }

        let mut components = Vec::with_capacity(self.comps.len());
        for slot in &mut self.comps {
            let comp = slot
                .comp
                .as_mut()
                .ok_or_else(|| snap::err(format!("component {:?} is mid-dispatch", slot.name)))?;
            let state = comp.snapshot().map_err(|e| e.in_component(&slot.name))?;
            components.push(
                Json::obj()
                    .with("name", Json::from(slot.name.as_str()))
                    .with("state", state),
            );
        }

        let tracer = match &self.st.tracer {
            Some(t) => t.snapshot_json(),
            None => Json::Null,
        };

        let snapshot = Snapshot::from_state(
            Json::obj()
                .with("schema", Json::from(snap::SNAPSHOT_SCHEMA))
                .with("now", ju64(self.st.now.0))
                .with("seq", ju64(self.st.seq))
                .with("obligations", ju64(self.st.obligations))
                .with("delta_limit", ju64(self.st.delta_limit))
                .with("metrics", metrics_json(&self.st.metrics))
                .with(
                    "canceled",
                    Json::Arr(canceled.into_iter().map(ju64).collect()),
                )
                .with("queue", Json::Arr(queue))
                .with("clocks", Json::Arr(clocks))
                .with("signals", Json::Arr(signals))
                .with("fifos", Json::Arr(fifos))
                .with("tracer", tracer)
                .with("recorder", self.st.recorder.snapshot_json())
                .with("components", Json::Arr(components)),
        );
        self.st.metrics.snapshot_full_bytes = snapshot.byte_len();
        self.register_capture(snapshot.state_hash());
        Ok(snapshot)
    }

    /// Record a capture point: the live state equals the document with this
    /// hash, at the current generation. Future mutations stamp a strictly
    /// greater generation, so dirtiness relative to this capture is one
    /// integer comparison.
    fn register_capture(&mut self, hash: u64) {
        self.captured.push(Capture {
            hash,
            gen: self.st.gen,
            recorder_epoch: self.st.recorder.epoch(),
            tracer_epoch: self.st.tracer.as_ref().map_or(0, VcdTracer::epoch),
        });
        self.st.gen += 1;
        if self.captured.len() > CAPTURED_CAP {
            self.captured.remove(0);
        }
        self.current_doc_hash = Some(hash);
    }

    /// The capture point registered for `hash`, if it is still remembered.
    /// The latest registration wins (re-capturing the same document narrows
    /// the dirty set).
    fn captured_entry(&self, hash: u64) -> Option<Capture> {
        self.captured.iter().rev().find(|c| c.hash == hash).copied()
    }

    /// Generation at which `hash` was captured, if it is still remembered.
    fn captured_gen(&self, hash: u64) -> Option<u64> {
        self.captured_entry(hash).map(|c| c.gen)
    }

    /// Hash of the document the live state is known to equal, if the
    /// simulator is standing exactly at a capture point (it hasn't run
    /// since the last snapshot/restore/rewind/delta).
    pub fn current_doc_hash(&self) -> Option<u64> {
        self.current_doc_hash
    }

    /// Compare this simulator's static roster (component, signal, FIFO,
    /// and clock names, in order) against `snapshot`'s, reporting *every*
    /// mismatching field in one message. `None` means the shapes agree.
    ///
    /// [`Simulator::restore`] stops at the first mismatch it encounters;
    /// this gives callers validating a resume spec (e.g. a SoC builder
    /// handed a snapshot from a different configuration) the full diff up
    /// front so the error names what actually differs.
    pub fn roster_mismatch(&self, snapshot: &Snapshot) -> Option<String> {
        let j = snapshot.json();
        let doc_names = |key: &str| -> Vec<String> {
            j.get(key)
                .and_then(Json::as_arr)
                .map(|a| {
                    a.iter()
                        .map(|e| {
                            e.get("name")
                                .and_then(Json::as_str)
                                .unwrap_or("?")
                                .to_string()
                        })
                        .collect()
                })
                .unwrap_or_default()
        };
        fn diff(what: &str, doc: &[String], live: &[&str], out: &mut Vec<String>) {
            if doc.len() != live.len() {
                out.push(format!(
                    "{what} count: snapshot has {}, simulator has {}",
                    doc.len(),
                    live.len()
                ));
            }
            for (i, (d, l)) in doc.iter().zip(live).enumerate() {
                if d != l {
                    out.push(format!(
                        "{what} {i}: snapshot has {d:?}, simulator has {l:?}"
                    ));
                }
            }
        }
        let mut diffs = Vec::new();
        let comps: Vec<&str> = self.comps.iter().map(|c| c.name.as_str()).collect();
        diff("component", &doc_names("components"), &comps, &mut diffs);
        let sigs: Vec<&str> = self.st.signals.iter().map(|s| s.name()).collect();
        diff("signal", &doc_names("signals"), &sigs, &mut diffs);
        let fifos: Vec<&str> = self.st.fifos.iter().map(|f| f.name()).collect();
        diff("fifo", &doc_names("fifos"), &fifos, &mut diffs);
        let clocks: Vec<&str> = self.st.clocks.iter().map(|c| c.name.as_str()).collect();
        diff("clock", &doc_names("clocks"), &clocks, &mut diffs);
        if diffs.is_empty() {
            None
        } else {
            Some(diffs.join("; "))
        }
    }

    /// FNV-1a (64-bit) fingerprint of the canonical snapshot document.
    ///
    /// The snapshot rendering is streamed byte-by-byte into the hash state
    /// — no string is materialized — so this is cheap enough to call every
    /// slice. Two simulators with equal hashes at the same slice have
    /// bit-identical dynamic state (time, queue order, channels, component
    /// state); sharded runs hash every shard at every horizon so a
    /// parallel-vs-serial divergence pinpoints the first bad slice.
    ///
    /// Same legality rules as [`Simulator::snapshot`]: only between run
    /// slices, and every component must implement `Component::snapshot`.
    pub fn state_hash(&mut self) -> SimResult<u64> {
        Ok(self.snapshot()?.json().fnv1a64())
    }

    /// Restore a [`Snapshot`] into this freshly built simulator. The
    /// simulator must have the same static shape (components, channels,
    /// clocks — by name and order) as the one that produced the snapshot;
    /// configuration parameters may differ, which is what warm-fork sweeps
    /// exploit.
    ///
    /// After a successful restore the simulator behaves exactly as the
    /// original did at snapshot time: `Start` is *not* re-delivered (all
    /// subscriptions are part of the snapshot), and a subsequent `run*`
    /// continues the deterministic `(time, seq)` dispatch order. On error
    /// the simulator is partially restored and must be discarded.
    pub fn restore(&mut self, snapshot: &Snapshot) -> SimResult<()> {
        if self.started {
            return Err(snap::err(
                "restore requires a freshly built simulator (run not started)",
            ));
        }
        let j = snapshot.json();
        match j.get("schema").and_then(Json::as_str) {
            Some(snap::SNAPSHOT_SCHEMA) => {}
            other => {
                return Err(snap::err(format!(
                    "snapshot schema mismatch: expected {}, found {other:?}",
                    snap::SNAPSHOT_SCHEMA
                )))
            }
        }

        let components = snap::arr_field(j, "components")?;
        if components.len() != self.comps.len() {
            return Err(snap::err(format!(
                "snapshot has {} components, simulator has {}",
                components.len(),
                self.comps.len()
            )));
        }
        for (slot, cj) in self.comps.iter_mut().zip(components) {
            let name = snap::str_field(cj, "name")?;
            if name != slot.name {
                return Err(snap::err(format!(
                    "component name mismatch: simulator has {:?}, snapshot has {name:?}",
                    slot.name
                )));
            }
            let comp = slot
                .comp
                .as_mut()
                .ok_or_else(|| snap::err(format!("component {name:?} is mid-dispatch")))?;
            comp.restore(snap::field(cj, "state")?)
                .map_err(|e| e.in_component(name))?;
        }

        let signals = snap::arr_field(j, "signals")?;
        if signals.len() != self.st.signals.len() {
            return Err(snap::err(format!(
                "snapshot has {} signals, simulator has {}",
                signals.len(),
                self.st.signals.len()
            )));
        }
        for (i, sj) in signals.iter().enumerate() {
            let name = snap::str_field(sj, "name")?;
            if name != self.st.signals[i].name() {
                return Err(snap::err(format!(
                    "signal {i} name mismatch: simulator has {:?}, snapshot has {name:?}",
                    self.st.signals[i].name()
                )));
            }
            signal_restore(i, self.st.signals[i].as_mut(), sj)?;
        }

        let fifos = snap::arr_field(j, "fifos")?;
        if fifos.len() != self.st.fifos.len() {
            return Err(snap::err(format!(
                "snapshot has {} fifos, simulator has {}",
                fifos.len(),
                self.st.fifos.len()
            )));
        }
        for (i, fj) in fifos.iter().enumerate() {
            let name = snap::str_field(fj, "name")?;
            if name != self.st.fifos[i].name() {
                return Err(snap::err(format!(
                    "fifo {i} name mismatch: simulator has {:?}, snapshot has {name:?}",
                    self.st.fifos[i].name()
                )));
            }
            fifo_restore(i, self.st.fifos[i].as_mut(), fj)?;
        }

        self.restore_clocks_from(j)?;
        self.restore_queue_from(j)?;
        self.restore_globals_from(j)?;

        // Start must never re-fire: the snapshot already contains every
        // subscription and timer Start handlers created.
        self.started = true;
        self.register_capture(snapshot.state_hash());
        Ok(())
    }

    /// Restore the clock array from a full or delta document (clocks are
    /// always carried in full: their state is a handful of scalars).
    fn restore_clocks_from(&mut self, j: &Json) -> SimResult<()> {
        let clocks = snap::arr_field(j, "clocks")?;
        if clocks.len() != self.st.clocks.len() {
            return Err(snap::err(format!(
                "snapshot has {} clocks, simulator has {}",
                clocks.len(),
                self.st.clocks.len()
            )));
        }
        for (c, cj) in self.st.clocks.iter_mut().zip(clocks) {
            let name = snap::str_field(cj, "name")?;
            if name != c.name {
                return Err(snap::err(format!(
                    "clock name mismatch: simulator has {:?}, snapshot has {name:?}",
                    c.name
                )));
            }
            c.started = snap::bool_field(cj, "started")?;
            c.pos_edges = snap::u64_field(cj, "pos_edges")?;
            c.armed = snap::bool_field(cj, "armed")?;
            c.next_time = SimTime(snap::u64_field(cj, "next_time")?);
            c.next_seq = snap::u64_field(cj, "next_seq")?;
            c.next_edge = edge_of(snap::str_field(cj, "next_edge")?)?;
            c.pos_subs = snap::usize_list(cj, "pos_subs")?;
            c.neg_subs = snap::usize_list(cj, "neg_subs")?;
        }
        Ok(())
    }

    /// Rebuild the timed queue and the cancellation set from a document.
    /// Existing entries are dropped first (a no-op on a fresh simulator).
    ///
    /// Entries are re-inserted with their *original* sequence numbers,
    /// front-to-back, so the wheel (or the legacy heap) rebuilds the
    /// identical `(time, seq)` dispatch order.
    fn restore_queue_from(&mut self, j: &Json) -> SimResult<()> {
        self.st.queue.clear();
        for ej in snap::arr_field(j, "queue")? {
            let target = snap::u64_field(ej, "target")? as ComponentId;
            let source = match snap::field(ej, "source")? {
                Json::Null => None,
                s => Some(
                    crate::json::ju64_of(s)
                        .ok_or_else(|| snap::err("queue entry source is not a u64"))?
                        as ComponentId,
                ),
            };
            self.st.queue.push(TimedEntry {
                time: SimTime(snap::u64_field(ej, "t")?),
                seq: snap::u64_field(ej, "seq")?,
                delivery: Delivery {
                    target,
                    msg: Msg {
                        source,
                        kind: msg_kind_of(snap::field(ej, "kind")?)?,
                    },
                    background: snap::bool_field(ej, "background")?,
                },
            });
        }
        self.st.canceled = snap::u64_list(j, "canceled")?.into_iter().collect();
        Ok(())
    }

    /// Restore tracer, recorder, and the scalar globals from a document.
    /// The process-local snapshot-size counters survive: they are not part
    /// of the serialized metrics (see [`KernelMetrics`]).
    fn restore_globals_from(&mut self, j: &Json) -> SimResult<()> {
        // Delta documents elide an epoch-stable tracer/recorder with an
        // "unchanged" marker: the parent-hash check that guards every
        // delta apply proves the live copy already equals the child's, so
        // the marker means "leave it alone", never "missing".
        let tj = snap::field(j, "tracer")?;
        if !snap::is_unchanged_mark(tj) {
            match (tj, self.st.tracer.as_mut()) {
                (Json::Null, None) => {}
                (Json::Null, Some(_)) => {
                    return Err(snap::err(
                        "simulator has a VCD tracer but the snapshot does not",
                    ))
                }
                (_, None) => {
                    return Err(snap::err(
                        "snapshot has a VCD tracer but the simulator does not",
                    ))
                }
                (t, Some(tracer)) => tracer.restore_json(t)?,
            }
        }
        let rj = snap::field(j, "recorder")?;
        if !snap::is_unchanged_mark(rj) {
            self.st.recorder.restore_json(rj)?;
        }

        self.st.now = SimTime(snap::u64_field(j, "now")?);
        self.st.seq = snap::u64_field(j, "seq")?;
        self.st.obligations = snap::u64_field(j, "obligations")?;
        self.st.delta_limit = snap::u64_field(j, "delta_limit")?;
        let keep = (
            self.st.metrics.snapshot_full_bytes,
            self.st.metrics.snapshot_delta_bytes,
            self.st.metrics.snapshot_dirty_components,
        );
        self.st.metrics = metrics_of(snap::field(j, "metrics")?)?;
        (
            self.st.metrics.snapshot_full_bytes,
            self.st.metrics.snapshot_delta_bytes,
            self.st.metrics.snapshot_dirty_components,
        ) = keep;
        Ok(())
    }

    /// Drop any in-flight work left by an errored run so a rewound state is
    /// clean: pending delta deliveries, unapplied signal updates, a pending
    /// stop/error. Everything here is rebuilt from the document or simply
    /// must not survive the rewind.
    fn clear_transients(&mut self) {
        self.st.next_delta.clear();
        self.st.update_requests.clear();
        self.st.update_scratch.clear();
        self.runnable.clear();
        self.st.stop = false;
        self.st.pending_error = None;
    }

    /// Reset this *live* simulator back to `parent` — an earlier capture of
    /// this same simulator — restoring only what changed since.
    ///
    /// This is the copy-on-write warm fork: components, signals, and FIFOs
    /// untouched since the parent capture are still bit-identical to the
    /// document and are skipped wholesale; touched ones are restored through
    /// [`Component::restore_live`], which may itself exploit the lineage
    /// (epoch-skip heavy payloads). Clocks, the timed queue, and the scalar
    /// globals are always restored — they are small and always move.
    ///
    /// `parent` must have been captured *on this simulator* (by `snapshot`,
    /// `restore`, or a previous `rewind`) and still be remembered; otherwise
    /// a typed [`SimErrorKind::SnapshotChain`] error is returned and the
    /// simulator is left untouched — callers fall back to a cold rebuild.
    /// After a successful rewind, captures taken on the abandoned branch are
    /// forgotten (they are no longer ancestors of the live state).
    ///
    /// On any other error the simulator is partially restored and must be
    /// discarded, exactly like [`Simulator::restore`].
    pub fn rewind(&mut self, parent: &Snapshot) -> SimResult<()> {
        if !self.started {
            return Err(snap::err(
                "rewind requires a live (started) simulator; use restore on a fresh one",
            ));
        }
        let phash = parent.state_hash();
        let Some(pg) = self.captured_gen(phash) else {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                format!(
                    "rewind parent {phash:016x} was not captured on this simulator \
                     (or fell out of the {CAPTURED_CAP}-entry capture window)"
                ),
            ));
        };
        let j = parent.json();

        let components = snap::arr_field(j, "components")?;
        if components.len() != self.comps.len() {
            return Err(snap::err(format!(
                "snapshot has {} components, simulator has {}",
                components.len(),
                self.comps.len()
            )));
        }
        let mut dirty: u64 = 0;
        for (slot, cj) in self.comps.iter_mut().zip(components) {
            if slot.touched_gen <= pg {
                continue; // untouched since the parent capture
            }
            let name = snap::str_field(cj, "name")?;
            if name != slot.name {
                return Err(snap::err(format!(
                    "component name mismatch: simulator has {:?}, snapshot has {name:?}",
                    slot.name
                )));
            }
            let comp = slot
                .comp
                .as_mut()
                .ok_or_else(|| snap::err(format!("component {name:?} is mid-dispatch")))?;
            comp.restore_live(snap::field(cj, "state")?)
                .map_err(|e| e.in_component(name))?;
            dirty += 1;
        }

        let signals = snap::arr_field(j, "signals")?;
        if signals.len() != self.st.signals.len() {
            return Err(snap::err(format!(
                "snapshot has {} signals, simulator has {}",
                signals.len(),
                self.st.signals.len()
            )));
        }
        for (i, sj) in signals.iter().enumerate() {
            if self.st.signal_touched[i] <= pg {
                continue;
            }
            signal_restore(i, self.st.signals[i].as_mut(), sj)?;
        }

        let fifos = snap::arr_field(j, "fifos")?;
        if fifos.len() != self.st.fifos.len() {
            return Err(snap::err(format!(
                "snapshot has {} fifos, simulator has {}",
                fifos.len(),
                self.st.fifos.len()
            )));
        }
        for (i, fj) in fifos.iter().enumerate() {
            if self.st.fifo_touched[i] <= pg {
                continue;
            }
            fifo_restore(i, self.st.fifos[i].as_mut(), fj)?;
        }

        self.restore_clocks_from(j)?;
        self.restore_queue_from(j)?;
        self.restore_globals_from(j)?;
        self.clear_transients();
        self.st.metrics.snapshot_dirty_components = dirty;

        // Captures taken after the parent belong to the branch being
        // abandoned; a future delta against them would silently compare
        // stamps across diverged timelines, so forget them.
        self.captured.retain(|c| c.gen <= pg);
        self.register_capture(phash);
        Ok(())
    }

    /// Capture an incremental snapshot against `parent`: a
    /// [`SnapshotDelta`] carrying only the components, signals, and FIFOs
    /// that changed since the parent capture (plus the always-moving queue,
    /// clocks, and globals), chained to the parent by its state hash.
    ///
    /// Serialization cost is dominated by the full-document pass (the child
    /// hash *is* the full snapshot hash, so chains validate against
    /// `state_hash` exactly); the win is the document size and, on the
    /// apply side, `restore_delta` patching a live simulator in place.
    pub fn snapshot_delta(&mut self, parent: &Snapshot) -> SimResult<SnapshotDelta> {
        self.snapshot_delta_from(parent.state_hash())
    }

    /// [`Simulator::snapshot_delta`] by parent hash alone — enough to chain
    /// delta-on-delta without keeping parent documents alive.
    pub fn snapshot_delta_from(&mut self, parent_hash: u64) -> SimResult<SnapshotDelta> {
        let Some(parent) = self.captured_entry(parent_hash) else {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                format!(
                    "delta parent {parent_hash:016x} was not captured on this simulator \
                     (or fell out of the {CAPTURED_CAP}-entry capture window)"
                ),
            ));
        };
        let pg = parent.gen;
        // Dirty masks must be read before `snapshot` advances the
        // generation (capturing must not make anything look clean).
        let dirty_comps: Vec<bool> = self.comps.iter().map(|s| s.touched_gen > pg).collect();
        let dirty_signals: Vec<bool> = self.st.signal_touched.iter().map(|&g| g > pg).collect();
        let dirty_fifos: Vec<bool> = self.st.fifo_touched.iter().map(|&g| g > pg).collect();
        // Epoch-stable recorder/tracer globals are elided: restore_delta
        // only ever applies onto a live state proven (by parent-hash check)
        // to equal the parent, so "unchanged since the parent capture in
        // the producer" implies the consumer's live copy already equals the
        // child's. The child hash is computed from the *full* document, so
        // eliding here never weakens chain validation.
        let recorder_unchanged = self.st.recorder.epoch() == parent.recorder_epoch;
        let tracer_unchanged =
            self.st.tracer.as_ref().map_or(0, VcdTracer::epoch) == parent.tracer_epoch;

        let full = self.snapshot()?;
        let j = full.json();
        let take = |key: &str| -> SimResult<Json> { Ok(snap::field(j, key)?.clone()) };
        // Dirty entries only, each tagged with its slot index so the apply
        // side can patch in place.
        let pick = |key: &str, mask: &[bool]| -> SimResult<Json> {
            let arr = snap::arr_field(j, key)?;
            let mut out = Vec::new();
            for (i, e) in arr.iter().enumerate() {
                if mask.get(i).copied().unwrap_or(true) {
                    out.push(Json::obj().with("i", ju64(i as u64)).with("d", e.clone()));
                }
            }
            Ok(Json::Arr(out))
        };

        let state = Json::obj()
            .with("schema", Json::from(snap::DELTA_SCHEMA))
            .with("parent", ju64(parent_hash))
            .with("child", ju64(full.state_hash()))
            .with("now", take("now")?)
            .with("seq", take("seq")?)
            .with("obligations", take("obligations")?)
            .with("delta_limit", take("delta_limit")?)
            .with("metrics", take("metrics")?)
            .with("canceled", take("canceled")?)
            .with("queue", take("queue")?)
            .with("clocks", take("clocks")?)
            .with("signals", pick("signals", &dirty_signals)?)
            .with("fifos", pick("fifos", &dirty_fifos)?)
            .with(
                "tracer",
                if tracer_unchanged {
                    snap::unchanged_mark()
                } else {
                    take("tracer")?
                },
            )
            .with(
                "recorder",
                if recorder_unchanged {
                    snap::unchanged_mark()
                } else {
                    take("recorder")?
                },
            )
            .with("components", pick("components", &dirty_comps)?);
        let delta = SnapshotDelta::from_state(state)?;
        self.st.metrics.snapshot_delta_bytes = delta.byte_len();
        self.st.metrics.snapshot_dirty_components =
            dirty_comps.iter().filter(|&&d| d).count() as u64;
        Ok(delta)
    }

    /// Apply an incremental snapshot to this *live* simulator, patching it
    /// forward from the delta's parent state to its child state.
    ///
    /// The simulator must be standing exactly at the parent document — at a
    /// capture point whose hash equals [`SnapshotDelta::parent_hash`];
    /// running since the last capture invalidates that (the state is no
    /// longer provably the parent). A mismatch is a typed
    /// [`SimErrorKind::SnapshotChain`] error naming both hashes, and leaves
    /// the simulator untouched. After a successful apply, `state_hash`
    /// equals [`SnapshotDelta::child_hash`].
    pub fn restore_delta(&mut self, delta: &SnapshotDelta) -> SimResult<()> {
        if !self.started {
            return Err(snap::err(
                "restore_delta requires a live (started) simulator; restore the chain's \
                 base snapshot first",
            ));
        }
        let Some(cur) = self.current_doc_hash else {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                "restore_delta needs the simulator standing exactly at a captured document \
                 (snapshot, restore, or rewind first; running since invalidates it)",
            ));
        };
        if cur != delta.parent_hash() {
            return Err(SimError::new(
                SimErrorKind::SnapshotChain,
                format!(
                    "delta parent hash {:016x} does not match the live state {:016x}",
                    delta.parent_hash(),
                    cur
                ),
            ));
        }
        let j = delta.json();

        let mut dirty: u64 = 0;
        for ej in snap::arr_field(j, "components")? {
            let i = snap::usize_field(ej, "i")?;
            let cj = snap::field(ej, "d")?;
            let gen = self.st.gen;
            let slot = self
                .comps
                .get_mut(i)
                .ok_or_else(|| snap::err(format!("delta component index {i} out of range")))?;
            let name = snap::str_field(cj, "name")?;
            if name != slot.name {
                return Err(snap::err(format!(
                    "component name mismatch: simulator has {:?}, delta has {name:?}",
                    slot.name
                )));
            }
            let comp = slot
                .comp
                .as_mut()
                .ok_or_else(|| snap::err(format!("component {name:?} is mid-dispatch")))?;
            comp.restore_live(snap::field(cj, "state")?)
                .map_err(|e| e.in_component(name))?;
            // The patched slot now differs from every pre-delta capture.
            slot.touched_gen = gen;
            dirty += 1;
        }

        for ej in snap::arr_field(j, "signals")? {
            let i = snap::usize_field(ej, "i")?;
            if i >= self.st.signals.len() {
                return Err(snap::err(format!("delta signal index {i} out of range")));
            }
            signal_restore(i, self.st.signals[i].as_mut(), snap::field(ej, "d")?)?;
            self.st.signal_touched[i] = self.st.gen;
        }

        for ej in snap::arr_field(j, "fifos")? {
            let i = snap::usize_field(ej, "i")?;
            if i >= self.st.fifos.len() {
                return Err(snap::err(format!("delta fifo index {i} out of range")));
            }
            fifo_restore(i, self.st.fifos[i].as_mut(), snap::field(ej, "d")?)?;
            self.st.fifo_touched[i] = self.st.gen;
        }

        self.restore_clocks_from(j)?;
        self.restore_queue_from(j)?;
        self.restore_globals_from(j)?;
        self.clear_transients();
        self.st.metrics.snapshot_dirty_components = dirty;
        self.register_capture(delta.child_hash());
        Ok(())
    }

    /// The first error raised during this run: a typed `Api::raise` if one
    /// happened, else the first `Severity::Error` report logged at or after
    /// `mark`, resolved to a component name.
    fn take_run_error(&mut self, mark: usize) -> Option<SimError> {
        if let Some((src, mut e)) = self.st.pending_error.take() {
            if e.component.is_none() {
                if let Some(id) = src {
                    e = e.in_component(&self.comps[id].name);
                }
            }
            return Some(e);
        }
        let r = self
            .st
            .reporter
            .entries()
            .get(mark..)?
            .iter()
            .find(|r| r.severity == Severity::Error)?;
        let mut e = SimError::new(SimErrorKind::Report, r.text.clone()).at(r.time);
        if let Some(id) = r.source {
            e = e.in_component(&self.comps[id].name);
        }
        Some(e)
    }

    /// Convert a healthy stop into `Ok`, unless errors were raised during
    /// this run — those escalate.
    fn finish(&mut self, reason: StopReason, mark: usize) -> SimResult<StopReason> {
        match self.take_run_error(mark) {
            None => Ok(reason),
            Some(e) => Err(e),
        }
    }

    fn run_inner(&mut self, horizon: Option<SimTime>) -> SimResult<StopReason> {
        self.ensure_started();
        // Running diverges the live state from whatever document it last
        // equalled, so delta application is no longer legal until the next
        // capture point.
        self.current_doc_hash = None;
        // Errors logged before this run (e.g. in an earlier run_until slice
        // that already reported them) do not re-escalate.
        let mark = self.st.reporter.entries().len();
        loop {
            // Delta loop at the current time. The runnable buffer and
            // `next_delta` ping-pong via swap: dispatching drains one while
            // components fill the other, and both keep their capacity, so a
            // steady-state delta cycle performs zero allocations.
            let mut deltas_here: u64 = 0;
            while !self.st.next_delta.is_empty() || !self.st.update_requests.is_empty() {
                let mut runnable = std::mem::take(&mut self.runnable);
                std::mem::swap(&mut runnable, &mut self.st.next_delta);
                let mut stopped = false;
                for d in runnable.drain(..) {
                    self.dispatch(d);
                    if self.st.stop {
                        self.st.stop = false;
                        stopped = true;
                        // Breaking drops the Drain, which discards the rest
                        // of this delta's deliveries — the documented
                        // semantics of Api::stop.
                        break;
                    }
                }
                self.runnable = runnable;
                if stopped {
                    return self.finish(StopReason::Stopped, mark);
                }
                self.st.apply_updates();
                deltas_here += 1;
                self.st.metrics.delta_cycles += 1;
                if deltas_here > self.st.delta_limit {
                    let mut e = SimError::new(
                        SimErrorKind::DeltaOverflow,
                        format!(
                            "exceeded {} delta cycles in one timestep (zero-delay oscillation)",
                            self.st.delta_limit
                        ),
                    )
                    .at(self.st.now);
                    if let Some(cause) = self.take_run_error(mark) {
                        e = e.caused_by(cause);
                    }
                    return Err(e);
                }
            }
            if deltas_here > 0 {
                self.st.metrics.timesteps += 1;
                self.st.metrics.max_deltas_in_step =
                    self.st.metrics.max_deltas_in_step.max(deltas_here);
                // Kernel-phase instrumentation: one counter sample per
                // *active* timestep (never per delta), so the tracing-off
                // cost is a single branch per timestep.
                self.st.observe(
                    KERNEL_SOURCE,
                    0,
                    TraceCategory::Kernel,
                    "deltas_in_step",
                    TraceEventKind::Counter,
                    deltas_here,
                );
            }

            // Advance time. Background events (free-running clock ticks) do
            // not keep an unbounded run() alive, but under an explicit
            // horizon they still advance so synchronous observers see every
            // edge up to the horizon.
            let pending = self.st.next_pending_time();
            if !self.st.queue.has_foreground() {
                let background_within_horizon = match (horizon, pending) {
                    (Some(h), Some(t)) => t <= h,
                    _ => false,
                };
                if !background_within_horizon {
                    self.st.queue.debug_assert_foreground_consistent();
                    if let Some(h) = horizon {
                        if pending.is_some() {
                            // More work exists beyond the horizon.
                            self.st.now = h;
                            return self.finish(StopReason::TimeLimit, mark);
                        }
                    }
                    if self.st.obligations > 0 {
                        if let (Some(h), true) = (horizon, self.defer_deadlock) {
                            // Partitioned runs: the blocked transaction may
                            // complete with a cross-shard reply injected
                            // before the next slice, so quiescing with
                            // obligations under a horizon is not yet a
                            // deadlock. The coordinator checks obligations
                            // once all shards reach the end horizon.
                            self.st.now = h;
                            return self.finish(StopReason::TimeLimit, mark);
                        }
                        let mut e = SimError::deadlock(self.st.obligations).at(self.st.now);
                        if let Some(cause) = self.take_run_error(mark) {
                            e = e.caused_by(cause);
                        }
                        return Err(e);
                    }
                    if let Some(h) = horizon {
                        self.st.now = h;
                    }
                    return self.finish(StopReason::Quiescent, mark);
                }
            }
            let Some(next_t) = pending else {
                // has_foreground() said work remains but nothing is
                // scheduled: the foreground accounting broke. Surface it
                // rather than panicking.
                return Err(SimError::new(
                    SimErrorKind::Internal,
                    "foreground counter positive with an empty event queue",
                )
                .at(self.st.now));
            };
            if let Some(h) = horizon {
                if next_t > h {
                    self.st.now = h;
                    return self.finish(StopReason::TimeLimit, mark);
                }
            }
            debug_assert!(next_t >= self.st.now, "time must be monotone");
            self.st.now = next_t;
            self.st.observe(
                KERNEL_SOURCE,
                0,
                TraceCategory::Kernel,
                "time_advance",
                TraceEventKind::Instant,
                next_t.as_fs(),
            );
            self.st.drain_events_at(next_t);
        }
    }
}

/// Shared cold failure path for [`Simulator::get`]/[`Simulator::get_mut`]:
/// the component is mid-dispatch or of a different concrete type. Both are
/// host-program bugs, so this is the one sanctioned panic for them.
#[cold]
fn component_access_failure<T>(id: ComponentId, name: &str) -> ! {
    panic!(
        "component {id} ({name}) is unavailable or not a {}",
        std::any::type_name::<T>()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::testing::{ok, some};

    /// A component that records (time, tag) of every timer it receives.
    struct Recorder {
        fired: Vec<(SimTime, u64)>,
        plan: Vec<(SimDuration, u64)>,
    }

    impl Component for Recorder {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match msg.kind {
                MsgKind::Start => {
                    for &(d, tag) in &self.plan {
                        api.timer_in(d, tag);
                    }
                }
                MsgKind::Timer(tag) => self.fired.push((api.now(), tag)),
                _ => {}
            }
        }
    }

    #[test]
    fn timers_fire_in_time_order() {
        let mut sim = Simulator::new();
        let id = sim.add(
            "rec",
            Recorder {
                fired: vec![],
                plan: vec![
                    (SimDuration::ns(30), 3),
                    (SimDuration::ns(10), 1),
                    (SimDuration::ns(20), 2),
                ],
            },
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let rec = sim.get::<Recorder>(id);
        assert_eq!(
            rec.fired,
            vec![
                (SimTime::ZERO + SimDuration::ns(10), 1),
                (SimTime::ZERO + SimDuration::ns(20), 2),
                (SimTime::ZERO + SimDuration::ns(30), 3),
            ]
        );
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(30));
    }

    #[test]
    fn same_time_timers_fire_in_scheduling_order() {
        let mut sim = Simulator::new();
        let id = sim.add(
            "rec",
            Recorder {
                fired: vec![],
                plan: (0..20).map(|i| (SimDuration::ns(5), i)).collect(),
            },
        );
        ok(sim.run());
        let rec = sim.get::<Recorder>(id);
        let tags: Vec<u64> = rec.fired.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn signal_write_visible_next_delta() {
        let mut sim = Simulator::new();
        let sig = sim.add_signal("s", 0u32);
        let observed = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let obs2 = observed.clone();
        // Writer: writes 7 at Start; reads back immediately (must still be 0)
        // then after a delta (must be 7).
        sim.add(
            "writer",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => {
                    api.write(sig, 7u32);
                    obs2.borrow_mut().push(("eval", api.read(sig)));
                    api.timer(Delay::Delta, 0);
                }
                MsgKind::Timer(_) => {
                    obs2.borrow_mut().push(("after", api.read(sig)));
                }
                _ => {}
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(*observed.borrow(), vec![("eval", 0), ("after", 7)]);
        assert_eq!(sim.signal_value(sig), 7);
        assert_eq!(sim.signal_change_count(sig), 1);
    }

    #[test]
    fn signal_subscribers_notified_only_on_change() {
        let mut sim = Simulator::new();
        let sig = sim.add_signal("s", false);
        let count = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let c2 = count.clone();
        sim.add(
            "listener",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.subscribe_signal(sig),
                MsgKind::SignalChanged(_) => c2.set(c2.get() + 1),
                _ => {}
            }),
        );
        sim.add(
            "driver",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => {
                    api.write(sig, false); // no change
                    api.timer_in(SimDuration::ns(1), 0);
                    api.timer_in(SimDuration::ns(2), 1);
                }
                MsgKind::Timer(0) => api.write(sig, true), // change
                MsgKind::Timer(1) => api.write(sig, true), // no change
                _ => {}
            }),
        );
        ok(sim.run());
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn user_messages_round_trip_between_components() {
        #[derive(Debug, PartialEq)]
        struct Ping(u32);
        #[derive(Debug, PartialEq)]
        struct Pong(u32);

        struct Responder;
        impl Component for Responder {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                if let Ok(Ping(v)) = msg.user::<Ping>() {
                    let src = 0; // requester id is 0 by construction
                    api.send_in(src, Pong(v * 2), SimDuration::ns(5));
                }
            }
        }

        struct Requester {
            got: Option<(SimTime, u32)>,
            responder: ComponentId,
        }
        impl Component for Requester {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match &msg.kind {
                    MsgKind::Start => {
                        let r = self.responder;
                        api.send_in(r, Ping(21), SimDuration::ns(5));
                    }
                    _ => {
                        if let Ok(Pong(v)) = msg.user::<Pong>() {
                            self.got = Some((api.now(), v));
                        }
                    }
                }
            }
        }

        let mut sim = Simulator::new();
        let req = sim.add(
            "req",
            Requester {
                got: None,
                responder: 1,
            },
        );
        sim.add("resp", Responder);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let r = sim.get::<Requester>(req);
        assert_eq!(r.got, Some((SimTime::ZERO + SimDuration::ns(10), 42)));
    }

    #[test]
    fn clock_edges_reach_subscribers() {
        let mut sim = Simulator::new();
        let clk = sim.add_clock_mhz("clk", 100); // 10 ns period
        let edges = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let e2 = edges.clone();
        sim.add(
            "sync",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => {
                    api.subscribe_clock(clk, Edge::Pos);
                    api.subscribe_clock(clk, Edge::Neg);
                }
                MsgKind::ClockEdge(_, e) => e2.borrow_mut().push((api.now().as_fs(), e)),
                _ => {}
            }),
        );
        ok(sim.run_until(SimTime::ZERO + SimDuration::ns(25)));
        let edges = edges.borrow();
        // Posedges at 0, 10, 20 ns; negedges at 5, 15, 25 ns.
        assert_eq!(
            *edges,
            vec![
                (0, Edge::Pos),
                (5_000_000, Edge::Neg),
                (10_000_000, Edge::Pos),
                (15_000_000, Edge::Neg),
                (20_000_000, Edge::Pos),
                (25_000_000, Edge::Neg),
            ]
        );
        assert!(sim.clock_posedges(clk) >= 3);
    }

    #[test]
    fn unsubscribed_clock_does_not_prevent_quiescence() {
        let mut sim = Simulator::new();
        let _clk = sim.add_clock_mhz("clk", 100);
        sim.add("idle", crate::component::NullComponent);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn clock_only_activity_counts_as_background() {
        // A subscriber that does nothing on edges: after its Start, only
        // background clock ticks remain, so run() terminates quiescent.
        let mut sim = Simulator::new();
        let clk = sim.add_clock_mhz("clk", 100);
        sim.add(
            "lazy",
            FnComponent::new(move |api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.subscribe_clock(clk, Edge::Pos);
                }
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    }

    #[test]
    fn deadlock_detected_via_obligations() {
        let mut sim = Simulator::new();
        sim.add(
            "stuck",
            FnComponent::new(|api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.obligation_begin(); // never fulfilled
                }
            }),
        );
        let err = sim.run().expect_err("deadlock must surface as an error");
        assert_eq!(err.kind, SimErrorKind::Deadlock { pending: 1 });
        assert_eq!(err.pending_obligations(), Some(1));
        assert_eq!(sim.obligations(), 1);
    }

    #[test]
    fn fulfilled_obligation_is_quiescent() {
        let mut sim = Simulator::new();
        sim.add(
            "fine",
            FnComponent::new(|api, msg| match msg.kind {
                MsgKind::Start => {
                    api.obligation_begin();
                    api.timer_in(SimDuration::ns(3), 0);
                }
                MsgKind::Timer(_) => api.obligation_end(),
                _ => {}
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.obligations(), 0);
    }

    #[test]
    fn stop_interrupts_the_run() {
        let mut sim = Simulator::new();
        sim.add(
            "stopper",
            FnComponent::new(|api, msg| match msg.kind {
                MsgKind::Start => api.timer_in(SimDuration::ns(7), 0),
                MsgKind::Timer(_) => api.stop(),
                _ => {}
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Stopped));
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(7));
    }

    #[test]
    fn run_until_respects_horizon_and_resumes() {
        let mut sim = Simulator::new();
        let id = sim.add(
            "rec",
            Recorder {
                fired: vec![],
                plan: vec![(SimDuration::ns(10), 1), (SimDuration::ns(100), 2)],
            },
        );
        assert_eq!(
            sim.run_until(SimTime::ZERO + SimDuration::ns(50)),
            Ok(StopReason::TimeLimit)
        );
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(50));
        assert_eq!(sim.get::<Recorder>(id).fired.len(), 1);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Recorder>(id).fired.len(), 2);
    }

    #[test]
    fn delta_overflow_detected() {
        // Two components ping-ponging with Delta delay oscillate forever in
        // one timestep.
        struct Ping2 {
            peer: ComponentId,
        }
        impl Component for Ping2 {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match msg.kind {
                    MsgKind::Start | MsgKind::User(_) => {
                        let p = self.peer;
                        api.send(p, (), Delay::Delta);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        sim.set_delta_limit(500);
        sim.add("a", Ping2 { peer: 1 });
        sim.add("b", Ping2 { peer: 0 });
        let err = sim.run().expect_err("oscillation must surface");
        assert_eq!(err.kind, SimErrorKind::DeltaOverflow);
    }

    #[test]
    fn fifo_notifications_flow() {
        let mut sim = Simulator::new();
        let fifo = sim.add_fifo::<u32>("f", 2);
        let got = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let g2 = got.clone();
        sim.add(
            "consumer",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.subscribe_fifo(fifo),
                MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                    while let Some(v) = api.fifo_try_get(fifo) {
                        g2.borrow_mut().push(v);
                    }
                }
                _ => {}
            }),
        );
        sim.add(
            "producer",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => {
                    for i in 0..3 {
                        api.timer_in(SimDuration::ns(10 * (i + 1)), i);
                    }
                }
                MsgKind::Timer(tag) => {
                    assert!(api.fifo_try_put(fifo, tag as u32).is_ok(), "fifo space");
                }
                _ => {}
            }),
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(*got.borrow(), vec![0, 1, 2]);
    }

    #[test]
    fn metrics_are_populated() {
        let mut sim = Simulator::new();
        sim.add(
            "busy",
            FnComponent::new(|api, msg| match msg.kind {
                MsgKind::Start => api.timer_in(SimDuration::ns(1), 0),
                MsgKind::Timer(t) if t < 5 => api.timer_in(SimDuration::ns(1), t + 1),
                _ => {}
            }),
        );
        ok(sim.run());
        let m = sim.metrics();
        assert!(m.dispatched >= 7); // Start + 6 timers
        assert!(m.timesteps >= 6);
        assert!(m.delta_cycles >= m.timesteps);
        assert!(m.max_deltas_in_step >= 1);
    }

    #[test]
    fn post_injects_external_stimulus() {
        let mut sim = Simulator::new();
        let seen = std::rc::Rc::new(std::cell::Cell::new(0u32));
        let s2 = seen.clone();
        let id = sim.add(
            "sink",
            FnComponent::new(move |_api, msg| {
                if let Some(v) = msg.user_ref::<u32>() {
                    s2.set(*v);
                }
            }),
        );
        sim.post(id, 99u32, Delay::ns(4));
        ok(sim.run());
        assert_eq!(seen.get(), 99);
    }

    #[test]
    fn component_names_and_counts() {
        let mut sim = Simulator::new();
        let a = sim.add("alpha", crate::component::NullComponent);
        let b = sim.add("beta", crate::component::NullComponent);
        assert_eq!(sim.component_name(a), "alpha");
        assert_eq!(sim.component_name(b), "beta");
        assert_eq!(sim.component_count(), 2);
        assert!(sim.try_get::<Recorder>(a).is_none());
    }

    #[test]
    fn cancelled_timer_never_fires() {
        struct Watchdog {
            handle: Option<TimerHandle>,
            pub watchdog_fired: bool,
        }
        impl Component for Watchdog {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match msg.kind {
                    MsgKind::Start => {
                        // Arm a watchdog at 100ns, and the "work completes"
                        // timer at 50ns which disarms it.
                        self.handle = Some(api.timer_cancellable(SimDuration::ns(100), 9));
                        api.timer_in(SimDuration::ns(50), 1);
                    }
                    MsgKind::Timer(1) => {
                        let h = some(self.handle.take());
                        api.cancel_timer(h);
                    }
                    MsgKind::Timer(9) => self.watchdog_fired = true,
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add(
            "wd",
            Watchdog {
                handle: None,
                watchdog_fired: false,
            },
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert!(!sim.get::<Watchdog>(id).watchdog_fired);
        // The cancelled event still advanced nothing: quiescence happened
        // when the queue drained at 100ns (entry skipped).
        assert_eq!(sim.now(), SimTime::ZERO + SimDuration::ns(100));
    }

    #[test]
    fn uncancelled_watchdog_fires() {
        struct Wd {
            pub fired: bool,
        }
        impl Component for Wd {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match msg.kind {
                    MsgKind::Start => {
                        let _ = api.timer_cancellable(SimDuration::ns(10), 9);
                    }
                    MsgKind::Timer(9) => self.fired = true,
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add("wd", Wd { fired: false });
        ok(sim.run());
        assert!(sim.get::<Wd>(id).fired);
    }

    #[test]
    fn cancel_after_fire_is_a_noop() {
        struct Wd {
            handle: Option<TimerHandle>,
            pub fires: u32,
        }
        impl Component for Wd {
            fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
                match msg.kind {
                    MsgKind::Start => {
                        self.handle = Some(api.timer_cancellable(SimDuration::ns(10), 9));
                        api.timer_in(SimDuration::ns(50), 1);
                    }
                    MsgKind::Timer(9) => self.fires += 1,
                    MsgKind::Timer(1) => {
                        // Cancels something that already fired.
                        let h = some(self.handle.take());
                        api.cancel_timer(h);
                        api.timer_in(SimDuration::ns(10), 2);
                    }
                    _ => {}
                }
            }
        }
        let mut sim = Simulator::new();
        let id = sim.add(
            "wd",
            Wd {
                handle: None,
                fires: 0,
            },
        );
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Wd>(id).fires, 1);
    }

    #[test]
    fn trace_records_signal_changes() {
        let mut sim = Simulator::new();
        sim.enable_trace();
        let sig = sim.add_signal("data", 0u8);
        sim.trace_signal(sig);
        sim.add(
            "drv",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.timer_in(SimDuration::ns(10), 0),
                MsgKind::Timer(_) => api.write(sig, 0xA5u8),
                _ => {}
            }),
        );
        ok(sim.run());
        let vcd = some(sim.tracer()).render();
        assert!(vcd.contains("$var wire 8 ! data $end"));
        assert!(vcd.contains("b10100101 !"));
    }
}
