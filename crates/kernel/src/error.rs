//! Typed simulation errors.
//!
//! The paper's methodology depends on simulations that *fail informatively*:
//! §5.4(3) exists precisely because a blocking bus plus configuration
//! traffic deadlocks, and the kernel tracks obligations to detect it. This
//! module gives every abnormal outcome a typed shape — [`SimError`] carries
//! a kind, the component that raised it, the simulated time, and a cause
//! chain — so layers above the kernel (bus, fabric, SoC, DSE) can route
//! failures instead of unwinding the whole process.
//!
//! Conversion points:
//!
//! * the kernel itself produces [`SimErrorKind::Deadlock`] and
//!   [`SimErrorKind::DeltaOverflow`] from `run`/`run_until`;
//! * components call `Api::raise` (or log `Severity::Error`) and the
//!   enclosing run converts the first such report into an `Err`;
//! * pure data-structure layers (address maps, schedulers, JSON) return
//!   `SimResult` directly.

use std::fmt;

use crate::time::SimTime;

/// Result alias used throughout the simulation stack.
pub type SimResult<T> = Result<T, SimError>;

/// What class of failure a [`SimError`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimErrorKind {
    /// The run drained all foreground events while split-transaction
    /// obligations were outstanding — the blocking-bus deadlock of the
    /// paper's §5.4, limitation 3.
    Deadlock {
        /// Outstanding obligations at the moment of deadlock.
        pending: u64,
    },
    /// The delta-cycle limit was exceeded within one timestep (zero-delay
    /// oscillation between components).
    DeltaOverflow,
    /// A component logged a `Severity::Error` report without a more
    /// specific typed kind.
    Report,
    /// An address decoded to no slave (unmapped access).
    Decode,
    /// A slave answered with a bus-error response, or a bus-level protocol
    /// violation occurred.
    BusError,
    /// A context-configuration load failed or was aborted
    /// mid-reconfiguration.
    ConfigLoad,
    /// The context scheduler's accounting or residency invariants were
    /// violated.
    Scheduler,
    /// Static validation failed (builder specs, address maps, transform
    /// limitations).
    Validation,
    /// A delta-snapshot chain broke: a delta's parent hash does not match
    /// the state it is being applied to, or the parent of a warm rewind is
    /// not a captured ancestor of the live simulator.
    SnapshotChain,
    /// An injected fault fired (poisoned memory range, forced abort).
    Fault,
    /// A kernel-internal invariant failed; the run cannot be trusted.
    Internal,
}

impl SimErrorKind {
    /// Short stable label for messages and JSON records.
    pub fn label(self) -> &'static str {
        match self {
            SimErrorKind::Deadlock { .. } => "deadlock",
            SimErrorKind::DeltaOverflow => "delta-overflow",
            SimErrorKind::Report => "report",
            SimErrorKind::Decode => "decode",
            SimErrorKind::BusError => "bus-error",
            SimErrorKind::ConfigLoad => "config-load",
            SimErrorKind::Scheduler => "scheduler",
            SimErrorKind::Validation => "validation",
            SimErrorKind::SnapshotChain => "snapshot-chain",
            SimErrorKind::Fault => "fault",
            SimErrorKind::Internal => "internal",
        }
    }
}

/// A typed simulation failure: kind + component + simulated time + message,
/// with an optional cause chain.
#[derive(Debug, Clone, PartialEq)]
pub struct SimError {
    /// Failure class.
    pub kind: SimErrorKind,
    /// Name of the component that raised it, when known.
    pub component: Option<String>,
    /// Simulated time at which it was raised.
    pub time: SimTime,
    /// Human-readable description.
    pub message: String,
    /// The failure that led to this one, if any.
    pub cause: Option<Box<SimError>>,
}

impl SimError {
    /// New error at time zero with no component attribution.
    pub fn new(kind: SimErrorKind, message: impl Into<String>) -> Self {
        SimError {
            kind,
            component: None,
            time: SimTime::ZERO,
            message: message.into(),
            cause: None,
        }
    }

    /// A deadlock error carrying the outstanding-obligation count.
    pub fn deadlock(pending: u64) -> Self {
        SimError::new(
            SimErrorKind::Deadlock { pending },
            format!("all events drained with {pending} outstanding obligation(s)"),
        )
    }

    /// Attach the simulated time.
    pub fn at(mut self, time: SimTime) -> Self {
        self.time = time;
        self
    }

    /// Attach the raising component's name.
    pub fn in_component(mut self, name: impl Into<String>) -> Self {
        self.component = Some(name.into());
        self
    }

    /// Attach the underlying failure.
    pub fn caused_by(mut self, cause: SimError) -> Self {
        self.cause = Some(Box::new(cause));
        self
    }

    /// True when this is a deadlock (at any depth of the chain the *root*
    /// classification is what matters, so only `self.kind` is consulted).
    pub fn is_deadlock(&self) -> bool {
        matches!(self.kind, SimErrorKind::Deadlock { .. })
    }

    /// Outstanding obligations when this is a deadlock.
    pub fn pending_obligations(&self) -> Option<u64> {
        match self.kind {
            SimErrorKind::Deadlock { pending } => Some(pending),
            _ => None,
        }
    }

    /// Walk the cause chain, starting at `self`.
    pub fn chain(&self) -> impl Iterator<Item = &SimError> {
        let mut next = Some(self);
        std::iter::from_fn(move || {
            let cur = next?;
            next = cur.cause.as_deref();
            Some(cur)
        })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.time, self.kind.label())?;
        if let Some(c) = &self.component {
            write!(f, " in {c}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(cause) = &self.cause {
            write!(f, " (caused by: {cause})")?;
        }
        Ok(())
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        self.cause
            .as_deref()
            .map(|e| e as &(dyn std::error::Error + 'static))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_time_component_and_chain() {
        let root = SimError::new(SimErrorKind::BusError, "slave replied error")
            .at(SimTime(5_000_000))
            .in_component("mem0");
        let top = SimError::deadlock(2).at(SimTime(9_000_000)).caused_by(root);
        let s = top.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("mem0"), "{s}");
        assert!(s.contains("caused by"), "{s}");
        assert_eq!(top.pending_obligations(), Some(2));
        assert!(top.is_deadlock());
        assert_eq!(top.chain().count(), 2);
    }

    #[test]
    fn builder_methods_compose() {
        let e = SimError::new(SimErrorKind::Decode, "no slave at 0xdead")
            .at(SimTime(42))
            .in_component("bus");
        assert_eq!(e.kind, SimErrorKind::Decode);
        assert_eq!(e.component.as_deref(), Some("bus"));
        assert_eq!(e.time, SimTime(42));
        assert!(e.cause.is_none());
        assert_eq!(e.pending_obligations(), None);
        assert!(!e.is_deadlock());
    }

    #[test]
    fn error_source_walks_chain() {
        use std::error::Error as _;
        let e = SimError::new(SimErrorKind::Fault, "poisoned range")
            .caused_by(SimError::new(SimErrorKind::Internal, "root"));
        let src = e.source();
        assert!(src.is_some());
        assert_eq!(
            e.chain().map(|x| x.kind).collect::<Vec<_>>(),
            vec![SimErrorKind::Fault, SimErrorKind::Internal]
        );
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(SimErrorKind::Deadlock { pending: 1 }.label(), "deadlock");
        assert_eq!(SimErrorKind::Report.label(), "report");
        assert_eq!(SimErrorKind::Validation.label(), "validation");
    }
}
