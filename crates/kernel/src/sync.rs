//! Synchronization primitives: semaphore and mutex components.
//!
//! SystemC ships `sc_semaphore` and `sc_mutex` for modeling shared
//! resources. In this kernel's actor style they are ordinary components:
//! a requester sends [`SemWait`] and receives [`SemGranted`] when a unit
//! becomes available (immediately, or after a [`SemPost`] from another
//! component). Grants are strictly FIFO, which keeps models deterministic
//! and starvation-free.

use std::collections::VecDeque;

use crate::component::Component;
use crate::event::{ComponentId, Delay, Msg, MsgKind};
use crate::kernel::Api;

/// Request one unit of the semaphore. The requester receives
/// [`SemGranted`] with the same `tag` once a unit is available. The
/// requester holds a kernel obligation between wait and grant, so a
/// never-granted wait surfaces as a deadlock.
#[derive(Debug, Clone, Copy)]
pub struct SemWait {
    /// Caller-chosen tag echoed in the grant.
    pub tag: u64,
}

/// Release one unit.
#[derive(Debug, Clone, Copy)]
pub struct SemPost;

/// A unit was granted to you.
#[derive(Debug, Clone, Copy)]
pub struct SemGranted {
    /// Tag from the wait.
    pub tag: u64,
}

/// Counting semaphore component (a binary semaphore is a mutex).
pub struct Semaphore {
    count: u32,
    waiters: VecDeque<(ComponentId, u64)>,
    /// Total grants issued.
    pub grants: u64,
    /// Largest waiter-queue depth observed.
    pub max_queue: usize,
}

impl Semaphore {
    /// Semaphore with `initial` available units.
    pub fn new(initial: u32) -> Self {
        Semaphore {
            count: initial,
            waiters: VecDeque::new(),
            grants: 0,
            max_queue: 0,
        }
    }

    /// A mutex: binary semaphore with one unit.
    pub fn mutex() -> Self {
        Semaphore::new(1)
    }

    /// Units currently available.
    pub fn available(&self) -> u32 {
        self.count
    }

    /// Requesters currently queued.
    pub fn queued(&self) -> usize {
        self.waiters.len()
    }

    fn grant(&mut self, api: &mut Api<'_>, to: ComponentId, tag: u64) {
        self.grants += 1;
        api.obligation_end();
        api.send(to, SemGranted { tag }, Delay::Delta);
    }
}

impl Component for Semaphore {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        if matches!(msg.kind, MsgKind::Start) {
            return;
        }
        let source = msg.source;
        let msg = match msg.user::<SemWait>() {
            Ok(w) => {
                let Some(requester) = source else {
                    // A sourceless SemWait (kernel-injected) has nowhere to
                    // send the grant; flag the model instead of panicking.
                    api.raise(
                        crate::error::SimErrorKind::Internal,
                        "SemWait without a source component",
                    );
                    return;
                };
                // The requester's pending grant is an outstanding
                // obligation of the modeled system.
                api.obligation_begin();
                if self.count > 0 {
                    self.count -= 1;
                    self.grant(api, requester, w.tag);
                } else {
                    self.waiters.push_back((requester, w.tag));
                    self.max_queue = self.max_queue.max(self.waiters.len());
                }
                return;
            }
            Err(m) => m,
        };
        if msg.user_ref::<SemPost>().is_some() {
            if let Some((to, tag)) = self.waiters.pop_front() {
                self.grant(api, to, tag);
            } else {
                self.count += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::FnComponent;
    use crate::event::StopReason;
    use crate::kernel::Simulator;
    use crate::time::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// N workers each acquire the semaphore, hold it for `hold` ns, then
    /// post. Record the grant order.
    fn run_workers(units: u32, n: usize, hold_ns: u64) -> (Vec<usize>, Simulator, usize) {
        let mut sim = Simulator::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let sem_id = n; // workers are 0..n
        for i in 0..n {
            let order2 = order.clone();
            sim.add(
                &format!("worker{i}"),
                FnComponent::new(move |api, msg| match &msg.kind {
                    MsgKind::Start => {
                        // Stagger requests by index for a deterministic
                        // arrival order.
                        api.timer_in(SimDuration::ns(i as u64 + 1), 0);
                    }
                    MsgKind::Timer(0) => {
                        api.send(sem_id, SemWait { tag: i as u64 }, Delay::Delta);
                    }
                    MsgKind::Timer(1) => {
                        api.send(sem_id, SemPost, Delay::Delta);
                    }
                    _ => {
                        if msg.user_ref::<SemGranted>().is_some() {
                            order2.borrow_mut().push(i);
                            api.timer_in(SimDuration::ns(hold_ns), 1);
                        }
                    }
                }),
            );
        }
        let id = sim.add("sem", Semaphore::new(units));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let o = order.borrow().clone();
        (o, sim, id)
    }

    #[test]
    fn mutex_serializes_in_fifo_order() {
        let (order, sim, sem) = run_workers(1, 5, 10);
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
        let s = sim.get::<Semaphore>(sem);
        assert_eq!(s.grants, 5);
        assert_eq!(s.available(), 1, "all units returned");
        assert_eq!(s.queued(), 0);
        assert!(s.max_queue >= 3, "workers actually queued");
    }

    #[test]
    fn counting_semaphore_admits_multiple_holders() {
        let (order, sim, sem) = run_workers(3, 5, 1000);
        assert_eq!(order.len(), 5);
        // First three grants happen before any release (at 1,2,3 ns).
        let s = sim.get::<Semaphore>(sem);
        assert_eq!(s.available(), 3);
        assert!(s.max_queue <= 2);
    }

    #[test]
    fn ungranted_wait_is_a_deadlock() {
        let mut sim = Simulator::new();
        sim.add(
            "greedy",
            FnComponent::new(|api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.send(1, SemWait { tag: 0 }, Delay::Delta);
                    api.send(1, SemWait { tag: 1 }, Delay::Delta); // never granted
                }
            }),
        );
        sim.add("mutex", Semaphore::mutex());
        let err = sim.run().expect_err("second wait is never granted");
        assert_eq!(
            err.kind,
            crate::error::SimErrorKind::Deadlock { pending: 1 }
        );
    }

    #[test]
    fn post_without_waiters_accumulates() {
        let mut sim = Simulator::new();
        sim.add(
            "poster",
            FnComponent::new(|api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.send(1, SemPost, Delay::Delta);
                    api.send(1, SemPost, Delay::Delta);
                }
            }),
        );
        let sem = sim.add("sem", Semaphore::new(0));
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        assert_eq!(sim.get::<Semaphore>(sem).available(), 2);
    }
}
