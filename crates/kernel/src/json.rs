//! Minimal JSON value type, writer and parser.
//!
//! The workspace builds fully offline, so instead of serde it carries its
//! own small JSON module: enough to round-trip simulator snapshots
//! ([`crate::snapshot`]), DSE run records and benchmark/report files
//! (`BENCH_kernel.json`). Numbers are stored as `f64`; the writer prints
//! integral values without a fractional part so counters stay readable.
//! `u64` values that exceed the `f64` integer range (sequence numbers,
//! transaction tags) are encoded losslessly via [`ju64`]/[`ju64_of`].

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert (or append) a field on an object; errors on non-objects
    /// instead of panicking.
    pub fn set(&mut self, key: &str, value: Json) -> Result<(), JsonError> {
        match self {
            Json::Obj(fields) => {
                fields.push((key.to_string(), value));
                Ok(())
            }
            other => Err(JsonError {
                pos: 0,
                message: format!("Json::set on non-object {other:?}"),
            }),
        }
    }

    /// Builder-style [`Json::set`]; leaves `self` unchanged when it is not
    /// an object (asserting in debug builds).
    pub fn with(mut self, key: &str, value: Json) -> Json {
        let r = self.set(key, value);
        debug_assert!(r.is_ok(), "Json::with on a non-object");
        self
    }

    /// Field of an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Number as u64 (must be integral and in range).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= u64::MAX as f64 => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// String contents.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Array elements.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Object key/value pairs, in insertion order.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty serialization (two-space indent). Compact serialization is
    /// the `Display` impl / `to_string()`.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        // Writing into a String is infallible.
        let _ = self.write(&mut out, Some(2), 0);
        out
    }

    /// Stream the compact rendering into any [`std::fmt::Write`] sink.
    ///
    /// This is the canonical byte sequence `to_string()` produces, but
    /// without requiring the caller to materialize it — hashing sinks
    /// ([`Fnv1a`]) consume snapshots this way without building the string.
    pub fn write_compact<W: std::fmt::Write>(&self, sink: &mut W) -> std::fmt::Result {
        self.write(sink, None, 0)
    }

    /// FNV-1a (64-bit) hash of the compact rendering.
    ///
    /// The rendering is streamed byte-by-byte into the hash state; no
    /// intermediate string is allocated.
    pub fn fnv1a64(&self) -> u64 {
        self.fnv1a64_with_len().0
    }

    /// FNV-1a (64-bit) hash *and* byte length of the compact rendering,
    /// in one streaming pass. The length is what `to_string().len()` would
    /// report, without materializing the string — snapshot size accounting
    /// rides along with the hash for free.
    pub fn fnv1a64_with_len(&self) -> (u64, u64) {
        let mut h = Fnv1a::new();
        // The hashing sink never errors.
        let _ = self.write(&mut h, None, 0);
        (h.finish(), h.bytes())
    }

    fn write<W: std::fmt::Write>(
        &self,
        out: &mut W,
        indent: Option<usize>,
        depth: usize,
    ) -> std::fmt::Result {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.write_str("null")?,
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" })?,
            Json::Num(v) => write_num(out, *v)?,
            Json::Str(s) => write_str(out, s)?,
            Json::Arr(items) => {
                if items.is_empty() {
                    return out.write_str("[]");
                }
                out.write_char('[')?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_str(nl)?;
                    out.write_str(&pad_in)?;
                    item.write(out, indent, depth + 1)?;
                }
                out.write_str(nl)?;
                out.write_str(&pad)?;
                out.write_char(']')?;
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    return out.write_str("{}");
                }
                out.write_char('{')?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.write_char(',')?;
                    }
                    out.write_str(nl)?;
                    out.write_str(&pad_in)?;
                    write_str(out, k)?;
                    out.write_char(':')?;
                    if indent.is_some() {
                        out.write_char(' ')?;
                    }
                    v.write(out, indent, depth + 1)?;
                }
                out.write_str(nl)?;
                out.write_str(&pad)?;
                out.write_char('}')?;
            }
        }
        Ok(())
    }

    /// Parse a JSON document.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.write(f, None, 0)
    }
}

/// Streaming FNV-1a 64-bit hasher, usable as a [`std::fmt::Write`] sink.
///
/// Used by `Simulator::state_hash` to fingerprint canonical snapshot
/// renderings without materializing them; also handy on its own for cheap
/// replay validation of any JSON artifact.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a {
    state: u64,
    bytes: u64,
}

impl Fnv1a {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Fnv1a {
        Fnv1a {
            state: Self::OFFSET_BASIS,
            bytes: 0,
        }
    }

    /// Fold bytes into the hash state.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.state;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(Self::PRIME);
        }
        self.state = h;
        self.bytes += bytes.len() as u64;
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// Total bytes folded in so far.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Write for Fnv1a {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.update(s.as_bytes());
        Ok(())
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

/// Largest integer `f64` can represent exactly (2^53).
const F64_EXACT: u64 = 1 << 53;

///// Encode a `u64` losslessly: as a number when `f64` can hold it exactly,
/// as a decimal string otherwise (transaction tags use bit 63).
pub fn ju64(v: u64) -> Json {
    if v <= F64_EXACT {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

/// Decode a `u64` written by [`ju64`] (accepts either encoding).
pub fn ju64_of(j: &Json) -> Option<u64> {
    match j {
        Json::Num(_) => j.as_u64(),
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

/// Encode an `i64` losslessly: as a number when `f64` can hold it exactly,
/// as a decimal string otherwise (signal values may use the full range).
pub fn ji64(v: i64) -> Json {
    if v.unsigned_abs() <= F64_EXACT {
        Json::Num(v as f64)
    } else {
        Json::Str(v.to_string())
    }
}

/// Decode an `i64` written by [`ji64`] (accepts either encoding).
pub fn ji64_of(j: &Json) -> Option<i64> {
    match j {
        Json::Num(v) if v.fract() == 0.0 && v.abs() <= F64_EXACT as f64 => Some(*v as i64),
        Json::Str(s) => s.parse().ok(),
        _ => None,
    }
}

fn write_num<W: std::fmt::Write>(out: &mut W, v: f64) -> std::fmt::Result {
    if !v.is_finite() {
        // JSON has no Inf/NaN; encode as null like most emitters.
        out.write_str("null")
    } else if v.fract() == 0.0 && v.abs() < 1e15 {
        write!(out, "{}", v as i64)
    } else {
        write!(out, "{v}")
    }
}

fn write_str<W: std::fmt::Write>(out: &mut W, s: &str) -> std::fmt::Result {
    out.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => out.write_str("\\\"")?,
            '\\' => out.write_str("\\\\")?,
            '\n' => out.write_str("\\n")?,
            '\r' => out.write_str("\\r")?,
            '\t' => out.write_str("\\t")?,
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32)?;
            }
            c => out.write_char(c)?,
        }
    }
    out.write_char('"')
}

/// Parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte position of the failure.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.pos, self.message)
    }
}
impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            message: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed for our data.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of unescaped bytes in one go.
                    // Validating only the run keeps parsing linear — a
                    // per-character `from_utf8` of the whole tail made
                    // multi-megabyte documents (merged sharded traces)
                    // quadratic.
                    let start = self.pos;
                    while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(run);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("bad number"))
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn ju64_round_trips_large_values() {
        for v in [0u64, 7, F64_EXACT, F64_EXACT + 1, 1 << 63, u64::MAX] {
            assert_eq!(ju64_of(&ju64(v)), Some(v), "{v}");
            let text = ju64(v).to_string();
            assert_eq!(ju64_of(&Json::parse(&text).unwrap()), Some(v), "{v}");
        }
        assert_eq!(ju64_of(&Json::Null), None);
    }

    #[test]
    fn round_trips_compact_and_pretty() {
        let v = Json::obj()
            .with("name", "drcf".into())
            .with("n", 42u64.into())
            .with("pi", 3.5.into())
            .with("ok", true.into())
            .with(
                "arr",
                Json::Arr(vec![Json::Null, 1u64.into(), "x\n\"y".into()]),
            );
        for text in [v.to_string(), v.to_string_pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"a": 3, "b": "s", "c": [true, null], "d": -1.5}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("b").unwrap().as_str(), Some("s"));
        assert_eq!(v.get("c").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("c").unwrap().as_arr().unwrap()[0].as_bool(),
            Some(true)
        );
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-1.5));
        assert_eq!(v.get("d").unwrap().as_u64(), None);
        assert!(v.get("missing").is_none());
        let pairs = v.as_obj().unwrap();
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0].0, "a");
        assert!(v.get("c").unwrap().as_obj().is_none());
    }

    #[test]
    fn integral_numbers_print_without_fraction() {
        assert_eq!(Json::Num(7.0).to_string(), "7");
        assert_eq!(Json::Num(7.25).to_string(), "7.25");
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("tru").is_err());
        assert!(Json::parse("1 2").is_err());
    }

    #[test]
    fn set_on_non_object_is_an_error_not_a_panic() {
        let mut v = Json::Num(1.0);
        let err = v
            .set("k", Json::Null)
            .expect_err("non-object must reject set");
        assert!(err.message.contains("non-object"), "{}", err.message);
        assert_eq!(v, Json::Num(1.0), "value is untouched");
        let mut o = Json::obj();
        assert!(o.set("k", true.into()).is_ok());
        assert_eq!(o.get("k").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn malformed_inputs_are_errors_with_positions() {
        for bad in ["-", "1e", "\"", "\"ab", "[1, }", "{\"a\"}", "nul", "+1", ""] {
            let err = Json::parse(bad).expect_err(bad);
            assert!(!err.message.is_empty());
            assert!(err.pos <= bad.len(), "{}: pos {}", bad, err.pos);
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        assert_eq!(Json::Num(f64::INFINITY).to_string(), "null");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn fnv1a_matches_hash_of_rendered_bytes() {
        let v = Json::obj()
            .with("name", "drcf".into())
            .with("n", ju64(u64::MAX))
            .with(
                "arr",
                Json::Arr(vec![Json::Null, 1.5.into(), "x\"y".into()]),
            );
        let mut h = Fnv1a::new();
        h.update(v.to_string().as_bytes());
        assert_eq!(v.fnv1a64(), h.finish(), "streamed hash == hash of bytes");
        // Distinct documents hash apart.
        assert_ne!(v.fnv1a64(), Json::obj().fnv1a64());
        // Known vectors: empty input is the offset basis, "a" the classic one.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut a = Fnv1a::new();
        a.update(b"a");
        assert_eq!(a.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn write_compact_streams_display_form() {
        let v = Json::Arr(vec![Json::Bool(true), Json::Num(2.0)]);
        let mut s = String::new();
        v.write_compact(&mut s).unwrap();
        assert_eq!(s, v.to_string());
    }

    #[test]
    fn parses_escapes() {
        let v = Json::parse(r#""aA\n\t\"\\""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\"\\"));
    }
}
