//! Messages and scheduling primitives.
//!
//! The kernel is a deterministic discrete-event engine. Components never
//! call each other directly; every interaction is a [`Msg`] delivered by the
//! kernel at a well-defined (time, delta, sequence) point. This mirrors the
//! SystemC evaluate/update/notify structure the paper's methodology relies
//! on, while staying idiomatic single-owner Rust.

use std::any::Any;
use std::fmt;

use crate::time::SimDuration;

/// Identifies a component instance registered with the simulator.
pub type ComponentId = usize;

/// Identifies a signal channel (untyped form; see `SignalRef<T>` for the
/// typed handle).
pub type SignalIdx = usize;

/// Identifies a clock generator.
pub type ClockIdx = usize;

/// Identifies a FIFO channel (untyped form; see `FifoRef<T>`).
pub type FifoIdx = usize;

/// Which clock edge a [`MsgKind::ClockEdge`] notification refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// Rising edge.
    Pos,
    /// Falling edge.
    Neg,
}

/// What happened on a FIFO that a subscriber is being told about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FifoEventKind {
    /// Data was written; readers may now succeed.
    DataWritten,
    /// Data was read; writers may now have space.
    DataRead,
}

/// When to deliver a scheduled message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delay {
    /// Deliver in the next delta cycle of the current timestep
    /// (SystemC `notify(SC_ZERO_TIME)`).
    Delta,
    /// Deliver after the given amount of simulated time. A zero duration is
    /// equivalent to [`Delay::Delta`].
    Time(SimDuration),
}

impl Delay {
    /// Convenience: a timed delay in nanoseconds.
    pub fn ns(v: u64) -> Delay {
        Delay::Time(SimDuration::ns(v))
    }
}

/// The payload of a delivery.
pub enum MsgKind {
    /// Sent to every component once at time zero, after all `init` hooks.
    Start,
    /// A subscribed signal changed value in the preceding update phase.
    SignalChanged(SignalIdx),
    /// A subscribed clock produced an edge.
    ClockEdge(ClockIdx, Edge),
    /// A subscribed FIFO had data written or read.
    Fifo(FifoIdx, FifoEventKind),
    /// A timer the component armed on itself fired. The tag is the value
    /// passed when arming; components use it to multiplex timers.
    Timer(u64),
    /// A user-defined payload from another component (or from itself).
    /// Downcast with [`Msg::user`].
    User(Box<dyn Any>),
}

impl fmt::Debug for MsgKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsgKind::Start => write!(f, "Start"),
            MsgKind::SignalChanged(i) => write!(f, "SignalChanged({i})"),
            MsgKind::ClockEdge(i, e) => write!(f, "ClockEdge({i}, {e:?})"),
            MsgKind::Fifo(i, k) => write!(f, "Fifo({i}, {k:?})"),
            MsgKind::Timer(t) => write!(f, "Timer({t})"),
            MsgKind::User(_) => write!(f, "User(..)"),
        }
    }
}

/// A delivered message.
#[derive(Debug)]
pub struct Msg {
    /// The component the message came from, when it was a directed send;
    /// kernel-originated notifications (clock edges, signal changes) have no
    /// source.
    pub source: Option<ComponentId>,
    /// The payload.
    pub kind: MsgKind,
}

impl Msg {
    /// Attempt to take the message as a user payload of type `T`.
    ///
    /// Returns `Ok(T)` when the message is a `User` payload of exactly that
    /// type; otherwise gives the message back so other decodings can be
    /// tried.
    pub fn user<T: Any>(self) -> Result<T, Msg> {
        match self.kind {
            MsgKind::User(b) => match b.downcast::<T>() {
                Ok(v) => Ok(*v),
                Err(b) => Err(Msg {
                    source: self.source,
                    kind: MsgKind::User(b),
                }),
            },
            kind => Err(Msg {
                source: self.source,
                kind,
            }),
        }
    }

    /// Peek at a user payload by reference without consuming the message.
    pub fn user_ref<T: Any>(&self) -> Option<&T> {
        match &self.kind {
            MsgKind::User(b) => b.downcast_ref::<T>(),
            _ => None,
        }
    }
}

/// A delivery sitting in the timed queue or a delta queue.
#[derive(Debug)]
pub(crate) struct Delivery {
    pub target: ComponentId,
    pub msg: Msg,
    /// Background deliveries (free-running clock edges) do not keep the
    /// simulation alive: `run()` stops when only background work remains.
    pub background: bool,
}

/// Why a `run` call returned successfully.
///
/// Abnormal outcomes — deadlock, delta overflow, escalated error reports —
/// are not `StopReason`s: `run`/`run_until` return
/// `SimResult<StopReason>` and those surface as
/// [`SimError`](crate::error::SimError)s (see
/// [`SimErrorKind::Deadlock`](crate::error::SimErrorKind)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No foreground events remain and no obligations are outstanding.
    Quiescent,
    /// The requested time horizon was reached.
    TimeLimit,
    /// A component called `Api::stop`.
    Stopped,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msg_user_downcast_roundtrip() {
        let m = Msg {
            source: Some(3),
            kind: MsgKind::User(Box::new(42u32)),
        };
        assert_eq!(m.user_ref::<u32>(), Some(&42));
        let v: u32 = crate::testing::ok(m.user());
        assert_eq!(v, 42);
    }

    #[test]
    fn msg_user_wrong_type_returns_message() {
        let m = Msg {
            source: None,
            kind: MsgKind::User(Box::new("hello".to_string())),
        };
        let m = m.user::<u32>().expect_err("wrong type must fail");
        let s: String = crate::testing::ok(m.user());
        assert_eq!(s, "hello");
    }

    #[test]
    fn msg_user_on_non_user_kind() {
        let m = Msg {
            source: None,
            kind: MsgKind::Timer(7),
        };
        assert!(m.user_ref::<u32>().is_none());
        let m = m.user::<u32>().expect_err("non-user kind");
        assert!(matches!(m.kind, MsgKind::Timer(7)));
    }

    #[test]
    fn stop_reason_is_copy_and_comparable() {
        let r = StopReason::Quiescent;
        let s = r;
        assert_eq!(r, s);
        assert_ne!(StopReason::TimeLimit, StopReason::Stopped);
    }

    #[test]
    fn delay_zero_time_compares() {
        assert_eq!(Delay::ns(0), Delay::Time(SimDuration::ZERO));
    }
}
