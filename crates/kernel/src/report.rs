//! Severity-tagged simulation reporting, in the spirit of `sc_report`.
//!
//! Components log through `Api::log`; the kernel timestamps and stores the
//! entries. Tests and harnesses inspect them after the run; optionally a
//! severity threshold echoes entries to stderr as they arrive.

use std::fmt;

use crate::event::ComponentId;
use crate::time::SimTime;

/// Report severity, ordered from least to most severe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Developer diagnostics.
    Debug,
    /// Normal progress information.
    Info,
    /// Something suspicious that does not invalidate the run.
    Warning,
    /// A modeling error; the run's results should not be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Debug => "DEBUG",
            Severity::Info => "INFO",
            Severity::Warning => "WARNING",
            Severity::Error => "ERROR",
        };
        f.write_str(s)
    }
}

/// A single report entry.
#[derive(Debug, Clone)]
pub struct Report {
    /// When it was logged.
    pub time: SimTime,
    /// Which component logged it (`None` for kernel-originated reports).
    pub source: Option<ComponentId>,
    /// Severity.
    pub severity: Severity,
    /// Message text.
    pub text: String,
}

/// Collects reports for one simulation.
#[derive(Default)]
pub struct Reporter {
    entries: Vec<Report>,
    counts: [u64; 4],
    echo_threshold: Option<Severity>,
}

impl Reporter {
    /// New reporter that stores but does not echo.
    pub fn new() -> Self {
        Self::default()
    }

    /// Echo entries at or above `sev` to stderr as they arrive.
    pub fn set_echo(&mut self, sev: Option<Severity>) {
        self.echo_threshold = sev;
    }

    /// Record an entry.
    pub fn log(
        &mut self,
        time: SimTime,
        source: Option<ComponentId>,
        severity: Severity,
        text: String,
    ) {
        self.counts[severity as usize] += 1;
        if let Some(th) = self.echo_threshold {
            if severity >= th {
                eprintln!("[{time}] {severity} {}: {text}", fmt_source(source));
            }
        }
        self.entries.push(Report {
            time,
            source,
            severity,
            text,
        });
    }

    /// All entries in arrival order.
    pub fn entries(&self) -> &[Report] {
        &self.entries
    }

    /// Count of entries at exactly `sev`.
    pub fn count(&self, sev: Severity) -> u64 {
        self.counts[sev as usize]
    }

    /// Entries at or above `sev`.
    pub fn at_least(&self, sev: Severity) -> impl Iterator<Item = &Report> {
        self.entries.iter().filter(move |r| r.severity >= sev)
    }

    /// True if any error was logged.
    pub fn has_errors(&self) -> bool {
        self.counts[Severity::Error as usize] > 0
    }
}

fn fmt_source(source: Option<ComponentId>) -> String {
    match source {
        Some(id) => format!("comp#{id}"),
        None => "kernel".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_by_severity() {
        let mut r = Reporter::new();
        r.log(SimTime(0), None, Severity::Info, "a".into());
        r.log(SimTime(1), Some(2), Severity::Warning, "b".into());
        r.log(SimTime(2), Some(2), Severity::Error, "c".into());
        r.log(SimTime(3), None, Severity::Info, "d".into());
        assert_eq!(r.count(Severity::Info), 2);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Debug), 0);
        assert!(r.has_errors());
        assert_eq!(r.entries().len(), 4);
    }

    #[test]
    fn at_least_filters_inclusively() {
        let mut r = Reporter::new();
        r.log(SimTime(0), None, Severity::Debug, "x".into());
        r.log(SimTime(0), None, Severity::Warning, "y".into());
        r.log(SimTime(0), None, Severity::Error, "z".into());
        let texts: Vec<&str> = r
            .at_least(Severity::Warning)
            .map(|e| e.text.as_str())
            .collect();
        assert_eq!(texts, vec!["y", "z"]);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Debug < Severity::Info);
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Error.to_string(), "ERROR");
    }
}
