//! # drcf-kernel — deterministic event-driven simulation kernel
//!
//! A from-scratch Rust substrate providing the SystemC 2.0 semantics the
//! ADRIATIC methodology ("System-Level Modeling of Dynamically
//! Reconfigurable Hardware with SystemC", RAW/IPDPS 2003) is built on:
//!
//! * simulated time with delta cycles and a deterministic total event order,
//! * components (≈ `SC_MODULE`) interacting only through kernel-delivered
//!   messages,
//! * two-phase signals (≈ `sc_signal`), clocks (≈ `sc_clock`), bounded FIFOs
//!   (≈ `sc_fifo`),
//! * scripted sequential processes (≈ `SC_THREAD` testbenches),
//! * VCD tracing (≈ `sc_trace`) and severity reporting (≈ `sc_report`),
//! * *obligations*: explicit split-transaction accounting that turns the
//!   blocking-bus deadlock of the paper's §5.4 into a first-class,
//!   detectable run outcome.
//!
//! Each simulator instance is single-threaded and fully deterministic.
//! Parallelism comes in two shapes: `drcf-dse` fans whole simulations out
//! across sweep points, and the [`shard`] module partitions *one* model
//! into logical processes connected by latency-bearing links, runs them on
//! worker threads under a conservative lookahead protocol, and merges
//! cross-shard traffic deterministically — bit-identical to the
//! single-threaded oracle at any shard count.
//!
//! ## Quick example
//!
//! ```
//! use drcf_kernel::prelude::*;
//!
//! struct Blinker { sig: SignalRef<bool>, left: u32 }
//! impl Component for Blinker {
//!     fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
//!         match msg.kind {
//!             MsgKind::Start => api.timer_in(SimDuration::ns(5), 0),
//!             MsgKind::Timer(_) if self.left > 0 => {
//!                 let cur = api.read(self.sig);
//!                 api.write(self.sig, !cur);
//!                 self.left -= 1;
//!                 api.timer_in(SimDuration::ns(5), 0);
//!             }
//!             _ => {}
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new();
//! let sig = sim.add_signal("led", false);
//! sim.add("blinker", Blinker { sig, left: 4 });
//! assert_eq!(sim.run(), Ok(StopReason::Quiescent));
//! assert_eq!(sim.signal_change_count(sig), 4);
//! ```
//!
//! Abnormal outcomes (deadlock, delta overflow, escalated error reports)
//! return `Err(SimError)` from `run`/`run_until` — see the [`error`]
//! module.

#![warn(missing_docs)]
#![deny(clippy::unwrap_used, clippy::expect_used)]

pub mod component;
pub mod error;
pub mod event;
pub mod fifo;
pub mod json;
pub mod kernel;
pub mod mempool;
pub mod observe;
pub mod process;
pub mod queue;
pub mod report;
pub mod shard;
pub mod signal;
pub mod snapshot;
pub mod stats;
pub mod sync;
pub mod testing;
pub mod time;
pub mod trace;

/// Everything most models need.
pub mod prelude {
    pub use crate::component::{Component, FnComponent, NullComponent};
    pub use crate::error::{SimError, SimErrorKind, SimResult};
    pub use crate::event::{ComponentId, Delay, Edge, FifoEventKind, Msg, MsgKind, StopReason};
    pub use crate::fifo::FifoRef;
    pub use crate::json::{Fnv1a, Json, JsonError};
    pub use crate::kernel::{Api, ClockRef, KernelMetrics, Simulator, TimerHandle};
    pub use crate::observe::{Recorder, SimEvent, TraceCategory, TraceEventKind, KERNEL_SOURCE};
    pub use crate::process::{Script, ScriptBuilder, Step};
    pub use crate::report::Severity;
    pub use crate::shard::{
        partition_lps, run_sharded, DivergenceDetail, EfficiencyReport, HorizonBound, LinkEndpoint,
        LinkInfo, LinkMsg, LinkPacket, LinkProfile, LinkTx, LpEfficiency, LpIo, LpProfile,
        LpReport, LpWindow, ShardConfig, ShardProfile, ShardRunReport, ShardTopology,
        DEFAULT_LINK_CAPACITY,
    };
    pub use crate::signal::SignalRef;
    pub use crate::snapshot::{
        ChainDoc, PayloadCodec, Snapshot, SnapshotChain, SnapshotDelta, Snapshotable,
    };
    pub use crate::stats::{BusyTracker, DispatchProfile, LatencyHistogram, Summary};
    pub use crate::sync::{SemGranted, SemPost, SemWait, Semaphore};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::{TraceValue, Traceable};
}
