//! Golden-file check for the VCD renderer: a small two-signal dump must
//! reproduce the reference byte for byte (timescale derivation, identifier
//! codes, scaled timestamps, change ordering).

use drcf_kernel::prelude::*;
use drcf_kernel::trace::VcdTracer;

#[test]
fn two_signal_dump_matches_golden_file() {
    let mut t = VcdTracer::new();
    let clk = t.declare("clk", TraceValue::Bool(false));
    let data = t.declare("data", TraceValue::Bits { value: 0, width: 8 });
    t.record(
        SimTime(SimDuration::ns(5).as_fs()),
        clk,
        TraceValue::Bool(true),
    );
    t.record(
        SimTime(SimDuration::ns(10).as_fs()),
        clk,
        TraceValue::Bool(false),
    );
    t.record(
        SimTime(SimDuration::ns(10).as_fs()),
        data,
        TraceValue::Bits {
            value: 0xA5,
            width: 8,
        },
    );
    let got = t.render();
    let want = include_str!("golden_two_signal.vcd");
    assert_eq!(got, want, "VCD output diverged from the golden file");
}
