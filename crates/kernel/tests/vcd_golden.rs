//! Golden-file check for the VCD renderer: a small two-signal dump must
//! reproduce the reference byte for byte (timescale derivation, identifier
//! codes, scaled timestamps, change ordering).

use drcf_kernel::prelude::*;
use drcf_kernel::trace::VcdTracer;

#[test]
fn two_signal_dump_matches_golden_file() {
    let mut t = VcdTracer::new();
    let clk = t.declare("clk", TraceValue::Bool(false));
    let data = t.declare("data", TraceValue::Bits { value: 0, width: 8 });
    t.record(
        SimTime(SimDuration::ns(5).as_fs()),
        clk,
        TraceValue::Bool(true),
    );
    t.record(
        SimTime(SimDuration::ns(10).as_fs()),
        clk,
        TraceValue::Bool(false),
    );
    t.record(
        SimTime(SimDuration::ns(10).as_fs()),
        data,
        TraceValue::Bits {
            value: 0xA5,
            width: 8,
        },
    );
    let got = t.render();
    let want = include_str!("golden_two_signal.vcd");
    assert_eq!(got, want, "VCD output diverged from the golden file");
}

#[test]
fn t0_only_dump_falls_back_to_ns_timescale() {
    // Declares record initial values at t=0; with no later change the
    // timescale derivation has nothing to measure and must fall back to
    // the conventional 1 ns rather than the vacuous femtosecond.
    let mut t = VcdTracer::new();
    t.declare("clk", TraceValue::Bool(false));
    t.declare("data", TraceValue::Bits { value: 3, width: 8 });
    assert_eq!(t.timescale(), (1_000_000, "ns"));
    let got = t.render();
    let want = include_str!("golden_t0_only.vcd");
    assert_eq!(got, want, "VCD output diverged from the golden file");
}

#[test]
fn empty_tracer_reports_ns_timescale() {
    assert_eq!(VcdTracer::new().timescale(), (1_000_000, "ns"));
}
