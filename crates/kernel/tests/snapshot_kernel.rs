//! Kernel-level snapshot/restore round-trips (ISSUE 5 tentpole).
//!
//! Contract under test: `run_until(t1); snapshot()` restored into a freshly
//! built, identically shaped simulator and then run to `t2` is
//! bit-identical — VCD trace, observe events, metrics, channel state, and
//! component state — to a single straight run to `t2`. The snapshot also
//! survives a text round-trip (`to_text` → `parse`).

use std::sync::Once;

use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::{self, PayloadCodec};
use proptest::prelude::*;

/// User-payload message exercised through the timed queue: a snapshot taken
/// while one of these is in flight must encode it via the codec registry.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Ping {
    serial: u64,
}

fn register_ping_codec() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        snapshot::register_payload_codec(PayloadCodec {
            name: "test.Ping",
            encode: |any| {
                any.downcast_ref::<Ping>()
                    .map(|p| Json::obj().with("serial", drcf_kernel::json::ju64(p.serial)))
            },
            decode: |j| {
                let serial = drcf_kernel::json::ju64_of(j.get("serial")?)?;
                Some(Box::new(Ping { serial }))
            },
        });
    });
}

/// A clocked worker with private counters the kernel cannot see — the part
/// of the state space `Component::snapshot` exists for. It writes a signal,
/// feeds a FIFO, keeps a cancellable watchdog timer pending, and pings
/// itself with a user payload so the timed queue holds a codec-encoded
/// message across the snapshot point.
struct Worker {
    clk: ClockRef,
    sig: SignalRef<u64>,
    fifo: FifoRef<u64>,
    edges: u64,
    pings: u64,
    watchdog: Option<TimerHandle>,
}

impl Worker {
    fn new(clk: ClockRef, sig: SignalRef<u64>, fifo: FifoRef<u64>) -> Worker {
        Worker {
            clk,
            sig,
            fifo,
            edges: 0,
            pings: 0,
            watchdog: None,
        }
    }
}

impl Component for Worker {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {
                api.subscribe_clock(self.clk, Edge::Pos);
                self.watchdog = Some(api.timer_cancellable(SimDuration::ns(500), 0xDEAD));
            }
            MsgKind::ClockEdge(..) => {
                self.edges += 1;
                api.write(self.sig, self.edges);
                if self.edges.is_multiple_of(3) {
                    let _ = api.fifo_try_put(self.fifo, self.edges);
                }
                if self.edges.is_multiple_of(5) {
                    let me = api.me();
                    api.send_in(me, Ping { serial: self.edges }, SimDuration::ns(7));
                }
                // Re-arm the watchdog: there is always one cancellable
                // timer pending when a snapshot is taken.
                if let Some(h) = self.watchdog.take() {
                    api.cancel_timer(h);
                }
                self.watchdog = Some(api.timer_cancellable(SimDuration::ns(500), 0xDEAD));
            }
            MsgKind::User(p) => {
                if let Some(ping) = p.downcast_ref::<Ping>() {
                    self.pings += ping.serial;
                    api.trace_instant(TraceCategory::Kernel, "ping", ping.serial);
                }
            }
            MsgKind::Timer(0xDEAD) => {
                // Watchdog fired: quiet system, note it and stand down.
                self.watchdog = None;
                api.write(self.sig, u64::MAX);
            }
            _ => {}
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("edges", drcf_kernel::json::ju64(self.edges))
            .with("pings", drcf_kernel::json::ju64(self.pings))
            .with(
                "watchdog",
                match self.watchdog {
                    Some(h) => drcf_kernel::json::ju64(h.raw()),
                    None => Json::Null,
                },
            ))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.edges = snapshot::u64_field(state, "edges")?;
        self.pings = snapshot::u64_field(state, "pings")?;
        self.watchdog = match snapshot::field(state, "watchdog")? {
            Json::Null => None,
            j => Some(TimerHandle::from_raw(
                drcf_kernel::json::ju64_of(j)
                    .ok_or_else(|| snapshot::err("worker watchdog handle is not a u64"))?,
            )),
        };
        Ok(())
    }
}

/// FIFO drain keeping a running sum — a second stateful component so the
/// component array has more than one snapshot entry.
struct Drain {
    fifo: FifoRef<u64>,
    sum: u64,
}

impl Component for Drain {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.subscribe_fifo(self.fifo),
            MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                while let Some(v) = api.fifo_try_get(self.fifo) {
                    self.sum += v;
                }
            }
            _ => {}
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj().with("sum", drcf_kernel::json::ju64(self.sum)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.sum = snapshot::u64_field(state, "sum")?;
        Ok(())
    }
}

struct World {
    sim: Simulator,
    worker: ComponentId,
    drain: ComponentId,
    sig: SignalRef<u64>,
}

fn build_world() -> World {
    register_ping_codec();
    let mut sim = Simulator::new();
    sim.enable_trace();
    sim.enable_observe(256);
    let clk = sim.add_clock(
        "clk",
        SimDuration::ns(10),
        SimDuration::ns(4),
        SimDuration::ns(1),
    );
    let sig = sim.add_signal("work", 0u64);
    sim.trace_signal(sig);
    let fifo = sim.add_fifo::<u64>("queue", 4);
    let worker = sim.add("worker", Worker::new(clk, sig, fifo));
    let drain = sim.add("drain", Drain { fifo, sum: 0 });
    World {
        sim,
        worker,
        drain,
        sig,
    }
}

type Observation = (String, Vec<SimEvent>, KernelMetrics, u64, u64, u64, u64);

fn observe(w: &World) -> Observation {
    (
        w.sim.tracer().expect("trace on").render(),
        w.sim.observe_events(),
        w.sim.metrics(),
        w.sim.signal_change_count(w.sig),
        w.sim.get::<Worker>(w.worker).edges,
        w.sim.get::<Worker>(w.worker).pings,
        w.sim.get::<Drain>(w.drain).sum,
    )
}

fn straight_run(t2_ns: u64) -> Observation {
    let mut w = build_world();
    w.sim
        .run_until(SimTime::ZERO + SimDuration::ns(t2_ns))
        .expect("straight run");
    observe(&w)
}

fn forked_run(t1_ns: u64, t2_ns: u64, through_text: bool) -> Observation {
    let mut w = build_world();
    w.sim
        .run_until(SimTime::ZERO + SimDuration::ns(t1_ns))
        .expect("prefix run");
    let snap = w.sim.snapshot().expect("snapshot");
    let snap = if through_text {
        Snapshot::parse(&snap.to_text()).expect("text round-trip")
    } else {
        snap
    };
    let mut fresh = build_world();
    fresh.sim.restore(&snap).expect("restore");
    fresh
        .sim
        .run_until(SimTime::ZERO + SimDuration::ns(t2_ns))
        .expect("resumed run");
    observe(&fresh)
}

#[test]
fn restore_matches_straight_run() {
    let straight = straight_run(400);
    // Snapshot point chosen so a Ping user payload and the watchdog timer
    // are both in flight (edge 5 fires at t=41ns, ping lands at 48ns).
    let forked = forked_run(45, 400, false);
    assert_eq!(straight, forked);
}

#[test]
fn restore_matches_straight_run_through_text() {
    let straight = straight_run(400);
    let forked = forked_run(45, 400, true);
    assert_eq!(straight, forked);
}

#[test]
fn restore_past_quiescence_matches() {
    // Horizon far beyond the last event: both runs go quiescent after the
    // watchdog fires, and the watchdog path itself crosses the snapshot.
    let straight = straight_run(5_000);
    let forked = forked_run(1_000, 5_000, true);
    assert_eq!(straight, forked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Restore-vs-straight equivalence holds at arbitrary snapshot points,
    /// including ones that land between a clock edge and the delivery of
    /// the user payload it scheduled.
    #[test]
    fn restore_matches_straight_run_anywhere(t1_ns in 1u64..395, t2_ns in 395u64..450) {
        let straight = straight_run(t2_ns);
        let forked = forked_run(t1_ns, t2_ns, true);
        prop_assert_eq!(straight, forked);
    }
}

#[test]
fn snapshot_rejects_unstarted_and_restore_rejects_started() {
    let mut w = build_world();
    let err = w.sim.snapshot().expect_err("snapshot before run");
    assert!(err.message.contains("run at least one slice"), "{err}");

    w.sim
        .run_until(SimTime::ZERO + SimDuration::ns(50))
        .unwrap();
    let snap = w.sim.snapshot().unwrap();
    let err = w.sim.restore(&snap).expect_err("restore into started sim");
    assert!(err.message.contains("freshly built"), "{err}");
}

#[test]
fn restore_rejects_mismatched_shape() {
    let mut w = build_world();
    w.sim
        .run_until(SimTime::ZERO + SimDuration::ns(50))
        .unwrap();
    let snap = w.sim.snapshot().unwrap();

    // Same components, one extra signal: shape mismatch must be loud.
    register_ping_codec();
    let mut other = Simulator::new();
    other.enable_trace();
    other.enable_observe(256);
    let clk = other.add_clock(
        "clk",
        SimDuration::ns(10),
        SimDuration::ns(4),
        SimDuration::ns(1),
    );
    let sig = other.add_signal("work", 0u64);
    other.trace_signal(sig);
    let extra = other.add_signal("extra", 0u64);
    let _ = extra;
    let fifo = other.add_fifo::<u64>("queue", 4);
    other.add("worker", Worker::new(clk, sig, fifo));
    other.add("drain", Drain { fifo, sum: 0 });
    let err = other.restore(&snap).expect_err("signal count mismatch");
    assert!(err.message.contains("signals"), "{err}");
}

#[test]
fn snapshot_fails_loudly_on_closure_components() {
    // FnComponent cannot capture its closure state; the error must name
    // the offending component rather than silently dropping state.
    let mut sim = Simulator::new();
    sim.add("opaque", FnComponent::new(|_api, _msg| {}));
    sim.run_for(SimDuration::ns(1)).unwrap();
    let err = sim.snapshot().expect_err("FnComponent snapshot");
    assert_eq!(err.component.as_deref(), Some("opaque"));
    assert!(err.message.contains("does not implement snapshot"), "{err}");
}
