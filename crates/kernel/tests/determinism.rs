//! Determinism regression for the zero-allocation dispatch loop.
//!
//! Builds a randomized component graph (clocks, clocked workers writing
//! signals and a shared FIFO, a timer-driven stimulus) and runs it three
//! ways:
//!
//! 1. the optimized dispatch path (per-clock next-edge slots + the
//!    hierarchical timing wheel),
//! 2. the optimized path again (replay determinism),
//! 3. the legacy clock path (`set_legacy_clock_path(true)`), which routes
//!    every clock edge through the general timed-event queue — the schedule
//!    the kernel used before the periodic fast path existed,
//! 4. the reference timed queue (`set_legacy_timed_queue(true)`), which
//!    replaces the timing wheel with the original binary heap.
//!
//! All four must produce byte-identical VCD traces, identical event logs,
//! identical per-signal change counts, and identical kernel metrics (for
//! the counters that do not describe the internal data path itself).

use std::cell::RefCell;
use std::rc::Rc;

use drcf_kernel::prelude::*;
use proptest::prelude::*;

/// `(time_fs, actor, value)` — one observable event.
type Log = Rc<RefCell<Vec<(u64, u64, i64)>>>;

/// Everything observable about a run. The dispatch path must not leak into
/// any of it.
type Observation = (
    String,               // rendered VCD
    Vec<(u64, u64, i64)>, // ordered event log
    Vec<u64>,             // per-signal change counts
    u64,                  // final time (fs)
    (u64, u64, u64, u64), // dispatched, delta_cycles, timesteps, max_deltas
);

#[allow(clippy::type_complexity)]
fn run_world(
    clocks: &[(u64, u64, u64)], // (period_ns, high_ns, offset_ns)
    workers: &[(u8, bool, u8)], // (clock choice, both edges, fifo put cadence)
    plan: &[(u64, u64, u8)],    // stimulus timers: (delay_fs, tag, rechedule hops)
    horizon_ns: u64,
    legacy_clock: bool,
    heap_queue: bool,
) -> Observation {
    let mut sim = Simulator::new();
    sim.set_legacy_clock_path(legacy_clock);
    sim.set_legacy_timed_queue(heap_queue);
    sim.enable_trace();
    let log: Log = Rc::new(RefCell::new(Vec::new()));

    let clk_refs: Vec<ClockRef> = clocks
        .iter()
        .enumerate()
        .map(|(i, &(p, h, o))| {
            sim.add_clock(
                &format!("clk{i}"),
                SimDuration::ns(p),
                SimDuration::ns(h),
                SimDuration::ns(o),
            )
        })
        .collect();

    let fifo = sim.add_fifo::<u64>("shared", 4);

    let mut sigs = Vec::new();
    for (w, &(c, both, every)) in workers.iter().enumerate() {
        let sig = sim.add_signal(&format!("s{w}"), 0u64);
        sim.trace_signal(sig);
        sigs.push(sig);
        let clk = clk_refs[c as usize % clk_refs.len()];
        let l = log.clone();
        let every = every.max(1) as u64;
        let wid = w as u64;
        let mut edges = 0u64;
        sim.add(
            &format!("worker{w}"),
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => {
                    api.subscribe_clock(clk, Edge::Pos);
                    if both {
                        api.subscribe_clock(clk, Edge::Neg);
                    }
                }
                MsgKind::ClockEdge(_, edge) => {
                    edges += 1;
                    api.write(sig, edges);
                    let polarity = if edge == Edge::Pos { 1 } else { -1 };
                    l.borrow_mut().push((api.now().as_fs(), wid, polarity));
                    if edges.is_multiple_of(every) {
                        let _ = api.fifo_try_put(fifo, wid * 1000 + edges);
                    }
                }
                _ => {}
            }),
        );
    }

    let l2 = log.clone();
    sim.add(
        "drain",
        FnComponent::new(move |api, msg| match msg.kind {
            MsgKind::Start => api.subscribe_fifo(fifo),
            MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                while let Some(v) = api.fifo_try_get(fifo) {
                    l2.borrow_mut().push((api.now().as_fs(), 9999, v as i64));
                }
            }
            _ => {}
        }),
    );

    let bus = sim.add_signal("bus", 0u64);
    sim.trace_signal(bus);
    let plan2 = plan.to_vec();
    let l3 = log.clone();
    sim.add(
        "stim",
        FnComponent::new(move |api, msg| match msg.kind {
            MsgKind::Start => {
                for (i, &(d, _, hops)) in plan2.iter().enumerate() {
                    api.timer_in(SimDuration::fs(d), (i as u64) | ((hops as u64) << 32));
                }
            }
            MsgKind::Timer(t) => {
                // Low half: plan index. High half: remaining reschedule
                // hops, so boundary delays are also exercised relative to
                // mid-run `now` values, not just time zero.
                let idx = (t & 0xFFFF_FFFF) as usize;
                let hops = t >> 32;
                let (d, tag, _) = plan2[idx];
                api.write(bus, tag);
                l3.borrow_mut().push((api.now().as_fs(), 5000, tag as i64));
                if hops > 0 {
                    api.timer_in(SimDuration::fs(d), (idx as u64) | ((hops - 1) << 32));
                }
            }
            _ => {}
        }),
    );

    let stop = sim.run_until(SimTime::ZERO + SimDuration::ns(horizon_ns));
    assert!(
        matches!(stop, Ok(StopReason::TimeLimit) | Ok(StopReason::Quiescent)),
        "unexpected stop: {stop:?}"
    );
    let vcd = sim.tracer().expect("trace enabled").render();
    let mut counts: Vec<u64> = sigs.iter().map(|&s| sim.signal_change_count(s)).collect();
    counts.push(sim.signal_change_count(bus));
    let m = sim.metrics();
    let events = log.borrow().clone();
    (
        vcd,
        events,
        counts,
        sim.now().as_fs(),
        (
            m.dispatched,
            m.delta_cycles,
            m.timesteps,
            m.max_deltas_in_step,
        ),
    )
}

proptest! {
    /// Random graphs replay identically on the fast path, the fast path
    /// reproduces the legacy clock schedule bit for bit, and the timing
    /// wheel reproduces the reference binary-heap schedule bit for bit.
    #[test]
    fn dispatch_paths_agree(
        raw_clocks in proptest::collection::vec((2u64..16, 0u64..100, 0u64..6), 1..4),
        workers in proptest::collection::vec((0u8..8, any::<bool>(), 1u8..4), 1..5),
        plan in proptest::collection::vec((0u64..60, 0u64..32), 0..24),
        horizon_ns in 40u64..160,
    ) {
        // Map the raw high-time fraction into (0, period).
        let clocks: Vec<(u64, u64, u64)> = raw_clocks
            .iter()
            .map(|&(p, h, o)| (p, 1 + h % (p - 1), o))
            .collect();
        // One-shot timers at ns granularity.
        let plan: Vec<(u64, u64, u8)> = plan
            .iter()
            .map(|&(d_ns, tag)| (d_ns * 1_000_000, tag, 0))
            .collect();
        let fast1 = run_world(&clocks, &workers, &plan, horizon_ns, false, false);
        let fast2 = run_world(&clocks, &workers, &plan, horizon_ns, false, false);
        let legacy_clk = run_world(&clocks, &workers, &plan, horizon_ns, true, false);
        let heap = run_world(&clocks, &workers, &plan, horizon_ns, false, true);
        // Legacy clock path + heap queue: every event through the heap.
        let all_legacy = run_world(&clocks, &workers, &plan, horizon_ns, true, true);
        prop_assert_eq!(&fast1, &fast2);
        prop_assert_eq!(&fast1, &legacy_clk);
        prop_assert_eq!(&fast1, &heap);
        prop_assert_eq!(&fast1, &all_legacy);
    }

    /// Satellite regression (ISSUE 5): timer delays drawn from the timing
    /// wheel's boundary set — {0, TICK−1, TICK, horizon−1, horizon,
    /// horizon+1} femtoseconds (TICK = 2^20 fs bucket width, horizon =
    /// 2^30 fs wheel span) — with rescheduling hops so the boundaries are
    /// hit from arbitrary mid-run `now` values, i.e. exactly at active
    /// bucket rotation points and at `base + NBUCKETS ± 1`. The wheel must
    /// reproduce the reference binary heap bit for bit.
    #[test]
    fn wheel_boundary_delays_agree(
        raw_clocks in proptest::collection::vec((2u64..16, 0u64..100, 0u64..6), 1..3),
        workers in proptest::collection::vec((0u8..8, any::<bool>(), 1u8..4), 1..3),
        picks in proptest::collection::vec((0usize..6, 0u64..32, 0u8..3), 1..12),
        horizon_ns in 1100u64..2400,
    ) {
        const TICK_FS: u64 = 1 << 20;
        const WHEEL_HORIZON_FS: u64 = 1 << 30;
        const BOUNDARY_FS: [u64; 6] = [
            0,
            TICK_FS - 1,
            TICK_FS,
            WHEEL_HORIZON_FS - 1,
            WHEEL_HORIZON_FS,
            WHEEL_HORIZON_FS + 1,
        ];
        let clocks: Vec<(u64, u64, u64)> = raw_clocks
            .iter()
            .map(|&(p, h, o)| (p, 1 + h % (p - 1), o))
            .collect();
        let plan: Vec<(u64, u64, u8)> = picks
            .iter()
            .map(|&(b, tag, hops)| (BOUNDARY_FS[b], tag, hops))
            .collect();
        let fast = run_world(&clocks, &workers, &plan, horizon_ns, false, false);
        let heap = run_world(&clocks, &workers, &plan, horizon_ns, false, true);
        let all_legacy = run_world(&clocks, &workers, &plan, horizon_ns, true, true);
        prop_assert_eq!(&fast, &heap);
        prop_assert_eq!(&fast, &all_legacy);
    }
}

/// The two paths differ only in their internal routing counters: on the
/// fast path every periodic edge is accounted in `clock_edges_fast`, on the
/// legacy path the same edges are heap pops.
#[test]
fn fast_path_accounts_clock_edges() {
    let build = |legacy: bool| {
        let mut sim = Simulator::new();
        sim.set_legacy_clock_path(legacy);
        let clk = sim.add_clock_mhz("clk", 100);
        sim.add(
            "sub",
            FnComponent::new(move |api, msg| {
                if matches!(msg.kind, MsgKind::Start) {
                    api.subscribe_clock(clk, Edge::Pos);
                }
            }),
        );
        let _ = sim.run_until(SimTime::ZERO + SimDuration::ns(200));
        sim.metrics()
    };
    let fast = build(false);
    let legacy = build(true);
    assert!(fast.clock_edges_fast > 10);
    assert_eq!(legacy.clock_edges_fast, 0);
    assert!(legacy.heap_events > fast.heap_events);
    // The externally observable counters agree.
    assert_eq!(fast.dispatched, legacy.dispatched);
    assert_eq!(fast.delta_cycles, legacy.delta_cycles);
    assert_eq!(fast.timesteps, legacy.timesteps);
    assert_eq!(fast.notifications, legacy.notifications);
}
