//! Property-based tests of the kernel's core guarantees:
//! deterministic total event order, two-phase signal semantics, FIFO
//! conservation, and pause/resume equivalence.

use std::cell::RefCell;
use std::rc::Rc;

use drcf_kernel::prelude::*;
use proptest::prelude::*;

use drcf_kernel::testing::ok;

/// Component that fires timers according to a plan and records the order.
struct Plan {
    plan: Vec<(u64, u64)>,  // (delay ns, tag)
    fired: Vec<(u64, u64)>, // (time fs, tag)
}

impl Component for Plan {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => {
                for &(d, tag) in &self.plan {
                    api.timer_in(SimDuration::ns(d), tag);
                }
            }
            MsgKind::Timer(tag) => self.fired.push((api.now().as_fs(), tag)),
            _ => {}
        }
    }
}

proptest! {
    /// Timers fire in nondecreasing time order, and equal-time timers fire
    /// in the order they were scheduled.
    #[test]
    fn event_order_is_total(plan in proptest::collection::vec((0u64..100, 0u64..1000), 0..64)) {
        let tagged: Vec<(u64, u64)> = plan.iter().enumerate()
            .map(|(i, &(d, _))| (d, i as u64)).collect();
        let mut sim = Simulator::new();
        let id = sim.add("plan", Plan { plan: tagged.clone(), fired: vec![] });
        prop_assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let fired = &sim.get::<Plan>(id).fired;
        prop_assert_eq!(fired.len(), tagged.len());
        // Expected: stable sort by delay (insertion order breaks ties).
        let mut expect = tagged.clone();
        expect.sort_by_key(|&(d, _)| d);
        for (f, e) in fired.iter().zip(&expect) {
            prop_assert_eq!(f.0, e.0 * 1_000_000);
            prop_assert_eq!(f.1, e.1);
        }
    }

    /// Two identical simulations produce byte-identical firing traces.
    #[test]
    fn deterministic_replay(plan in proptest::collection::vec((0u64..50, 0u64..50), 0..40)) {
        let run = |plan: &[(u64, u64)]| {
            let mut sim = Simulator::new();
            let id = sim.add("plan", Plan { plan: plan.to_vec(), fired: vec![] });
            ok(sim.run());
            (sim.get::<Plan>(id).fired.clone(), sim.metrics())
        };
        prop_assert_eq!(run(&plan), run(&plan));
    }

    /// Within one delta, the last write wins and readers see the old value
    /// until the update phase.
    #[test]
    fn signal_last_write_wins(writes in proptest::collection::vec(0u32..100, 1..16)) {
        let mut sim = Simulator::new();
        let sig = sim.add_signal("s", u32::MAX);
        let writes2 = writes.clone();
        let seen_during = Rc::new(RefCell::new(Vec::new()));
        let sd = seen_during.clone();
        sim.add("writer", FnComponent::new(move |api, msg| {
            if let MsgKind::Start = msg.kind {
                for &w in &writes2 {
                    api.write(sig, w);
                    sd.borrow_mut().push(api.read(sig));
                }
            }
        }));
        ok(sim.run());
        // During the evaluate phase every read sees the initial value.
        prop_assert!(seen_during.borrow().iter().all(|&v| v == u32::MAX));
        prop_assert_eq!(sim.signal_value(sig), *writes.last().unwrap());
        // At most one change can result from one delta's writes.
        prop_assert!(sim.signal_change_count(sig) <= 1);
    }

    /// FIFO conservation through the simulator: total written == total read
    /// + resident, and reads preserve order.
    #[test]
    fn fifo_conservation(ops in proptest::collection::vec(any::<bool>(), 1..64),
                         cap in 1usize..16) {
        let mut sim = Simulator::new();
        let fifo = sim.add_fifo::<u64>("f", cap);
        let got = Rc::new(RefCell::new(Vec::new()));
        let g = got.clone();
        let ops2 = ops.clone();
        sim.add("driver", FnComponent::new(move |api, msg| match msg.kind {
            MsgKind::Start => {
                // One timer per op, spaced 1ns apart for determinism.
                for (i, _) in ops2.iter().enumerate() {
                    api.timer_in(SimDuration::ns(i as u64 + 1), i as u64);
                }
            }
            MsgKind::Timer(i) => {
                if ops2[i as usize] {
                    let _ = api.fifo_try_put(fifo, i);
                } else if let Some(v) = api.fifo_try_get(fifo) {
                    g.borrow_mut().push(v);
                }
            }
            _ => {}
        }));
        ok(sim.run());
        let (_, len, capacity, written, read, hwm) = sim.fifo_stats(fifo);
        prop_assert_eq!(capacity, cap);
        prop_assert_eq!(written, read + len as u64);
        prop_assert!(hwm <= cap);
        // Reads come out in insertion order (tags are increasing).
        let got = got.borrow();
        prop_assert!(got.windows(2).all(|w| w[0] < w[1]));
        prop_assert_eq!(got.len() as u64, read);
    }

    /// Splitting a run at an arbitrary horizon and resuming produces the
    /// same final state as a single uninterrupted run.
    #[test]
    fn pause_resume_equivalence(plan in proptest::collection::vec((1u64..100, 0u64..50), 1..32),
                                split_ns in 0u64..120) {
        let single = {
            let mut sim = Simulator::new();
            let id = sim.add("plan", Plan { plan: plan.clone(), fired: vec![] });
            ok(sim.run());
            sim.get::<Plan>(id).fired.clone()
        };
        let paused = {
            let mut sim = Simulator::new();
            let id = sim.add("plan", Plan { plan: plan.clone(), fired: vec![] });
            ok(sim.run_until(SimTime::ZERO + SimDuration::ns(split_ns)));
            ok(sim.run());
            sim.get::<Plan>(id).fired.clone()
        };
        prop_assert_eq!(single, paused);
    }

    /// Obligation accounting: a component that begins N obligations and ends
    /// M <= N of them deadlocks iff M < N.
    #[test]
    fn obligations_gate_deadlock(n in 1u64..8, m_frac in 0u64..=8) {
        let m = (n * m_frac / 8).min(n);
        let mut sim = Simulator::new();
        sim.add("obl", FnComponent::new(move |api, msg| match msg.kind {
            MsgKind::Start => {
                for _ in 0..n { api.obligation_begin(); }
                api.timer_in(SimDuration::ns(1), 0);
            }
            MsgKind::Timer(_) => {
                for _ in 0..m { api.obligation_end(); }
            }
            _ => {}
        }));
        let reason = sim.run();
        if m == n {
            prop_assert_eq!(reason, Ok(StopReason::Quiescent));
        } else {
            let err = reason.expect_err("unfulfilled obligations must deadlock");
            prop_assert_eq!(err.kind, SimErrorKind::Deadlock { pending: n - m });
        }
    }
}

/// Clock phase arithmetic: over any horizon, posedge count matches
/// floor((horizon - offset) / period) + 1 when offset <= horizon.
#[test]
fn clock_edge_count_closed_form() {
    for (period_ns, offset_ns, horizon_ns) in
        [(10u64, 0u64, 95u64), (7, 3, 100), (4, 0, 4), (12, 20, 15)]
    {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(
            "clk",
            SimDuration::ns(period_ns),
            SimDuration::ns(period_ns) / 2,
            SimDuration::ns(offset_ns),
        );
        let count = Rc::new(RefCell::new(0u64));
        let c = count.clone();
        sim.add(
            "counter",
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.subscribe_clock(clk, Edge::Pos),
                MsgKind::ClockEdge(_, Edge::Pos) => *c.borrow_mut() += 1,
                _ => {}
            }),
        );
        ok(sim.run_until(SimTime::ZERO + SimDuration::ns(horizon_ns)));
        let expect = if offset_ns > horizon_ns {
            0
        } else {
            (horizon_ns - offset_ns) / period_ns + 1
        };
        assert_eq!(
            *count.borrow(),
            expect,
            "period={period_ns} offset={offset_ns} horizon={horizon_ns}"
        );
    }
}
