//! Property tests for the sharded executor: over random topologies (LP
//! counts, link structure, link latencies, emission cadences, fault
//! windows), running under 1, 2, and 4 shards must produce bit-identical
//! reports — same metrics, same per-window state hashes, same probes.
//!
//! This is the workspace-level guarantee the bench and perf gate rely on:
//! parallelism is a pure wall-clock optimisation, never a semantic one.

use drcf_kernel::prelude::*;
use drcf_kernel::snapshot::u64_field;
use proptest::prelude::*;

/// Everything needed to rebuild one topology from scratch. Builders are
/// `FnOnce` and consumed per run, so each shard count gets a fresh
/// topology constructed from the same parameters.
#[derive(Clone, Debug)]
struct Params {
    lps: usize,
    /// (from, to, latency_ns) — endpoints reduced mod `lps`.
    links: Vec<(usize, usize, u64)>,
    periods: Vec<u64>,
    emit_every: u64,
    /// Packets arriving inside [start, end) ns are dropped (a modelled
    /// transient fault) — deterministically, since arrival times are.
    fault_ns: (u64, u64),
    horizon_ns: u64,
}

/// Snapshot-capable traffic generator/sink. Ticks on a timer, emits a
/// packet on every outgoing link each `emit_every` ticks, and folds
/// received packets into a checksum unless they arrive inside the fault
/// window.
struct Worker {
    id: u64,
    egress: Vec<ComponentId>,
    period: SimDuration,
    emit_every: u64,
    fault: (SimTime, SimTime),
    ticks: u64,
    received: u64,
    dropped: u64,
    checksum: u64,
}

impl Worker {
    fn mix(&mut self, v: u64) {
        self.checksum = self
            .checksum
            .rotate_left(9)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(v);
    }
}

impl Component for Worker {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.timer_in(self.period, 0),
            MsgKind::Timer(_) => {
                self.ticks += 1;
                self.mix(self.ticks);
                if self.ticks.is_multiple_of(self.emit_every) {
                    for &e in &self.egress {
                        api.send(
                            e,
                            LinkMsg {
                                tag: self.ticks,
                                words: vec![self.id, self.checksum & 0xffff],
                            },
                            Delay::Delta,
                        );
                    }
                }
                api.timer_in(self.period, 0);
            }
            _ => {
                if let Ok(p) = msg.user::<LinkPacket>() {
                    let now = api.now();
                    if now >= self.fault.0 && now < self.fault.1 {
                        self.dropped += 1;
                        return;
                    }
                    self.received += 1;
                    self.mix(p.seq);
                    self.mix(p.msg.tag);
                    for w in &p.msg.words {
                        self.mix(*w);
                    }
                }
            }
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("ticks", drcf_kernel::json::ju64(self.ticks))
            .with("received", drcf_kernel::json::ju64(self.received))
            .with("dropped", drcf_kernel::json::ju64(self.dropped))
            .with("checksum", drcf_kernel::json::ju64(self.checksum)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.ticks = u64_field(state, "ticks")?;
        self.received = u64_field(state, "received")?;
        self.dropped = u64_field(state, "dropped")?;
        self.checksum = u64_field(state, "checksum")?;
        Ok(())
    }
}

fn build(p: &Params) -> ShardTopology {
    let mut topo = ShardTopology::new();
    for i in 0..p.lps {
        let period = p.periods[i % p.periods.len()];
        let emit_every = p.emit_every;
        let fault = p.fault_ns;
        topo.add_lp(&format!("lp{i}"), move |sim, io| {
            let egress: SimResult<Vec<ComponentId>> =
                io.outgoing().iter().map(|&l| io.egress(l)).collect();
            let id = sim.add(
                &format!("w{i}"),
                Worker {
                    id: i as u64,
                    egress: egress?,
                    period: SimDuration::ns(period),
                    emit_every,
                    fault: (
                        SimTime(SimDuration::ns(fault.0).0),
                        SimTime(SimDuration::ns(fault.1).0),
                    ),
                    ticks: 0,
                    received: 0,
                    dropped: 0,
                    checksum: 0,
                },
            );
            for l in io.incoming() {
                io.set_ingress(l, id)?;
            }
            Ok(())
        });
        topo.set_probe(i, move |sim| {
            let last = sim.component_count() - 1;
            let w = sim.get::<Worker>(last);
            Ok(Json::obj()
                .with("received", drcf_kernel::json::ju64(w.received))
                .with("dropped", drcf_kernel::json::ju64(w.dropped))
                .with("checksum", drcf_kernel::json::ju64(w.checksum)))
        });
        // Uneven weights exercise the partitioner.
        topo.set_weight(i, 1 + (i as u64 % 3));
    }
    for (k, &(from, to, lat)) in p.links.iter().enumerate() {
        topo.add_link(
            &format!("l{k}"),
            from % p.lps,
            to % p.lps,
            SimDuration::ns(lat),
        );
    }
    topo
}

fn run(p: &Params, shards: usize) -> ShardRunReport {
    let cfg = ShardConfig::to(SimTime(SimDuration::ns(p.horizon_ns).0))
        .shards(shards)
        .hash_slices(true);
    match run_sharded(build(p), &cfg) {
        Ok(r) => r,
        Err(e) => panic!("run with {shards} shards failed: {e:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// 1, 2, and 4 shards produce bit-identical reports: same per-LP
    /// kernel metrics, per-window state hashes, final hashes, and probes.
    #[test]
    fn shard_count_never_changes_results(
        lps in 2usize..5,
        links in proptest::collection::vec(
            (0usize..8, 0usize..8, 200u64..2_000), 1..7),
        periods in proptest::collection::vec(60u64..400, 3..4),
        emit_every in 1u64..5,
        fault_start in 0u64..8_000,
        fault_len in 0u64..4_000,
    ) {
        let p = Params {
            lps,
            links,
            periods,
            emit_every,
            fault_ns: (fault_start, fault_start + fault_len),
            horizon_ns: 10_000,
        };
        let oracle = run(&p, 1);
        prop_assert_eq!(oracle.shards, 1);
        for shards in [2usize, 4] {
            let par = run(&p, shards);
            prop_assert!(
                oracle.same_outcome(&par),
                "shards={} diverged at {:?} for {:?}",
                shards, oracle.first_divergence(&par), p
            );
            prop_assert_eq!(oracle.first_divergence(&par), None);
            prop_assert_eq!(oracle.rounds, par.rounds);
            prop_assert_eq!(oracle.messages, par.messages);
            for (a, b) in oracle.lps.iter().zip(&par.lps) {
                prop_assert_eq!(&a.slice_hashes, &b.slice_hashes);
                prop_assert_eq!(a.state_hash, b.state_hash);
                prop_assert_eq!(&a.probe, &b.probe);
            }
        }
    }

    /// Re-running the identical configuration reproduces the identical
    /// report, including wall-clock-independent fields.
    #[test]
    fn sharded_runs_replay_exactly(
        lps in 2usize..5,
        links in proptest::collection::vec(
            (0usize..8, 0usize..8, 200u64..2_000), 1..5),
        shards in 1usize..5,
    ) {
        let p = Params {
            lps,
            links,
            periods: vec![90, 130, 250],
            emit_every: 2,
            fault_ns: (0, 0),
            horizon_ns: 8_000,
        };
        let a = run(&p, shards);
        let b = run(&p, shards);
        prop_assert!(a.same_outcome(&b));
        prop_assert_eq!(a.rounds, b.rounds);
    }
}
