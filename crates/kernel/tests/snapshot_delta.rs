//! Incremental snapshots and in-place warm forks (ISSUE 9 tentpole).
//!
//! Contracts under test:
//! * `rewind` onto a captured ancestor snapshot, then re-running the tail,
//!   is bit-identical (`state_hash`, trace, metrics, component state) to a
//!   cold restore into a fresh simulator — and to the straight run.
//! * A `snapshot_delta` chain replayed with `restore_delta` onto a live
//!   simulator reproduces the exact `state_hash` of the full snapshot taken
//!   at each chain link, and resuming from the chain tip matches the
//!   straight run.
//! * Delta documents over mostly-idle models are smaller than full
//!   snapshots, and dirty-component counts reflect only touched components.
//! * Chain-integrity violations (wrong parent, uncaptured rewind target)
//!   surface as typed `SimErrorKind::SnapshotChain` errors.

use drcf_kernel::prelude::*;
use drcf_kernel::snapshot;
use proptest::prelude::*;

/// Clocked counter writing a signal and feeding a FIFO — always dirty
/// between captures while the clock runs.
struct Pulse {
    clk: ClockRef,
    sig: SignalRef<u64>,
    fifo: FifoRef<u64>,
    edges: u64,
}

impl Component for Pulse {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.subscribe_clock(self.clk, Edge::Pos),
            MsgKind::ClockEdge(..) => {
                self.edges += 1;
                api.write(self.sig, self.edges);
                if self.edges.is_multiple_of(4) {
                    let _ = api.fifo_try_put(self.fifo, self.edges);
                }
            }
            _ => {}
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj().with("edges", drcf_kernel::json::ju64(self.edges)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.edges = snapshot::u64_field(state, "edges")?;
        Ok(())
    }
}

/// FIFO drain with a running sum; dirty only when the FIFO delivers.
struct Drain {
    fifo: FifoRef<u64>,
    sum: u64,
}

impl Component for Drain {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.subscribe_fifo(self.fifo),
            MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                while let Some(v) = api.fifo_try_get(self.fifo) {
                    self.sum += v;
                }
            }
            _ => {}
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj().with("sum", drcf_kernel::json::ju64(self.sum)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.sum = snapshot::u64_field(state, "sum")?;
        Ok(())
    }
}

/// A component with a deliberately bulky state document that goes quiet
/// after t=25ns: after its last timer fires it is never dispatched again,
/// so delta documents must stop carrying its payload.
struct Sleeper {
    blob: Vec<u64>,
    wakes: u64,
}

impl Component for Sleeper {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.timer_in(SimDuration::ns(25), 1),
            MsgKind::Timer(1) => {
                self.wakes += 1;
                for (i, w) in self.blob.iter_mut().enumerate() {
                    *w = (i as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(self.wakes);
                }
            }
            _ => {}
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("wakes", drcf_kernel::json::ju64(self.wakes))
            .with(
                "blob",
                Json::Arr(
                    self.blob
                        .iter()
                        .map(|&w| drcf_kernel::json::ju64(w))
                        .collect(),
                ),
            ))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.wakes = snapshot::u64_field(state, "wakes")?;
        let blob = match snapshot::field(state, "blob")? {
            Json::Arr(items) => items
                .iter()
                .map(|j| {
                    drcf_kernel::json::ju64_of(j)
                        .ok_or_else(|| snapshot::err("sleeper blob word is not a u64"))
                })
                .collect::<SimResult<Vec<u64>>>()?,
            _ => return Err(snapshot::err("sleeper blob is not an array")),
        };
        self.blob = blob;
        Ok(())
    }
}

struct World {
    sim: Simulator,
    pulse: ComponentId,
    drain: ComponentId,
    sig: SignalRef<u64>,
}

fn build_world() -> World {
    let mut sim = Simulator::new();
    sim.enable_trace();
    sim.enable_observe(256);
    let clk = sim.add_clock(
        "clk",
        SimDuration::ns(10),
        SimDuration::ns(4),
        SimDuration::ns(1),
    );
    let sig = sim.add_signal("pulse", 0u64);
    sim.trace_signal(sig);
    let fifo = sim.add_fifo::<u64>("queue", 4);
    let pulse = sim.add(
        "pulse",
        Pulse {
            clk,
            sig,
            fifo,
            edges: 0,
        },
    );
    let drain = sim.add("drain", Drain { fifo, sum: 0 });
    sim.add(
        "sleeper",
        Sleeper {
            blob: vec![0; 4096],
            wakes: 0,
        },
    );
    World {
        sim,
        pulse,
        drain,
        sig,
    }
}

fn at(ns: u64) -> SimTime {
    SimTime::ZERO + SimDuration::ns(ns)
}

type Observation = (String, Vec<SimEvent>, u64, u64, u64, u64);

fn observe(w: &mut World) -> Observation {
    (
        match w.sim.tracer() {
            Some(t) => t.render(),
            None => String::new(),
        },
        w.sim.observe_events(),
        w.sim.signal_change_count(w.sig),
        w.sim.get::<Pulse>(w.pulse).edges,
        w.sim.get::<Drain>(w.drain).sum,
        w.sim.snapshot().expect("observation snapshot").state_hash(),
    )
}

fn straight_observation(t2: u64) -> Observation {
    let mut w = build_world();
    w.sim.run_until(at(t2)).expect("straight run");
    observe(&mut w)
}

#[test]
fn rewind_matches_cold_restore_and_straight_run() {
    let want = straight_observation(400);

    let mut w = build_world();
    w.sim.run_until(at(45)).expect("prefix");
    let base = w.sim.snapshot().expect("base snapshot");

    // Run on past the fork point, then rewind the same live simulator.
    w.sim.run_until(at(230)).expect("overshoot");
    w.sim.rewind(&base).expect("rewind");
    assert_eq!(
        w.sim.snapshot().expect("post-rewind snapshot").state_hash(),
        base.state_hash(),
        "rewind must land exactly on the captured state"
    );
    // Rewind again from the capture point itself (zero dirty components).
    w.sim.rewind(&base).expect("rewind from capture point");
    w.sim.run_until(at(400)).expect("tail after rewind");
    assert_eq!(observe(&mut w), want, "rewound tail diverged");
}

#[test]
fn rewind_is_repeatable_across_many_forks() {
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("prefix");
    let base = w.sim.snapshot().expect("base");
    let mut hashes = Vec::new();
    for i in 0..5u64 {
        w.sim.rewind(&base).expect("rewind");
        w.sim
            .run_until(at(45 + 40 * (i + 1)))
            .expect("variable-length tail");
        hashes.push(w.sim.snapshot().expect("tip").state_hash());
    }
    // Each tail length must reproduce the straight-run hash at that time.
    for (i, h) in hashes.iter().enumerate() {
        let t = 45 + 40 * (i as u64 + 1);
        let mut straight = build_world();
        straight.sim.run_until(at(t)).expect("straight");
        assert_eq!(
            straight.sim.snapshot().expect("straight tip").state_hash(),
            *h,
            "fork {i} to t={t}ns diverged from the straight run"
        );
    }
}

#[test]
fn delta_chain_restore_is_bit_identical_to_full_restore() {
    // Straight run capturing full snapshots at three checkpoints.
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("to t1");
    let full1 = w.sim.snapshot().expect("full1");
    w.sim.run_until(at(120)).expect("to t2");
    let full2 = w.sim.snapshot().expect("full2");
    let delta12 = w.sim.snapshot_delta(&full1).expect("delta1->2");
    w.sim.run_until(at(200)).expect("to t3");
    let delta23 = w
        .sim
        .snapshot_delta_from(delta12.child_hash())
        .expect("delta2->3");
    let full3 = w.sim.snapshot().expect("full3");

    assert_eq!(delta12.parent_hash(), full1.state_hash());
    assert_eq!(delta12.child_hash(), full2.state_hash());
    assert_eq!(delta23.child_hash(), full3.state_hash());

    // Text round-trip of a delta document.
    let delta12 = drcf_kernel::snapshot::SnapshotDelta::parse(&delta12.to_text())
        .expect("delta text round-trip");

    // Fresh simulator: full restore to t1, then patch forward twice.
    let mut fresh = build_world();
    fresh.sim.restore(&full1).expect("restore full1");
    fresh.sim.restore_delta(&delta12).expect("apply delta1->2");
    assert_eq!(
        fresh.sim.snapshot().expect("at t2").state_hash(),
        full2.state_hash(),
        "delta restore to t2 is not bit-identical"
    );
    // The snapshot above re-captured t2, so the chain head still matches.
    fresh.sim.restore_delta(&delta23).expect("apply delta2->3");
    assert_eq!(
        fresh.sim.snapshot().expect("at t3").state_hash(),
        full3.state_hash(),
        "delta restore to t3 is not bit-identical"
    );

    // Resuming from the chain tip matches the straight run.
    let want = straight_observation(400);
    fresh.sim.run_until(at(400)).expect("tail");
    assert_eq!(
        fresh.sim.snapshot().expect("resumed tip").state_hash(),
        want.5,
        "resume from chain tip diverged from the straight run"
    );
}

#[test]
fn delta_documents_shrink_when_components_idle() {
    let mut w = build_world();
    // Past t=25ns the Sleeper never runs again: deltas must drop its blob.
    w.sim.run_until(at(100)).expect("prefix");
    let full = w.sim.snapshot().expect("full");
    w.sim.run_until(at(140)).expect("advance");
    let delta = w.sim.snapshot_delta(&full).expect("delta");
    assert!(
        delta.byte_len() < full.byte_len() / 2,
        "delta ({}) should be far smaller than full ({}) with the sleeper idle",
        delta.byte_len(),
        full.byte_len()
    );
    let m = w.sim.metrics();
    assert_eq!(m.snapshot_delta_bytes, delta.byte_len());
    // A delta capture internally builds the child full document (its hash
    // anchors the chain), so the full-bytes counter tracks the t=140
    // document, which is at least as large as the t=100 one.
    assert!(m.snapshot_full_bytes >= full.byte_len());
    assert!(
        m.snapshot_dirty_components >= 1 && m.snapshot_dirty_components <= 2,
        "only pulse (and possibly drain) ran in 100..140ns, got {}",
        m.snapshot_dirty_components
    );
}

#[test]
fn restore_delta_rejects_wrong_parent() {
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("t1");
    let full1 = w.sim.snapshot().expect("full1");
    w.sim.run_until(at(120)).expect("t2");
    let full2 = w.sim.snapshot().expect("full2");
    w.sim.run_until(at(200)).expect("t3");
    let delta = w.sim.snapshot_delta(&full2).expect("delta t2->t3");

    // A fresh sim restored to t1 is NOT standing at the delta's parent.
    let mut fresh = build_world();
    fresh.sim.restore(&full1).expect("restore full1");
    let err = fresh
        .sim
        .restore_delta(&delta)
        .expect_err("parent mismatch must be loud");
    assert_eq!(err.kind, SimErrorKind::SnapshotChain, "{err}");
    assert!(err.message.contains("parent hash"), "{err}");
}

#[test]
fn rewind_rejects_uncaptured_parent() {
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("t1");
    let foreign = {
        let mut other = build_world();
        other.sim.run_until(at(45)).expect("other t1");
        // Perturb so the hash cannot collide with any capture of `w`.
        other.sim.run_until(at(55)).expect("other t1b");
        other.sim.snapshot().expect("foreign snapshot")
    };
    let err = w
        .sim
        .rewind(&foreign)
        .expect_err("foreign snapshot is not a captured ancestor");
    assert_eq!(err.kind, SimErrorKind::SnapshotChain, "{err}");
    assert!(err.message.contains("not captured"), "{err}");
}

#[test]
fn snapshot_chain_rebases_and_restores() {
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("base point");
    let base = w.sim.snapshot().expect("base");
    let mut chain = SnapshotChain::new(base, 2);

    let checkpoints = [90u64, 130, 170, 210, 250];
    let mut tip_hashes = Vec::new();
    for &t in &checkpoints {
        w.sim.run_until(at(t)).expect("advance");
        let doc = chain.checkpoint(&mut w.sim).expect("checkpoint");
        tip_hashes.push(doc.tip_hash());
    }
    // delta_chain = 2: docs = base, D, D, Full(rebase), D, D.
    let fulls = chain
        .docs()
        .iter()
        .filter(|d| matches!(d, ChainDoc::Full(_)))
        .count();
    assert_eq!(fulls, 2, "one rebase expected after two deltas");
    assert_eq!(chain.len(), 6);

    // Restoring the chain into a fresh simulator lands on the tip hash and
    // resumes identically to the straight run.
    let mut fresh = build_world();
    chain.restore_into(&mut fresh.sim).expect("chain restore");
    assert_eq!(
        fresh.sim.snapshot().expect("tip").state_hash(),
        *tip_hashes.last().expect("tips recorded"),
    );
    fresh.sim.run_until(at(400)).expect("tail");
    assert_eq!(
        fresh.sim.snapshot().expect("final").state_hash(),
        straight_observation(400).5,
        "chain-restored run diverged from the straight run"
    );
}

#[test]
fn chain_push_rejects_broken_linkage() {
    let mut w = build_world();
    w.sim.run_until(at(45)).expect("t1");
    let base = w.sim.snapshot().expect("base");
    let mut chain = SnapshotChain::new(base.clone(), 4);
    w.sim.run_until(at(90)).expect("t2");
    let full2 = w.sim.snapshot().expect("full2");
    w.sim.run_until(at(130)).expect("t3");
    let skip = w.sim.snapshot_delta(&full2).expect("delta skipping a link");
    // `skip` chains t2->t3 but the chain tip is the t1 base.
    let err = chain
        .push(ChainDoc::Delta(skip))
        .expect_err("broken linkage must be rejected");
    assert_eq!(err.kind, SimErrorKind::SnapshotChain, "{err}");
    assert!(err.message.contains("does not match chain tip"), "{err}");
}

/// Regression (ISSUE 10): delta documents used to carry the recorder and
/// tracer globals in full on every capture, dominating delta size on
/// traced runs. With epoch stamping, a capture over an idle recorder and
/// tracer elides both — the delta must be strictly smaller than the
/// globals payload it used to embed.
#[test]
fn unchanged_recorder_and_tracer_are_elided_from_deltas() {
    let mut w = build_world();
    w.sim.run_until(at(100)).expect("prefix");
    let full = w.sim.snapshot().expect("full");
    // Nothing ran between the captures, so the recorder/tracer epochs are
    // unchanged and the delta carries markers instead of payloads.
    let delta = w.sim.snapshot_delta(&full).expect("delta");
    assert!(
        w.sim.recorder().emitted() > 0,
        "the prefix must have produced recorder traffic for this test to bite"
    );
    let globals_bytes = (w.sim.recorder().snapshot_json().to_string().len()
        + w.sim
            .tracer()
            .map_or(0, |t| t.snapshot_json().to_string().len())) as u64;
    assert!(
        delta.byte_len() < globals_bytes,
        "idle-globals delta ({}) must be strictly below the recorder+tracer \
         payload ({}) deltas used to carry in full",
        delta.byte_len(),
        globals_bytes
    );
    for key in ["recorder", "tracer"] {
        assert!(
            snapshot::is_unchanged_mark(snapshot::field(delta.json(), key).expect(key)),
            "{key} should be elided as an unchanged marker"
        );
    }
}

/// The elision is sound across simulators: a delta whose globals are
/// markers applies onto a fresh process-equivalent simulator standing at
/// the parent, landing bit-identically on the child hash and resuming
/// identically to the straight run.
#[test]
fn elided_globals_apply_bit_identically_across_simulators() {
    // No tracer, recorder disabled: the epochs never move, so every delta
    // elides the globals while the component state keeps changing.
    fn build_quiet() -> World {
        let mut sim = Simulator::new();
        let clk = sim.add_clock(
            "clk",
            SimDuration::ns(10),
            SimDuration::ns(4),
            SimDuration::ns(1),
        );
        let sig = sim.add_signal("pulse", 0u64);
        let fifo = sim.add_fifo::<u64>("queue", 4);
        let pulse = sim.add(
            "pulse",
            Pulse {
                clk,
                sig,
                fifo,
                edges: 0,
            },
        );
        let drain = sim.add("drain", Drain { fifo, sum: 0 });
        World {
            sim,
            pulse,
            drain,
            sig,
        }
    }

    let mut w = build_quiet();
    w.sim.run_until(at(45)).expect("t1");
    let full1 = w.sim.snapshot().expect("full1");
    w.sim.run_until(at(120)).expect("t2");
    let delta = w.sim.snapshot_delta(&full1).expect("delta");
    let full2 = w.sim.snapshot().expect("full2");
    assert!(
        snapshot::is_unchanged_mark(snapshot::field(delta.json(), "recorder").expect("recorder")),
        "disabled recorder must be elided even across a run slice"
    );

    let mut fresh = build_quiet();
    fresh.sim.restore(&full1).expect("restore full1");
    fresh.sim.restore_delta(&delta).expect("apply delta");
    assert_eq!(
        fresh.sim.snapshot().expect("at t2").state_hash(),
        full2.state_hash(),
        "marker delta must land exactly on the child state"
    );
    fresh.sim.run_until(at(300)).expect("tail");
    w.sim.run_until(at(300)).expect("straight tail");
    assert_eq!(
        fresh.sim.snapshot().expect("resumed tip").state_hash(),
        w.sim.snapshot().expect("straight tip").state_hash(),
        "resume from a marker delta diverged from the straight run"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random checkpoint schedules with random rebase periods: the chain
    /// restore lands on the same `state_hash` as the live simulator at the
    /// final checkpoint, and warm-rewinding back to the base reproduces the
    /// base hash — regardless of where the checkpoints fall relative to
    /// clock edges, FIFO traffic, or the sleeper's burst.
    #[test]
    fn random_schedules_delta_chain_bit_identity(
        base_ns in 5u64..60,
        steps in proptest::collection::vec(10u64..70, 1..6),
        delta_chain in 0usize..4,
    ) {
        let mut w = build_world();
        w.sim.run_until(at(base_ns)).expect("base point");
        let base = w.sim.snapshot().expect("base");
        let mut chain = SnapshotChain::new(base.clone(), delta_chain);
        let mut t = base_ns;
        for &d in &steps {
            t += d;
            w.sim.run_until(at(t)).expect("advance");
            chain.checkpoint(&mut w.sim).expect("checkpoint");
        }
        let live_tip = w.sim.snapshot().expect("live tip").state_hash();
        prop_assert_eq!(chain.tip_hash(), live_tip);

        let mut fresh = build_world();
        chain.restore_into(&mut fresh.sim).expect("chain restore");
        prop_assert_eq!(
            fresh.sim.snapshot().expect("restored tip").state_hash(),
            live_tip
        );

        // Warm fork the original live sim (which captured the base) back to
        // the base and re-run: the tip hash must reproduce.
        w.sim.rewind(&base).expect("rewind to base");
        prop_assert_eq!(
            w.sim.snapshot().expect("rewound").state_hash(),
            base.state_hash()
        );
        w.sim.run_until(at(t)).expect("re-run tail");
        prop_assert_eq!(
            w.sim.snapshot().expect("re-run tip").state_hash(),
            live_tip
        );
    }
}
