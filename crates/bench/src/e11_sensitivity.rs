//! E11 — §5.5 / §6: parameter-accuracy sensitivity.
//!
//! "Some research will be done on finding the correct parameters at
//! system-level to reach good accuracy when compared to actual
//! implementation in some selected target reconfigurable hardware."
//!
//! Before that calibration exists, a designer needs to know how much an
//! estimation error in the §5.3 parameters distorts system-level results.
//! The sweep perturbs the configuration-size estimate and the extra
//! reconfiguration delay by ±50% and reports the induced makespan error.

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r2, ExperimentResult};

/// Run with all context parameters scaled: config sizes by `size_scale`
/// percent, extra delays by `delay_scale` percent.
pub fn run_scaled(size_scale: u64, delay_scale: u64) -> RunRecord {
    let w = wireless_receiver(4, 64);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    // Scale a technology's parameters to emulate estimation error.
    let mut tech = varicore();
    tech.config_words_per_kgate = (tech.config_words_per_kgate * size_scale) / 100;
    tech.extra_reconfig_cycles = (tech.extra_reconfig_cycles * delay_scale) / 100;
    let spec = SocSpec {
        memory: drcf_bus::prelude::MemoryConfig {
            base: 0,
            size_words: 0x20000,
            ..drcf_bus::prelude::MemoryConfig::default()
        },
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.1, 1),
            candidates: names,
            technology: tech,
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok);
    RunRecord::from_metrics(
        "sensitivity",
        vec![
            ("size%".into(), size_scale.to_string()),
            ("delay%".into(), delay_scale.to_string()),
        ],
        &m,
    )
}

/// Execute E11.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E11",
        "§5.5/§6 — sensitivity of system-level results to §5.3 parameter estimation error",
    );
    let scales = [50u64, 75, 100, 125, 150];
    let size_points: Vec<RunRecord> = scales.iter().map(|&s| run_scaled(s, 100)).collect();
    let delay_points: Vec<RunRecord> = scales.iter().map(|&s| run_scaled(100, s)).collect();
    let nominal = size_points[2].makespan_ns;

    let mut t = Table::new(
        "makespan vs estimation error (wireless receiver, VariCore, config over bus)",
        &["parameter", "scale", "makespan", "error vs nominal"],
    );
    for (recs, what) in [
        (&size_points, "config size"),
        (&delay_points, "extra delay"),
    ] {
        for r in recs.iter() {
            let scale = r
                .param(if what == "config size" {
                    "size%"
                } else {
                    "delay%"
                })
                .unwrap();
            t.row(vec![
                what.to_string(),
                format!("{scale}%"),
                fmt_ns(r.makespan_ns),
                format!("{:+.1}%", (r.makespan_ns / nominal - 1.0) * 100.0),
            ]);
        }
    }
    res.tables.push(t);

    // Makespan is monotone in both parameters.
    for series in [&size_points, &delay_points] {
        for w in series.windows(2) {
            assert!(
                w[1].makespan_ns >= w[0].makespan_ns,
                "makespan must be monotone in the parameter"
            );
        }
    }
    let size_sens = (size_points[4].makespan_ns - size_points[0].makespan_ns) / nominal;
    let delay_sens = (delay_points[4].makespan_ns - delay_points[0].makespan_ns) / nominal;
    assert!(
        size_sens > delay_sens,
        "transfer volume must dominate the fixed delay for bus-loaded configs"
    );
    res.summary.push(format!(
        "a ±50% error in the configuration-size estimate moves makespan by {}% end-to-end, vs {}% for the extra-delay estimate — calibration effort belongs on the transfer volume",
        r2(size_sens * 100.0),
        r2(delay_sens * 100.0)
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_monotone_sensitivity() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 10);
        assert_eq!(r.summary.len(), 1);
    }
}
