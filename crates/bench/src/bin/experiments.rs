//! Regenerate every experiment table and print it.
//!
//! `cargo run --release -p drcf-bench --bin experiments [--markdown] [ids...]`
//!
//! `--bench-json` instead runs the kernel hot-path throughput suite and
//! writes `BENCH_kernel.json` to the current directory (printing it too),
//! the document that tracks the repo's perf trajectory.
//!
//! `--trace-out <path>` instead runs a small traced wireless-receiver
//! scenario and writes a Perfetto-loadable Chrome trace-event file there,
//! validating that the written JSON parses before exiting.

/// Event dispatch allocates roughly 1.3 small blocks per event (boxed
/// message payloads plus burst-data vectors); the pooled allocator turns
/// those into thread-local free-list hits. Benchmarks therefore measure
/// the allocator the workspace recommends for simulation binaries.
#[global_allocator]
static ALLOC: drcf_kernel::mempool::PoolAlloc = drcf_kernel::mempool::PoolAlloc;

fn write_trace(path: &str) {
    use drcf_dse::prelude::Json;
    use drcf_soc::prelude::*;

    let w = wireless_receiver(2, 32);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            candidates: names.clone(),
            technology: drcf_core::prelude::morphosys(),
            geometry: drcf_dse::prelude::size_fabric(&w, &names, 1.2, 1),
            config_path: SocConfigPath::SystemBus,
            scheduler: drcf_core::prelude::SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        trace_capacity: Some(1 << 18),
        ..SocSpec::default()
    };
    let (m, soc) = run_soc(build_soc(&w, &spec).expect("build traced scenario"));
    assert!(m.ok, "traced scenario failed: {:?}", m.error);
    drcf_dse::prelude::write_chrome_trace(&soc.sim, std::path::Path::new(path))
        .expect("write trace file");
    // Self-check: the file we just wrote must parse and contain events.
    let text = std::fs::read_to_string(path).expect("read trace back");
    let doc = Json::parse(&text).expect("trace JSON must parse");
    let n = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .expect("traceEvents array");
    assert!(n > 0, "trace is empty");
    eprintln!("wrote {path} ({n} trace events, JSON validated)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench-json") {
        let doc = drcf_bench::hotpath::bench_json().to_string_pretty();
        println!("{doc}");
        std::fs::write("BENCH_kernel.json", format!("{doc}\n")).expect("write BENCH_kernel.json");
        eprintln!("wrote BENCH_kernel.json");
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let path = args.get(i + 1).expect("--trace-out needs a path");
        write_trace(path);
        return;
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    for r in drcf_bench::run_all() {
        if !ids.is_empty() && !ids.iter().any(|i| i.eq_ignore_ascii_case(&r.id)) {
            continue;
        }
        if markdown {
            print!("{}", r.render_markdown());
        } else {
            print!("{}", r.render());
        }
    }
}
