//! Regenerate every experiment table and print it.
//!
//! `cargo run --release -p drcf-bench --bin experiments [--markdown] [ids...]`
//!
//! `--bench-json` instead runs the kernel hot-path throughput suite and
//! writes `BENCH_kernel.json` to the current directory (printing it too),
//! the document that tracks the repo's perf trajectory.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench-json") {
        let doc = drcf_bench::hotpath::bench_json().to_string_pretty();
        println!("{doc}");
        std::fs::write("BENCH_kernel.json", format!("{doc}\n")).expect("write BENCH_kernel.json");
        eprintln!("wrote BENCH_kernel.json");
        return;
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    for r in drcf_bench::run_all() {
        if !ids.is_empty() && !ids.iter().any(|i| i.eq_ignore_ascii_case(&r.id)) {
            continue;
        }
        if markdown {
            print!("{}", r.render_markdown());
        } else {
            print!("{}", r.render());
        }
    }
}
