//! Regenerate every experiment table and print it.
//!
//! `cargo run --release -p drcf-bench --bin experiments [--markdown] [ids...]`
//!
//! `--bench-json` instead runs the kernel hot-path throughput suite and
//! writes `BENCH_kernel.json` to the current directory (printing it too),
//! the document that tracks the repo's perf trajectory.
//!
//! `--trace-out <path>` instead runs a small traced wireless-receiver
//! scenario and writes a Perfetto-loadable Chrome trace-event file there,
//! validating that the written JSON parses before exiting.
//!
//! `--snapshot-out <path> [--at-ns N] [--deltas K]` runs the canonical
//! wireless-receiver DRCF scenario up to `N` ns (default: half its
//! makespan) and writes the deterministic snapshot document there. With
//! `--deltas K` it then continues the same timeline in `K` equal steps
//! toward the makespan, writing one incremental `drcf-snapshot-delta-v1`
//! document per step as `<path>.d1 … <path>.dK`, each chained to its
//! predecessor by parent hash. `--resume-from <path>` restores the
//! snapshot into a freshly built system, applies any `<path>.dN` chain in
//! order (a parent-hash mismatch is reported as a typed `snapshot-chain`
//! error, exit code 2), runs to completion, and cross-checks the resumed
//! metrics against a straight run before printing them.
//!
//! `--shards N` runs the multi-fabric `sharded_soc` bench topology with N
//! worker shards against the single-threaded oracle, verifies the reports
//! are bit-identical, and prints both wall times, the live speedup, and
//! the critical-link and parallel-efficiency reports from the run profile.
//!
//! `--shards N --trace-out <path>` composes the two: it runs the E12
//! hierarchical graph with every LP's event recorder enabled, merges all
//! LPs into one Perfetto-loadable Chrome trace document at `path` (one
//! process track per LP plus synthesized `round` spans on each kernel
//! track), and self-validates the written file before exiting.

/// Event dispatch allocates roughly 1.3 small blocks per event (boxed
/// message payloads plus burst-data vectors); the pooled allocator turns
/// those into thread-local free-list hits. Benchmarks therefore measure
/// the allocator the workspace recommends for simulation binaries.
#[global_allocator]
static ALLOC: drcf_kernel::mempool::PoolAlloc = drcf_kernel::mempool::PoolAlloc;

fn write_trace(path: &str) {
    use drcf_dse::prelude::Json;
    use drcf_soc::prelude::*;

    let w = wireless_receiver(2, 32);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            candidates: names.clone(),
            technology: drcf_core::prelude::morphosys(),
            geometry: drcf_dse::prelude::size_fabric(&w, &names, 1.2, 1),
            config_path: SocConfigPath::SystemBus,
            scheduler: drcf_core::prelude::SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        trace_capacity: Some(1 << 18),
        ..SocSpec::default()
    };
    let (m, soc) = run_soc(build_soc(&w, &spec).expect("build traced scenario"));
    assert!(m.ok, "traced scenario failed: {:?}", m.error);
    drcf_dse::prelude::write_chrome_trace(&soc.sim, std::path::Path::new(path))
        .expect("write trace file");
    // Self-check: the file we just wrote must parse and contain events.
    let text = std::fs::read_to_string(path).expect("read trace back");
    let doc = Json::parse(&text).expect("trace JSON must parse");
    let n = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .map(<[Json]>::len)
        .expect("traceEvents array");
    assert!(n > 0, "trace is empty");
    eprintln!("wrote {path} ({n} trace events, JSON validated)");
}

/// The fixed scenario the snapshot flags operate on: both `--snapshot-out`
/// and `--resume-from` must describe the identical system or restore will
/// reject the document.
fn snapshot_scenario() -> (drcf_soc::prelude::Workload, drcf_soc::prelude::SocSpec) {
    use drcf_soc::prelude::*;
    let w = wireless_receiver(2, 32);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            candidates: names.clone(),
            technology: drcf_core::prelude::morphosys(),
            geometry: drcf_dse::prelude::size_fabric(&w, &names, 1.2, 1),
            config_path: SocConfigPath::SystemBus,
            scheduler: drcf_core::prelude::SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    (w, spec)
}

fn write_snapshot(path: &str, at_ns: Option<u64>, deltas: usize) {
    use drcf_kernel::prelude::{SimDuration, SimTime};
    use drcf_soc::prelude::*;
    let (w, spec) = snapshot_scenario();
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build snapshot scenario"));
    assert!(m.ok, "snapshot scenario failed: {:?}", m.error);
    let makespan = m.makespan;
    let at = match at_ns {
        Some(n) => SimDuration::ns(n),
        None => SimDuration::fs(makespan.as_fs() / 2),
    };
    let snap = snapshot_prefix(&w, &spec, at).expect("capture snapshot");
    let text = snap.to_text();
    std::fs::write(path, &text).expect("write snapshot file");
    eprintln!(
        "wrote {path} ({} bytes, snapshot at {} ns)",
        text.len(),
        at.as_fs() / 1_000_000
    );
    if deltas == 0 {
        return;
    }
    // Continue the same timeline in `deltas` equal steps toward the
    // makespan, writing one incremental document per step: `path.d1` is
    // chained to the full snapshot, `path.dK` to `path.d(K-1)`.
    let mut soc = restore_soc(&w, &spec, &snap).expect("restore for delta chain");
    let mut parent_hash = snap.state_hash();
    let span = makespan.as_fs().saturating_sub(at.as_fs());
    for k in 1..=deltas {
        let t = at.as_fs() + span * k as u64 / deltas as u64;
        soc.sim
            .run_until(SimTime::ZERO + SimDuration::fs(t))
            .expect("advance to delta point");
        let delta = soc
            .sim
            .snapshot_delta_from(parent_hash)
            .expect("capture delta");
        parent_hash = delta.child_hash();
        let dp = format!("{path}.d{k}");
        let dtext = delta.to_text();
        std::fs::write(&dp, &dtext).expect("write delta file");
        eprintln!(
            "wrote {dp} ({} bytes, delta at {} ns, parent {:016x} -> child {:016x})",
            dtext.len(),
            t / 1_000_000,
            delta.parent_hash(),
            delta.child_hash()
        );
    }
}

fn resume_snapshot(path: &str) {
    use drcf_kernel::prelude::{Snapshot, SnapshotDelta};
    use drcf_soc::prelude::*;
    let (w, spec) = snapshot_scenario();
    let text = std::fs::read_to_string(path).expect("read snapshot file");
    let snap = Snapshot::parse(&text).expect("snapshot must parse");
    let mut soc = restore_soc(&w, &spec, &snap).expect("restore snapshot");
    // Apply any chained delta documents sitting next to the snapshot
    // (`path.d1`, `path.d2`, ...) in order. A delta whose parent hash does
    // not match the state we are standing at is a typed `snapshot-chain`
    // error, reported as such instead of a panic.
    let mut k = 1usize;
    loop {
        let dp = format!("{path}.d{k}");
        let Ok(dtext) = std::fs::read_to_string(&dp) else {
            break;
        };
        let delta = SnapshotDelta::parse(&dtext).expect("delta must parse");
        if let Err(e) = soc.sim.restore_delta(&delta) {
            eprintln!("error[{}]: cannot apply {dp}: {e}", e.kind.label());
            std::process::exit(2);
        }
        eprintln!(
            "applied {dp} (parent {:016x} -> child {:016x})",
            delta.parent_hash(),
            delta.child_hash()
        );
        k += 1;
    }
    let applied = k - 1;
    let m = run_soc_mut(&mut soc);
    assert!(m.ok, "resumed run failed: {:?}", m.error);
    // The resumed run must land exactly where a straight run does.
    let (straight, _) = run_soc(build_soc(&w, &spec).expect("build straight run"));
    assert_eq!(
        m.makespan, straight.makespan,
        "resumed run diverged from the straight run"
    );
    assert_eq!(m.bus_words, straight.bus_words, "bus traffic diverged");
    assert_eq!(m.switches, straight.switches, "context switches diverged");
    println!(
        "resumed from {path} (+{applied} delta{}): makespan {} ns, {} bus words, {} context \
         switches (verified bit-identical to a straight run)",
        if applied == 1 { "" } else { "s" },
        m.makespan.as_fs() / 1_000_000,
        m.bus_words,
        m.switches
    );
}

/// Assert bit-identity between an oracle and a sharded run, printing the
/// resolved divergence detail (time, link, seq, both hashes) when the
/// window protocol went wrong instead of a bare slice index.
fn assert_identical(
    oracle: &drcf_kernel::prelude::ShardRunReport,
    par: &drcf_kernel::prelude::ShardRunReport,
    what: &str,
) {
    if oracle.same_outcome(par) {
        return;
    }
    match par.divergence_detail(oracle) {
        Some(d) => eprintln!("{what} diverged from the oracle: {d}"),
        None => eprintln!(
            "{what} diverged from the oracle outside the hashed slices \
             (rounds {} vs {}, messages {} vs {})",
            par.rounds, oracle.rounds, par.messages, oracle.messages
        ),
    }
    panic!("{what} diverged from the oracle");
}

/// Run the E12 graph with per-LP tracing at `shards` shards, verify
/// bit-identity against the traced oracle, merge every LP into one
/// Chrome trace document at `path`, and self-validate the written file.
fn run_sharded_traced(shards: usize, path: &str) {
    use drcf_bench::e12_hierarchy::run_sharded_e12_with;
    use drcf_bench::hotpath::{sharded_e12_graph, SHARDED_E12_HORIZON};
    use drcf_dse::prelude::Json;
    use drcf_kernel::prelude::{ShardConfig, SimDuration, SimTime};

    let graph = sharded_e12_graph();
    // A window cap well above the bridges' 10 us lookahead makes the cut
    // links the strictly-binding horizon term, so the critical-link
    // report attributes stalls to a named bridge rather than to the cap.
    let cfg = ShardConfig::to(SimTime::ZERO + SHARDED_E12_HORIZON)
        .hash_slices(true)
        .window(SimDuration::us(100))
        .trace(1 << 16);
    let oracle = run_sharded_e12_with(&graph, &cfg.clone().shards(1));
    let par = run_sharded_e12_with(&graph, &cfg.clone().shards(shards));
    assert_identical(&oracle.report, &par.report, "traced sharded E12 run");
    drcf_dse::prelude::write_chrome_trace_sharded(&par.report, std::path::Path::new(path))
        .expect("write merged sharded trace");
    // Self-check: the merged document must parse, carry one process track
    // per LP, and contain the synthesized round/horizon spans.
    let text = std::fs::read_to_string(path).expect("read merged trace back");
    let doc = Json::parse(&text).expect("merged trace JSON must parse");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    let processes = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .count();
    assert_eq!(
        processes,
        par.report.lps.len(),
        "merged trace must carry one process track per LP"
    );
    let rounds = events
        .iter()
        .filter(|e| {
            e.get("name").and_then(Json::as_str) == Some("round")
                && e.get("ph").and_then(Json::as_str) == Some("B")
        })
        .count();
    assert!(rounds > 0, "merged trace has no round spans");
    println!(
        "sharded_e12 traced: {} LPs over {} shards, {} events merged into {path} \
         ({} trace events, {processes} process tracks, {rounds} round spans, JSON validated)",
        par.report.lps.len(),
        par.report.shards,
        par.events(),
        events.len(),
    );
    print!("{}", par.critical_links().render());
    print!("{}", par.efficiency().render());
}

fn run_sharded(shards: usize) {
    use std::time::Instant;
    let spec = drcf_bench::hotpath::sharded_soc_spec();
    let t0 = Instant::now();
    let oracle = spec.run_with_shards(1).expect("oracle run");
    let serial = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let par = spec.run_with_shards(shards).expect("sharded run");
    let wall = t1.elapsed().as_secs_f64();
    assert_identical(&oracle.report, &par.report, "sharded_soc run");
    println!(
        "sharded_soc: {} tiles, horizon {} ns, {} events",
        spec.tiles,
        spec.horizon.as_fs() / 1_000_000,
        par.events(),
    );
    println!(
        "  serial (1 shard):  {serial:.3}s\n  sharded ({} shards, {} rounds, {} cross-shard \
         messages): {wall:.3}s\n  speedup {:.2}x — reports bit-identical (per-LP metrics, \
         probes, {} state-hash slices per tile)",
        par.report.shards,
        par.report.rounds,
        par.report.messages,
        serial / wall,
        par.report.lps.first().map_or(0, |l| l.slice_hashes.len()),
    );
    print!("{}", par.report.profile.efficiency().render());

    // The same exercise for the automatically partitioned E12 hierarchical
    // topology: an arbitrary SocGraph cut at its bus bridges.
    use drcf_bench::e12_hierarchy::{e12_switches, run_sharded_e12};
    use drcf_bench::hotpath::{sharded_e12_graph, SHARDED_E12_HORIZON};
    let graph = sharded_e12_graph();
    let t2 = Instant::now();
    let oracle = run_sharded_e12(&graph, 1, SHARDED_E12_HORIZON);
    let serial = t2.elapsed().as_secs_f64();
    let t3 = Instant::now();
    let par = run_sharded_e12(&graph, shards, SHARDED_E12_HORIZON);
    let wall = t3.elapsed().as_secs_f64();
    assert_identical(&oracle.report, &par.report, "sharded E12 run");
    println!(
        "sharded_e12: {} LPs ({} bridges cut), horizon {} ns, {} events, {} context switches",
        par.plan.lp_count(),
        par.plan.cut.len(),
        SHARDED_E12_HORIZON.as_fs() / 1_000_000,
        par.events(),
        e12_switches(&par),
    );
    println!(
        "  serial (1 shard):  {serial:.3}s\n  sharded ({} shards, {} rounds, {} cross-shard \
         messages): {wall:.3}s\n  speedup {:.2}x — reports bit-identical",
        par.report.shards,
        par.report.rounds,
        par.report.messages,
        serial / wall,
    );
    print!("{}", par.critical_links().render());
    print!("{}", par.efficiency().render());
}

/// Run the simulation service: bind a loopback socket, publish its address
/// at `<root>/serve.addr`, and answer sweep requests from the
/// content-addressed snapshot store until a client sends `shutdown`.
fn serve_store(root: &str, workers: usize) {
    use drcf_serve::prelude::*;
    match SweepServer::start(root, workers) {
        Ok(server) => {
            eprintln!(
                "serving sweeps from {root} at {} with {workers} workers; \
                 send {{\"op\":\"shutdown\"}} (or --sweep-client {root} --shutdown) to stop",
                server.addr()
            );
            server.serve_forever();
            eprintln!("server stopped");
        }
        Err(e) => {
            eprintln!("error[{}]: {e}", e.kind.label());
            std::process::exit(1);
        }
    }
}

/// Submit one sweep to the server advertised in `<root>/serve.addr` and
/// print the records plus the cache accounting.
fn sweep_client(root: &str, req: &drcf_serve::prelude::SweepRequest, shutdown: bool) {
    use drcf_serve::prelude::*;
    let fail = |e: drcf_kernel::prelude::SimError| -> ! {
        eprintln!("error[{}]: {e}", e.kind.label());
        std::process::exit(1);
    };
    let mut client = Client::connect_store(root).unwrap_or_else(|e| fail(e));
    if shutdown && req.points.is_empty() {
        client.shutdown().unwrap_or_else(|e| fail(e));
        eprintln!("server asked to shut down");
        return;
    }
    let reply = client.sweep(req).unwrap_or_else(|e| fail(e));
    let mut table =
        drcf_dse::prelude::Table::new("served sweep", &["clock (MHz)", "makespan (ns)", "ok"]);
    for r in &reply.records {
        table.row(vec![
            r.param("clock_mhz").unwrap_or("?").to_string(),
            format!("{:.0}", r.makespan_ns),
            r.ok.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "key {:016x}: {} from cache, {} simulated",
        reply.key, reply.from_cache, reply.simulated
    );
    if shutdown {
        client.shutdown().unwrap_or_else(|e| fail(e));
        eprintln!("server asked to shut down");
    }
}

/// Report a command-line usage error with the same typed-error shape the
/// snapshot-chain resume path uses — `error[<kind>]: message` on stderr,
/// exit code 2 — instead of an `expect` panic with a backtrace.
fn usage_error(msg: String) -> ! {
    use drcf_kernel::prelude::{SimError, SimErrorKind};
    let e = SimError::new(SimErrorKind::Validation, msg);
    eprintln!("error[{}]: {e}", e.kind.label());
    std::process::exit(2);
}

/// The operand following flag `args[i]`, or a typed usage error when the
/// flag ends the argument list or is followed by another flag.
fn operand<'a>(args: &'a [String], i: usize, flag: &str, what: &str) -> &'a str {
    match args.get(i + 1) {
        Some(v) if !v.starts_with("--") => v,
        _ => usage_error(format!("{flag} needs {what}")),
    }
}

/// [`operand`], parsed; a non-parsing operand is a typed usage error too.
fn parsed_operand<T: std::str::FromStr>(args: &[String], i: usize, flag: &str, what: &str) -> T {
    let v = operand(args, i, flag, what);
    v.parse()
        .unwrap_or_else(|_| usage_error(format!("{flag} needs {what}, got {v:?}")))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bench-json") {
        let doc = drcf_bench::hotpath::bench_json().to_string_pretty();
        println!("{doc}");
        std::fs::write("BENCH_kernel.json", format!("{doc}\n")).expect("write BENCH_kernel.json");
        eprintln!("wrote BENCH_kernel.json");
        return;
    }
    let shards_arg = args
        .iter()
        .position(|a| a == "--shards")
        .map(|i| parsed_operand::<usize>(&args, i, "--shards", "a shard count"));
    if let Some(i) = args.iter().position(|a| a == "--trace-out") {
        let path = operand(&args, i, "--trace-out", "a path");
        // With --shards the two flags compose: trace every LP of the
        // sharded E12 run and merge them into one document (previously
        // --shards was silently ignored here and the single-simulator
        // wireless trace was written instead).
        match shards_arg {
            Some(shards) => run_sharded_traced(shards, path),
            None => write_trace(path),
        }
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--snapshot-out") {
        let path = operand(&args, i, "--snapshot-out", "a path");
        let at_ns = args
            .iter()
            .position(|a| a == "--at-ns")
            .map(|j| parsed_operand::<u64>(&args, j, "--at-ns", "an integer nanosecond count"));
        let deltas = args.iter().position(|a| a == "--deltas").map_or(0, |j| {
            parsed_operand::<usize>(&args, j, "--deltas", "an integer delta count")
        });
        write_snapshot(path, at_ns, deltas);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--resume-from") {
        let path = operand(&args, i, "--resume-from", "a path");
        resume_snapshot(path);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--serve") {
        let root = operand(&args, i, "--serve", "a store directory");
        let workers = args.iter().position(|a| a == "--workers").map_or(2, |j| {
            parsed_operand::<usize>(&args, j, "--workers", "a worker count")
        });
        serve_store(root, workers);
        return;
    }
    if let Some(i) = args.iter().position(|a| a == "--sweep-client") {
        let root = operand(&args, i, "--sweep-client", "a store directory");
        let shutdown = args.iter().any(|a| a == "--shutdown");
        let points: Vec<u64> =
            args.iter()
                .position(|a| a == "--points")
                .map_or_else(Vec::new, |j| {
                    let list = operand(&args, j, "--points", "a comma-separated MHz list");
                    list.split(',')
                        .map(|p| {
                            p.trim().parse().unwrap_or_else(|_| {
                                usage_error(format!(
                                    "--points needs a comma-separated MHz list, got {p:?}"
                                ))
                            })
                        })
                        .collect()
                });
        if points.is_empty() && !shutdown {
            usage_error("--sweep-client needs --points (or --shutdown)".into());
        }
        let mut req = drcf_serve::prelude::SweepRequest::small(4_000, points);
        if let Some(j) = args.iter().position(|a| a == "--frames") {
            req.frames = parsed_operand::<usize>(&args, j, "--frames", "a frame count");
        }
        if let Some(j) = args.iter().position(|a| a == "--samples") {
            req.samples = parsed_operand::<usize>(&args, j, "--samples", "a sample count");
        }
        if let Some(j) = args.iter().position(|a| a == "--fork-ns") {
            req.fork_ns =
                parsed_operand::<u64>(&args, j, "--fork-ns", "an integer nanosecond count");
        }
        sweep_client(root, &req, shutdown);
        return;
    }
    if let Some(shards) = shards_arg {
        run_sharded(shards);
        return;
    }
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    for r in drcf_bench::run_all() {
        if !ids.is_empty() && !ids.iter().any(|i| i.eq_ignore_ascii_case(&r.id)) {
            continue;
        }
        if markdown {
            print!("{}", r.render_markdown());
        } else {
            print!("{}", r.render());
        }
    }
}
