//! Regenerate every experiment table and print it.
//!
//! `cargo run --release -p drcf-bench --bin experiments [--markdown] [ids...]`

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    for r in drcf_bench::run_all() {
        if !ids.is_empty() && !ids.iter().any(|i| i.eq_ignore_ascii_case(&r.id)) {
            continue;
        }
        if markdown {
            print!("{}", r.render_markdown());
        } else {
            print!("{}", r.render());
        }
    }
}
