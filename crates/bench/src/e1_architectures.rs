//! E1 — Fig. 1: conventional SoC (a) vs. SoC with a DRCF (b).
//!
//! The same wireless-receiver application runs on both architectures; the
//! reconfigurable one trades time-multiplexing (reconfiguration) overhead
//! for silicon area.

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r1, r2, ratio, ExperimentResult};

/// Build the Fig. 1(b) mapping for a workload, folding every accelerator
/// into a fabric sized for the largest one.
pub fn fig1b_mapping(workload: &Workload, tech: Technology, margin: f64) -> Mapping {
    let names: Vec<String> = workload.accels.iter().map(|a| a.name.clone()).collect();
    Mapping::Drcf {
        geometry: size_fabric(workload, &names, margin, 1),
        candidates: names,
        technology: tech,
        config_path: SocConfigPath::SystemBus,
        scheduler: SchedulerConfig::default(),
        overlap_load_exec: false,
    }
}

/// Run both architectures for one workload; returns (fixed, folded).
pub fn run_pair(workload: &Workload) -> (RunMetrics, RunMetrics) {
    let fixed = run_soc(build_soc(workload, &SocSpec::default()).expect("fig1a build")).0;
    let spec = SocSpec {
        mapping: fig1b_mapping(workload, morphosys(), 1.1),
        ..SocSpec::default()
    };
    let folded = run_soc(build_soc(workload, &spec).expect("fig1b build")).0;
    (fixed, folded)
}

/// Execute E1.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E1",
        "Fig. 1 — typical SoC vs. SoC with dynamically reconfigurable fabric",
    );
    let mut t = Table::new(
        "wireless receiver, 4 frames x 64 samples",
        &[
            "architecture",
            "makespan",
            "area(kgate)",
            "bus util",
            "switches",
            "config words",
            "reconfig ovh",
        ],
    );
    let w = wireless_receiver(4, 64);
    let (fixed, folded) = run_pair(&w);
    for (name, m) in [
        ("Fig1a fixed accelerators", &fixed),
        ("Fig1b DRCF", &folded),
    ] {
        t.row(vec![
            name.to_string(),
            fmt_ns(m.makespan.as_ns_f64()),
            r1(m.area_gates as f64 / 1000.0),
            fmt_pct(m.bus_utilization),
            m.switches.to_string(),
            m.config_words.to_string(),
            fmt_pct(m.reconfig_overhead),
        ]);
    }
    res.tables.push(t);

    let area_saving = 1.0 - ratio(folded.area_gates as f64, fixed.area_gates as f64);
    let slowdown = ratio(folded.makespan.as_ns_f64(), fixed.makespan.as_ns_f64());
    res.summary.push(format!(
        "folding the three accelerators into one fabric saves {} of accelerator area at a {}x makespan cost",
        fmt_pct(area_saving),
        r2(slowdown)
    ));
    assert!(fixed.ok && folded.ok, "both architectures must complete");
    assert!(folded.area_gates < fixed.area_gates);
    assert!(folded.makespan >= fixed.makespan);
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_shape_holds() {
        let r = run();
        assert_eq!(r.tables.len(), 1);
        assert_eq!(r.tables[0].rows.len(), 2);
        assert_eq!(r.summary.len(), 1);
    }

    #[test]
    fn drcf_tradeoff_holds_across_workloads() {
        for w in [wireless_receiver(2, 32), video_pipeline(2, 64)] {
            let (fixed, folded) = run_pair(&w);
            assert!(fixed.ok && folded.ok, "{}", w.name);
            assert!(folded.area_gates < fixed.area_gates, "{}", w.name);
            assert!(folded.switches > 0, "{}", w.name);
        }
    }
}
