//! E13 (extension) — Fig. 1's DMA, put to work: data-movement strategies.
//!
//! Both of the paper's reference architectures include a DMA controller
//! next to the CPU, but the methodology discussion never exercises it.
//! This experiment measures the three ways an accelerator window can be
//! filled — CPU-generated writes, CPU relaying memory-resident blocks, and
//! DMA streaming with interrupt-style completion — across window sizes,
//! on both the fixed (Fig. 1a) and the DRCF (Fig. 1b) architecture.
//!
//! The CPU model charges an issue cost per step plus a marshalling cost
//! per relayed word, so software data movement scales with the window
//! while DMA programming stays constant — the classic offload crossover.

use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r2, ExperimentResult};
use crate::e1_architectures::fig1b_mapping;

/// Run one (copy mode × mapping) point; returns the record.
pub fn run_point(samples: usize, copy_mode: SocCopyMode, folded: bool) -> RunRecord {
    let w = wireless_receiver(3, samples);
    let mapping = if folded {
        fig1b_mapping(&w, drcf_core::prelude::morphosys(), 1.1)
    } else {
        Mapping::AllFixed
    };
    let spec = SocSpec {
        copy_mode,
        mapping,
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok, "{copy_mode:?}/{folded}: {m:?}");
    RunRecord::from_metrics(
        "data_movement",
        vec![
            ("samples".into(), samples.to_string()),
            ("copy".into(), format!("{copy_mode:?}")),
            ("arch".into(), if folded { "DRCF" } else { "fixed" }.into()),
        ],
        &m,
    )
}

/// Execute E13.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E13",
        "extension — data movement: CPU writes vs CPU relay vs DMA offload (Fig. 1's DMA)",
    );
    let modes = [
        SocCopyMode::CpuDirect,
        SocCopyMode::CpuViaMemory,
        SocCopyMode::Dma,
    ];
    let mut t = Table::new(
        "wireless receiver, 3 frames, fixed accelerators (Fig. 1a)",
        &[
            "window (words)",
            "CPU direct",
            "CPU relay",
            "DMA offload",
            "DMA vs relay",
        ],
    );
    let mut crossover_seen = false;
    for samples in [16usize, 64, 128, 256] {
        let recs: Vec<RunRecord> = modes
            .iter()
            .map(|&m| run_point(samples, m, false))
            .collect();
        let relay = recs[1].makespan_ns;
        let dma = recs[2].makespan_ns;
        if dma < relay {
            crossover_seen = true;
        }
        t.row(vec![
            samples.to_string(),
            fmt_ns(recs[0].makespan_ns),
            fmt_ns(relay),
            fmt_ns(dma),
            format!("{}x", r2(relay / dma)),
        ]);
    }
    res.tables.push(t);
    assert!(crossover_seen, "DMA must win somewhere in the sweep");

    // Large windows: DMA strictly wins over the CPU relay.
    let relay = run_point(256, SocCopyMode::CpuViaMemory, false);
    let dma = run_point(256, SocCopyMode::Dma, false);
    assert!(dma.makespan_ns < relay.makespan_ns);

    // And the strategies interact correctly with the DRCF architecture.
    let mut t2 = Table::new(
        "same sweep on the DRCF architecture (Fig. 1b, MorphoSys fabric), 128-word windows",
        &["copy mode", "makespan", "switches", "reconfig ovh"],
    );
    for &m in &modes {
        let r = run_point(128, m, true);
        t2.row(vec![
            r.param("copy").unwrap().to_string(),
            fmt_ns(r.makespan_ns),
            r.switches.to_string(),
            fmt_pct(r.reconfig_overhead),
        ]);
    }
    res.tables.push(t2);

    res.summary.push(format!(
        "with memory-resident inputs, DMA offload with IRQ completion beats the CPU relay {}x at 256-word windows (marshalling cost removed from the CPU)",
        r2(relay.makespan_ns / dma.makespan_ns)
    ));
    res.summary.push(
        "the same DMA engine coexists with the DRCF's configuration traffic on one bus — \
         the full Fig. 1 component set operating together"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_dma_wins_at_scale() {
        let r = run();
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.tables[0].rows.len(), 4);
        assert_eq!(r.tables[1].rows.len(), 3);
    }

    #[test]
    fn all_modes_complete_on_drcf_architecture() {
        for m in [
            SocCopyMode::CpuDirect,
            SocCopyMode::CpuViaMemory,
            SocCopyMode::Dma,
        ] {
            let r = run_point(64, m, true);
            assert!(r.ok);
            assert!(r.switches > 0);
        }
    }
}
