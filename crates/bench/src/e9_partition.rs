//! E9 — §5.1: the partitioning rules of thumb, validated by exploration.
//!
//! The rules say a DRCF wins when blocks are "roughly same sized" and "not
//! used in the same time or at their full capacity". We (1) profile the
//! workloads analytically, (2) let the rule engine propose candidate
//! groups, and (3) exhaustively explore all folding subsets by simulation
//! to check the proposed groups actually sit on the makespan/area Pareto
//! front — and that heavily-overlapping blocks are correctly kept apart.

use drcf_core::prelude::morphosys;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;
use drcf_transform::prelude::{select_candidates, SelectionRules};

use crate::common::{r1, ExperimentResult};

/// Run the full rule-vs-exploration comparison for one workload.
pub fn analyze_workload(w: &Workload) -> (Vec<String>, Vec<PartitionOutcome>, Vec<usize>) {
    let (profile, _) = asap_profile(w).expect("library workloads are acyclic");
    let groups = select_candidates(&profile, &SelectionRules::default());
    let proposed: Vec<String> = groups
        .first()
        .map(|g| {
            let mut v = g.instances.clone();
            v.sort();
            v
        })
        .unwrap_or_default();
    let outcomes = explore_partitions(w, &SocSpec::default(), &morphosys(), 2);
    let records: Vec<RunRecord> = outcomes.iter().map(|o| o.record.clone()).collect();
    let front = pareto_front(&records, &[objectives::makespan, objectives::area]);
    (proposed, outcomes, front)
}

/// Execute E9.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E9",
        "§5.1 — rules of thumb vs. exhaustive partitioning exploration",
    );

    // Serial pipeline: everything is foldable (no temporal overlap).
    let w = wireless_receiver(3, 64);
    let (proposed, outcomes, front) = analyze_workload(&w);
    let mut t = Table::new(
        "wireless receiver (serial pipeline): all folding subsets",
        &[
            "folded",
            "makespan",
            "area(kgate)",
            "switches",
            "on Pareto front",
        ],
    );
    for (i, o) in outcomes.iter().enumerate() {
        t.row(vec![
            if o.folded.is_empty() {
                "(none: Fig1a)".into()
            } else {
                o.folded.join("+")
            },
            fmt_ns(o.record.makespan_ns),
            r1(o.record.area_gates as f64 / 1000.0),
            o.record.switches.to_string(),
            if front.contains(&i) { "yes" } else { "" }.to_string(),
        ]);
    }
    res.tables.push(t);

    // The rule engine proposes folding all three serial blocks...
    assert_eq!(
        proposed,
        vec!["fft".to_string(), "fir".to_string(), "viterbi".to_string()],
        "serial similar-sized blocks must group"
    );
    // ...and that subset must be on the Pareto front (it has minimal area).
    let full_fold_idx = outcomes
        .iter()
        .position(|o| o.folded.len() == 3)
        .expect("triple fold explored");
    assert!(
        front.contains(&full_fold_idx),
        "the rules' proposal must be Pareto-optimal"
    );

    // Parallel-branch pipeline: DCT and motion estimation overlap, so the
    // rules must not group them.
    let wv = video_pipeline(3, 64);
    let (profile_v, _) = asap_profile(&wv).expect("library workloads are acyclic");
    let groups_v = select_candidates(&profile_v, &SelectionRules::default());
    let mut t2 = Table::new(
        "video pipeline (parallel branches): analytic profile",
        &["pair", "overlap"],
    );
    for (a, b, f) in &profile_v.overlap {
        t2.row(vec![format!("{a}/{b}"), fmt_pct(*f)]);
    }
    res.tables.push(t2);
    for g in &groups_v {
        let has_dct = g.instances.contains(&"dct".to_string());
        let has_me = g.instances.contains(&"motion_est".to_string());
        assert!(
            !(has_dct && has_me),
            "overlapping blocks must not share a fabric: {g:?}"
        );
    }

    res.summary.push(
        "for the serial receiver the rules propose folding all three kernels, and exhaustive \
         exploration confirms that subset is Pareto-optimal (minimum area, bounded slowdown)"
            .to_string(),
    );
    res.summary.push(
        "for the video pipeline the analytic profile shows dct/motion_est temporal overlap, and \
         the rules keep them in separate groups — 'not used in the same time' enforced mechanically"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_rules_match_exploration() {
        let r = run();
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.summary.len(), 2);
    }
}
