//! E2 — Fig. 2: flexibility vs. implementation efficiency.
//!
//! The figure places architectural styles on a ladder from general-purpose
//! processors (0.1–1 MIPS/mW) through DSPs, ASIPs and reconfigurable
//! fabrics to dedicated hardware (100–1000 MOPS/mW), with a "factor of
//! 100–1000" between the endpoints and a question mark on the
//! reconfiguration overhead. We regenerate the ladder by running the same
//! kernel set under each style:
//!
//! * software styles execute the kernels on the CPU with a
//!   style-dependent cycle penalty over dedicated hardware;
//! * the reconfigurable style is the DRCF architecture (its
//!   reconfiguration overhead measured, not assumed);
//! * the ASIC style is the fixed-accelerator architecture.

use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r1, ratio, ExperimentResult};
use crate::e1_architectures::fig1b_mapping;

/// An architectural style of Fig. 2.
#[derive(Debug, Clone)]
pub struct Style {
    /// Name in the figure.
    pub name: &'static str,
    /// Cycle penalty over dedicated hardware for kernel work (software
    /// styles only).
    pub cycle_penalty: Option<u64>,
    /// Average power while computing, mW.
    pub power_mw: f64,
}

/// The ladder, least to most efficient.
pub fn styles() -> Vec<Style> {
    // Penalties are in CPU cycles (the CPU clocks at 300 MHz vs the
    // accelerators' 100 MHz, so a cycle penalty of 180 is a 60x wall-clock
    // penalty over dedicated hardware).
    vec![
        Style {
            name: "GPP (instruction set)",
            cycle_penalty: Some(180),
            power_mw: 1500.0,
        },
        Style {
            name: "DSP",
            cycle_penalty: Some(36),
            power_mw: 700.0,
        },
        Style {
            name: "ASIP",
            cycle_penalty: Some(12),
            power_mw: 350.0,
        },
        Style {
            name: "Reconfigurable (DRCF)",
            cycle_penalty: None,
            power_mw: 160.0,
        },
        Style {
            name: "Dedicated HW (ASIC)",
            cycle_penalty: None,
            power_mw: 75.0,
        },
    ]
}

/// Replace hardware tasks with software tasks whose cycle count is the
/// kernel's hardware cycles times `penalty` (the software rendering of the
/// same computation).
pub fn soften(workload: &Workload, penalty: u64) -> Workload {
    let mut g = TaskGraph::new();
    for t in &workload.graph.tasks {
        let kind = match &t.kind {
            TaskKind::Software { cycles } => TaskKind::Software { cycles: *cycles },
            TaskKind::Hardware {
                accel, input_words, ..
            } => {
                let k = workload
                    .accels
                    .iter()
                    .find(|a| &a.name == accel)
                    .expect("workload accel");
                TaskKind::Software {
                    cycles: k.kind.compute_cycles(*input_words as u64) * penalty,
                }
            }
        };
        g.add(&t.name, kind, t.deps.clone());
    }
    Workload {
        name: format!("{}+soft{penalty}", workload.name),
        graph: g,
        accels: vec![], // no hardware at all
    }
}

/// Total reference operations: kernel compute cycles on dedicated HW.
pub fn reference_ops(workload: &Workload) -> u64 {
    workload
        .graph
        .tasks
        .iter()
        .filter_map(|t| match &t.kind {
            TaskKind::Hardware {
                accel, input_words, ..
            } => workload
                .accels
                .iter()
                .find(|a| &a.name == accel)
                .map(|a| a.kind.compute_cycles(*input_words as u64)),
            _ => None,
        })
        .sum()
}

/// One style's measured point.
#[derive(Debug, Clone)]
pub struct StylePoint {
    /// Style name.
    pub name: &'static str,
    /// Measured makespan, ns.
    pub makespan_ns: f64,
    /// Power assumption, mW.
    pub power_mw: f64,
    /// MOPS (reference ops / time).
    pub mops: f64,
    /// Efficiency, MOPS/mW.
    pub mops_per_mw: f64,
    /// Reconfiguration overhead fraction (reconfigurable style only).
    pub reconfig_overhead: f64,
}

/// Measure the whole ladder for a workload.
pub fn measure_ladder(workload: &Workload) -> Vec<StylePoint> {
    let ops = reference_ops(workload) as f64;
    styles()
        .into_iter()
        .map(|style| {
            let (makespan_ns, reconfig) = match (style.name, style.cycle_penalty) {
                (_, Some(penalty)) => {
                    let soft = soften(workload, penalty);
                    let (m, _) = run_soc(build_soc(&soft, &SocSpec::default()).expect("soft"));
                    assert!(m.ok);
                    (m.makespan.as_ns_f64(), 0.0)
                }
                ("Reconfigurable (DRCF)", None) => {
                    let spec = SocSpec {
                        mapping: fig1b_mapping(workload, drcf_core::prelude::morphosys(), 1.1),
                        ..SocSpec::default()
                    };
                    let (m, _) = run_soc(build_soc(workload, &spec).expect("drcf"));
                    assert!(m.ok);
                    (m.makespan.as_ns_f64(), m.reconfig_overhead)
                }
                _ => {
                    let (m, _) = run_soc(build_soc(workload, &SocSpec::default()).expect("asic"));
                    assert!(m.ok);
                    (m.makespan.as_ns_f64(), 0.0)
                }
            };
            let mops = ops / (makespan_ns / 1000.0); // ops per µs = MOPS
            StylePoint {
                name: style.name,
                makespan_ns,
                power_mw: style.power_mw,
                mops,
                mops_per_mw: mops / style.power_mw,
                reconfig_overhead: reconfig,
            }
        })
        .collect()
}

/// Execute E2.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E2",
        "Fig. 2 — flexibility vs. implementation efficiency ladder",
    );
    let w = wireless_receiver(3, 128);
    let points = measure_ladder(&w);
    let mut t = Table::new(
        "wireless receiver, 3 frames x 128 samples",
        &[
            "style",
            "makespan",
            "power(mW)",
            "MOPS",
            "MOPS/mW",
            "vs GPP",
            "reconfig ovh",
        ],
    );
    let base = points[0].mops_per_mw;
    for p in &points {
        t.row(vec![
            p.name.to_string(),
            fmt_ns(p.makespan_ns),
            r1(p.power_mw),
            r1(p.mops),
            format!("{:.3}", p.mops_per_mw),
            format!("{:.0}x", ratio(p.mops_per_mw, base)),
            fmt_pct(p.reconfig_overhead),
        ]);
    }
    res.tables.push(t);

    // The figure's qualitative claims.
    for w2 in points.windows(2) {
        assert!(
            w2[1].mops_per_mw > w2[0].mops_per_mw,
            "ladder must be monotone: {} !< {}",
            w2[0].name,
            w2[1].name
        );
    }
    let asic_vs_gpp = ratio(points.last().unwrap().mops_per_mw, base);
    assert!(
        (50.0..=5000.0).contains(&asic_vs_gpp),
        "ASIC/GPP efficiency gap {asic_vs_gpp} outside the figure's order of magnitude"
    );
    let drcf = &points[3];
    res.summary.push(format!(
        "efficiency ladder is monotone; dedicated hardware is {:.0}x more efficient than the GPP (figure claims 100-1000x)",
        asic_vs_gpp
    ));
    res.summary.push(format!(
        "the figure's 'reconfiguration overhead ?' measures as {} of runtime for this workload",
        fmt_pct(drcf.reconfig_overhead)
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softened_workload_is_pure_software() {
        let w = wireless_receiver(1, 32);
        let s = soften(&w, 10);
        assert!(s.accels.is_empty());
        assert!(s
            .graph
            .tasks
            .iter()
            .all(|t| matches!(t.kind, TaskKind::Software { .. })));
        assert_eq!(s.graph.tasks.len(), w.graph.tasks.len());
    }

    #[test]
    fn reference_ops_counts_kernels_only() {
        let w = wireless_receiver(1, 32);
        assert!(reference_ops(&w) > 0);
        let s = soften(&w, 10);
        assert_eq!(reference_ops(&s), 0);
    }

    #[test]
    fn e2_ladder_is_monotone() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 5);
        assert_eq!(r.summary.len(), 2);
    }
}
