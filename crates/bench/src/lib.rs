//! # drcf-bench — experiment harnesses
//!
//! One module per reproduced paper artifact (figure or quantitative
//! claim); each `run()` returns rendered tables plus one-line findings and
//! *asserts the qualitative shape* the paper claims (who wins, what is
//! monotone, where the deadlock appears). The `experiments` binary prints
//! everything; the criterion benches in `benches/` time the underlying
//! simulations.
//!
//! | module | paper artifact |
//! |--------|----------------|
//! | [`e1_architectures`] | Fig. 1 — SoC (a) vs DRCF SoC (b) |
//! | [`e2_efficiency`]    | Fig. 2 — flexibility vs efficiency ladder |
//! | [`e3_flow`]          | Fig. 3 — the ADRIATIC design flow |
//! | [`e4_transform`]     | Fig. 4 + §5.2 listings — the transformation |
//! | [`e5_ctx_switch`]    | §5.3 — context-switch cost model |
//! | [`e6_mem_org`]       | §5.3 — memory organizations |
//! | [`e7_deadlock`]      | §5.4(3) — the blocking-bus deadlock |
//! | [`e8_technologies`]  | Ch. 3 — technology presets |
//! | [`e9_partition`]     | §5.1 — partitioning rules vs exploration |
//! | [`e10_scheduling`]   | MorphoSys/Maestre scheduling policies |
//! | [`e11_sensitivity`]  | §5.5/§6 — parameter-accuracy sensitivity |
//! | [`e12_hierarchy`]    | §4 extension — hierarchical bus topologies |
//! | [`e13_data_movement`]| Fig. 1 extension — CPU vs DMA data movement |

#![warn(missing_docs)]

pub mod common;
pub mod e10_scheduling;
pub mod e11_sensitivity;
pub mod e12_hierarchy;
pub mod e13_data_movement;
pub mod e1_architectures;
pub mod e2_efficiency;
pub mod e3_flow;
pub mod e4_transform;
pub mod e5_ctx_switch;
pub mod e6_mem_org;
pub mod e7_deadlock;
pub mod e8_technologies;
pub mod e9_partition;
pub mod hotpath;

use common::ExperimentResult;

/// Run every experiment, in paper order.
pub fn run_all() -> Vec<ExperimentResult> {
    vec![
        e1_architectures::run(),
        e2_efficiency::run(),
        e3_flow::run(),
        e4_transform::run(),
        e5_ctx_switch::run(),
        e6_mem_org::run(),
        e7_deadlock::run(),
        e8_technologies::run(),
        e9_partition::run(),
        e10_scheduling::run(),
        e11_sensitivity::run(),
        e12_hierarchy::run(),
        e13_data_movement::run(),
    ]
}
