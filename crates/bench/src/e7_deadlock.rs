//! E7 — §5.4, limitation 3: the blocking-bus deadlock.
//!
//! "If this is not the case, a data transfer to a component in DRCF would
//! block the bus until the transfer is completed and the DRCF could not
//! load a new context, since the bus is already blocked. This results in
//! deadlock of the bus."
//!
//! The experiment runs the same single-access system across a bus-mode ×
//! config-path grid: the deadlock appears exactly when the interface bus
//! is blocking *and* the configuration shares it — and every mitigation
//! the paper permits (split transactions, a dedicated configuration path)
//! removes it.

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_kernel::prelude::*;

use crate::common::ExperimentResult;
use crate::e4_transform::ScriptProbe;

/// Configuration-path flavor under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathFlavor {
    /// Config over the same system bus.
    SharedBus,
    /// Config over a dedicated port.
    Dedicated,
}

/// Build and run; returns the run outcome (a typed deadlock error for the
/// blocking/shared case) and the simulated end time.
pub fn run_case(mode: BusMode, flavor: PathFlavor) -> (SimResult<StopReason>, SimTime) {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).unwrap();
    map.add(0x8000, 0x800F, 3).unwrap();
    sim.add(
        "probe",
        ScriptProbe::new(1, vec![(BusOp::Write, 0x8000, 1)]),
    );
    sim.add(
        "bus",
        Bus::new(
            BusConfig {
                mode,
                ..BusConfig::default()
            },
            map,
        ),
    );
    sim.add(
        "mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            dual_port: true,
            ..MemoryConfig::default()
        }),
    );
    let path = match flavor {
        PathFlavor::SharedBus => ConfigPath::SystemBus {
            bus: 1,
            priority: 3,
            burst: 16,
        },
        PathFlavor::Dedicated => ConfigPath::DirectPort { memory: 2 },
    };
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: path,
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            vec![Context::new(
                Box::new(RegisterFile::new("ctx", 0x8000, 16, 1)),
                ContextParams {
                    config_addr: 0x100,
                    config_size_words: 256,
                    ..ContextParams::default()
                },
            )],
        ),
    );
    let reason = sim.run();
    (reason, sim.now())
}

/// Execute E7.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E7",
        "§5.4 limitation 3 — bus deadlock with blocking calls vs. the permitted fixes",
    );
    let mut t = Table::new(
        "single suspended call during a context load",
        &["bus mode", "config path", "outcome", "end time"],
    );
    let cases = [
        (BusMode::Blocking, PathFlavor::SharedBus),
        (BusMode::Blocking, PathFlavor::Dedicated),
        (BusMode::Split, PathFlavor::SharedBus),
        (BusMode::Split, PathFlavor::Dedicated),
    ];
    let mut outcomes = Vec::new();
    for (mode, flavor) in cases {
        let (reason, end) = run_case(mode, flavor);
        let outcome = match &reason {
            Ok(r) => format!("{r:?}"),
            Err(e) => format!("{e}"),
        };
        outcomes.push((mode, flavor, reason));
        t.row(vec![
            format!("{mode:?}"),
            format!("{flavor:?}"),
            outcome,
            format!("{end}"),
        ]);
    }
    res.tables.push(t);

    // Exactly one case deadlocks: blocking bus + shared config path.
    for (mode, flavor, reason) in &outcomes {
        let should_deadlock = *mode == BusMode::Blocking && *flavor == PathFlavor::SharedBus;
        if should_deadlock {
            let err = reason.as_ref().expect_err("blocking/shared must deadlock");
            assert!(
                err.is_deadlock(),
                "expected deadlock for {mode:?}/{flavor:?}, got {err}"
            );
            let pending = err.pending_obligations().unwrap_or(0);
            assert!(pending >= 2, "deadlock must carry the obligation count");
        } else {
            assert_eq!(
                *reason,
                Ok(StopReason::Quiescent),
                "{mode:?}/{flavor:?} must complete"
            );
        }
    }
    res.summary.push(
        "the deadlock occurs exactly when the context-memory bus is the blocking interface bus; \
         split transactions or a dedicated configuration path (the paper's own conditions) remove it"
            .to_string(),
    );
    res.summary.push(
        "the kernel reports it as a typed SimError (kind Deadlock) carrying the \
         outstanding-obligation count — quiescence and deadlock are distinguishable \
         outcomes, not a hung simulation"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_blocking_shared_deadlocks() {
        let (r, _) = run_case(BusMode::Blocking, PathFlavor::SharedBus);
        let err = r.expect_err("blocking/shared must deadlock");
        assert!(err.is_deadlock());
        assert!(err.pending_obligations().unwrap_or(0) >= 2);
        let (r, _) = run_case(BusMode::Blocking, PathFlavor::Dedicated);
        assert_eq!(r, Ok(StopReason::Quiescent));
        let (r, _) = run_case(BusMode::Split, PathFlavor::SharedBus);
        assert_eq!(r, Ok(StopReason::Quiescent));
    }

    #[test]
    fn e7_table_has_four_cases() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4);
    }
}
