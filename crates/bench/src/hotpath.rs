//! Kernel hot-path throughput measurements.
//!
//! Three workloads sized so each runs in the hundreds of milliseconds:
//!
//! - **dense_clock** — many free-running clocks with several edge
//!   subscribers each; stresses the periodic-event path and subscriber
//!   fan-out (the innermost loop of every synchronous model).
//! - **fifo_heavy** — producer/consumer pairs over bounded FIFOs with
//!   extra passive observers; stresses `notify_fifo` fan-out and the
//!   delta-queue recycling.
//! - **e5_sweep** — the full §5.3 context-switch sweep (real bus + fabric
//!   traffic); the end-to-end experiment workload every DSE point pays.
//!   Runs with the coalesced configuration-traffic fast path and reports
//!   *effective* throughput: the per-burst reference event count over the
//!   coalesced wall time (the workload is timing-identical either way, so
//!   the reference count is the honest "work done" numerator).
//! - **ctx_switch_storm** — 8 contexts thrashed for 64 switches of
//!   2048-word loads with a periodic DMA contending for the bus; measured
//!   coalesced, with the per-burst run of the identical system as the
//!   event-count reference. Exercises accept, de-coalesce and re-coalesce.
//! - **warm_fork_dse** — an 8-point DSE sweep over the wireless-receiver
//!   DRCF scenario evaluated warm-fork style: the shared prefix is
//!   simulated once, snapshotted at 9/10 of the makespan, and one live
//!   base is rewound copy-on-write to the fork per point (only state the
//!   tail dirtied is restored). The cold sweep (each point re-simulating
//!   the prefix) is the event-count reference; the live cold-vs-warm wall
//!   speedup is reported as `warm_fork_speedup`, with the same sweep
//!   forked at 1/2 of the makespan reported as `warm_fork_speedup_half`
//!   (the prefix-length scaling check) and a full→delta→restore round
//!   trip hash-checked as `warm_fork_delta_identical`.
//!
//! Each measurement reports kernel events dispatched per wall-clock
//! second. [`bench_json`] renders the suite (plus the recorded
//! pre-optimization baseline) as the `BENCH_kernel.json` document that
//! tracks the repo's perf trajectory.

use std::time::Instant;

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_dse::prelude::Json;
use drcf_kernel::prelude::*;

use crate::e4_transform::ScriptProbe;
use crate::e5_ctx_switch::measure_switch_cost_opts;

/// One workload's throughput measurement.
#[derive(Debug, Clone)]
pub struct HotpathMeasurement {
    /// Workload name.
    pub name: String,
    /// Kernel deliveries dispatched to components.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// `events / seconds`.
    pub events_per_sec: f64,
    /// Kernel dispatch profile for single-simulator workloads (absent for
    /// aggregated sweeps).
    pub profile: Option<DispatchProfile>,
    /// How the numbers were obtained, when not the plain
    /// events-dispatched-over-wall-time measurement.
    pub note: Option<String>,
}

impl HotpathMeasurement {
    fn new(name: &str, events: u64, seconds: f64) -> Self {
        HotpathMeasurement {
            name: name.to_string(),
            events,
            seconds,
            events_per_sec: if seconds > 0.0 {
                events as f64 / seconds
            } else {
                0.0
            },
            profile: None,
            note: None,
        }
    }

    fn with_profile(mut self, m: &KernelMetrics, seconds: f64) -> Self {
        self.profile = Some(DispatchProfile::from_metrics(m, seconds));
        self
    }

    fn with_note(mut self, note: &str) -> Self {
        self.note = Some(note.to_string());
        self
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("name", self.name.as_str().into())
            .with("events", self.events.into())
            .with("seconds", self.seconds.into())
            .with("events_per_sec", self.events_per_sec.into());
        if let Some(p) = &self.profile {
            let _ = j.set("fast_clock_fraction", p.fast_clock_fraction.into());
            let _ = j.set("avg_deltas_per_timestep", p.avg_deltas_per_timestep.into());
            let _ = j.set("notifications_per_event", p.notifications_per_event.into());
            let _ = j.set("queue_high_water", p.queue_high_water.into());
        }
        if let Some(n) = &self.note {
            let _ = j.set("note", n.as_str().into());
        }
        j
    }
}

/// Build the dense-clock model: `n_clocks` free-running clocks at
/// staggered frequencies, `subs_per_clock` posedge subscribers each.
fn build_dense_clock(sim: &mut Simulator, n_clocks: usize, subs_per_clock: usize) {
    for c in 0..n_clocks {
        // 50..x MHz staggered so edges rarely coincide (worst case for a
        // periodic fast path: no batching windfall).
        let clk = sim.add_clock_mhz(&format!("clk{c}"), 50 + 37 * c as u64);
        for s in 0..subs_per_clock {
            sim.add(
                &format!("sub{c}_{s}"),
                FnComponent::new(move |api, msg| {
                    if matches!(msg.kind, MsgKind::Start) {
                        api.subscribe_clock(clk, Edge::Pos);
                        if s == 0 {
                            api.subscribe_clock(clk, Edge::Neg);
                        }
                    }
                }),
            );
        }
    }
    // One foreground heartbeat so run_until sees foreground work; its
    // contribution (1 event/us) is noise next to the clock edges.
    sim.add(
        "heartbeat",
        FnComponent::new(|api, msg| match msg.kind {
            MsgKind::Start | MsgKind::Timer(_) => api.timer_in(SimDuration::us(1), 0),
            _ => {}
        }),
    );
}

/// Measure the dense-clock workload on a fresh simulator.
pub fn dense_clock(horizon_us: u64) -> HotpathMeasurement {
    let mut sim = Simulator::new();
    build_dense_clock(&mut sim, 8, 4);
    let t0 = Instant::now();
    let stop = sim.run_until(SimTime::ZERO + SimDuration::us(horizon_us));
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(stop, Ok(StopReason::TimeLimit));
    HotpathMeasurement::new("dense_clock", sim.metrics().dispatched, dt)
        .with_profile(&sim.metrics(), dt)
}

/// Measure the FIFO-heavy workload: `pairs` producer/consumer pairs plus
/// two passive observers per FIFO, `tokens` tokens per producer.
pub fn fifo_heavy(pairs: usize, tokens: u64) -> HotpathMeasurement {
    let mut sim = Simulator::new();
    for p in 0..pairs {
        let fifo = sim.add_fifo::<u64>(&format!("f{p}"), 8);
        sim.add(
            &format!("prod{p}"),
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.timer_in(SimDuration::ns(10), tokens),
                MsgKind::Timer(left) if left > 0 => {
                    if api.fifo_try_put(fifo, left).is_ok() {
                        api.timer_in(SimDuration::ns(10), left - 1);
                    } else {
                        // Full: retry after the consumer drains.
                        api.timer_in(SimDuration::ns(20), left);
                    }
                }
                _ => {}
            }),
        );
        sim.add(
            &format!("cons{p}"),
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.subscribe_fifo(fifo),
                MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                    while api.fifo_try_get(fifo).is_some() {}
                }
                _ => {}
            }),
        );
        for o in 0..2 {
            sim.add(
                &format!("obs{p}_{o}"),
                FnComponent::new(move |api, msg| {
                    if matches!(msg.kind, MsgKind::Start) {
                        api.subscribe_fifo(fifo);
                    }
                }),
            );
        }
    }
    let t0 = Instant::now();
    let stop = sim.run();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(stop, Ok(StopReason::Quiescent));
    HotpathMeasurement::new("fifo_heavy", sim.metrics().dispatched, dt)
        .with_profile(&sim.metrics(), dt)
}

/// Measure the E5 context-switch sweep (serial, so the number is a pure
/// single-thread kernel throughput).
///
/// The timed runs use the coalesced configuration-traffic fast path; the
/// event numerator is the per-burst reference count of the *same* sweep
/// (timing-identical by construction, asserted in the e5 tests), measured
/// once per point untimed. The quotient is the effective throughput: how
/// fast the simulator retires the per-burst workload's worth of modeled
/// activity.
pub fn e5_sweep() -> HotpathMeasurement {
    let sizes = [64u64, 256, 1024, 4096];
    let widths = [1u64, 2, 4];
    let lat = [2u64, 8];
    const REPEATS: u64 = 16;
    // Per-burst reference: the events the workload costs without the fast
    // path (also warms allocator and page cache for the timed loop).
    let mut ref_events = 0u64;
    for &s in &sizes {
        for &w in &widths {
            for &l in &lat {
                ref_events += measure_switch_cost_opts(s, 0, w, l, false).dispatched;
            }
        }
    }
    let t0 = Instant::now();
    // One sweep is ~10ms; repeat so the timing is not noise-dominated.
    for _ in 0..REPEATS {
        for &s in &sizes {
            for &w in &widths {
                for &l in &lat {
                    let p = measure_switch_cost_opts(s, 0, w, l, true);
                    assert!(p.switches == 8);
                }
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    HotpathMeasurement::new("e5_ctx_switch_sweep", ref_events * REPEATS, dt).with_note(
        "effective throughput: per-burst reference event count over coalesced wall time \
         (identical simulated timing)",
    )
}

/// Ids used by the storm system (add order below).
mod storm_ids {
    use drcf_kernel::prelude::ComponentId;
    pub const BUS: ComponentId = 1;
    pub const MEM: ComponentId = 2;
    pub const DRCF: ComponentId = 3;
    pub const DMA: ComponentId = 4;
}

/// Storm shape: `CONTEXTS` contexts of `CONFIG_WORDS` words each, thrashed
/// round-robin for `SWITCHES` switches while a periodic DMA contends.
const STORM_CONTEXTS: usize = 8;
const STORM_CONFIG_WORDS: u64 = 2048;
const STORM_SWITCHES: usize = 64;

/// Build the context-switch storm system.
fn build_storm(coalesce: bool) -> Simulator {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x7FFF, storm_ids::MEM).unwrap();
    for k in 0..STORM_CONTEXTS as u64 {
        map.add(
            0x8000 + 0x100 * k,
            0x8000 + 0x100 * k + 0xF,
            storm_ids::DRCF,
        )
        .unwrap();
    }
    map.add(0xD000, 0xD003, storm_ids::DMA).unwrap();

    // Round-robin over all contexts: with one fabric slot every access
    // misses and forces a full-size load.
    let script: Vec<(BusOp, Addr, Word)> = (0..STORM_SWITCHES as u64)
        .map(|i| {
            (
                BusOp::Write,
                0x8000 + 0x100 * (i % STORM_CONTEXTS as u64),
                i,
            )
        })
        .collect();
    sim.add("probe", ScriptProbe::new(storm_ids::BUS, script));

    let mem_cfg = MemoryConfig {
        size_words: 0x8000,
        ..MemoryConfig::default()
    };
    let mut bus = Bus::new(BusConfig::default(), map);
    if coalesce {
        bus.register_slave_timing(storm_ids::MEM, mem_cfg.slave_timing());
    }
    sim.add("bus", bus);
    sim.add("mem", Memory::new(mem_cfg));

    let contexts: Vec<Context> = (0..STORM_CONTEXTS as u64)
        .map(|k| {
            Context::new(
                Box::new(RegisterFile::new("ctx", 0x8000 + 0x100 * k, 16, 1)),
                ContextParams {
                    config_addr: 0x100 + k * STORM_CONFIG_WORDS,
                    config_size_words: STORM_CONFIG_WORDS,
                    ..ContextParams::default()
                },
            )
        })
        .collect();
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: storm_ids::BUS,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: coalesce,
            },
            contexts,
        ),
    );

    // The second master: a descriptor-ring-style DMA copying a block every
    // ~40us. Its bursts land inside some configuration windows, forcing
    // de-coalesce + re-coalesce; the gaps leave most windows intact.
    let dma = Dma::new(DmaConfig::default(), storm_ids::BUS);
    let id = sim.add("dma", dma);
    debug_assert_eq!(id, storm_ids::DMA);
    sim.add(
        "dma_kick",
        FnComponent::new(|api, msg| {
            if matches!(msg.kind, MsgKind::Start) {
                api.send(
                    storm_ids::DMA,
                    DmaAutoRepeat {
                        program: DmaProgram {
                            src: 0x6000,
                            dst: 0x7000,
                            words: 32,
                            notify: storm_ids::DMA,
                            tag: 0,
                        },
                        period: SimDuration::us(40),
                        count: 24,
                    },
                    Delay::Delta,
                );
            }
        }),
    );
    sim
}

/// Run the storm `repeats` times with the given coalescing setting.
/// Returns (events per run, total wall seconds, final sim time).
fn run_storm(coalesce: bool, repeats: u32) -> (u64, f64, SimTime) {
    let mut events = 0u64;
    let mut makespan = SimTime::ZERO;
    let mut high_water = 0u64;
    let t0 = Instant::now();
    for _ in 0..repeats {
        let mut sim = build_storm(coalesce);
        // Capacity fix: seed the event queue with the previous run's
        // high-water mark so mid-run growth reallocations disappear.
        sim.prereserve_queue(high_water as usize);
        assert_eq!(sim.run(), Ok(StopReason::Quiescent));
        let m = sim.metrics();
        events = m.dispatched;
        high_water = m.queue_high_water;
        makespan = sim.now();
        let f = sim.get::<Drcf>(storm_ids::DRCF);
        assert_eq!(f.stats.switches as usize, STORM_SWITCHES);
    }
    (events, t0.elapsed().as_secs_f64(), makespan)
}

/// Measure the storm coalesced and per-burst. Returns the coalesced
/// measurement (events = per-burst reference count, seconds = coalesced
/// wall) plus the live on-vs-off wall-time speedup.
pub fn ctx_switch_storm() -> (HotpathMeasurement, f64) {
    const REPEATS: u32 = 6;
    let (ev_off, secs_off, t_off) = run_storm(false, REPEATS);
    let (_ev_on, secs_on, t_on) = run_storm(true, REPEATS);
    assert_eq!(
        t_off, t_on,
        "coalescing must not change the storm's simulated makespan"
    );
    let m = HotpathMeasurement::new("ctx_switch_storm", ev_off * REPEATS as u64, secs_on)
        .with_note(
            "effective throughput: per-burst reference event count over coalesced wall time \
             (identical simulated timing); two masters, periodic de-coalesce",
        );
    (m, secs_off / secs_on)
}

/// Sweep points in the warm-fork DSE benchmark. Wide enough that the
/// shared prefix run amortizes well below one cold run per point.
const WARM_FORK_POINTS: usize = 16;

/// Everything the warm-fork bench proves beyond its wall measurement.
#[derive(Debug, Clone, Copy)]
pub struct WarmForkStats {
    /// Cold-vs-warm wall speedup with the fork at 9/10 of the makespan.
    pub speedup: f64,
    /// Same sweep with the fork at 1/2 of the makespan: a shorter shared
    /// prefix must help less, so `speedup_half < speedup` is the scaling
    /// assertion `scripts/perf_gate.py` enforces.
    pub speedup_half: f64,
    /// Whether a delta capture applied onto a full-snapshot restore landed
    /// on the same `state_hash` as a cold (never-snapshotted) run.
    pub delta_identical: bool,
    /// Compact byte size of the full snapshot at the fork point.
    pub full_bytes: u64,
    /// Compact byte size of the delta document fork→9/10 point.
    pub delta_bytes: u64,
    /// Components the delta capture actually serialized.
    pub dirty_components: u64,
}

/// Measure the warm-fork DSE sweep. Returns the warm measurement (events =
/// cold-sweep reference dispatch count, seconds = warm wall time at the
/// 9/10 fork) plus the [`WarmForkStats`] detail.
pub fn warm_fork_dse() -> (HotpathMeasurement, WarmForkStats) {
    use drcf_dse::prelude::*;
    use drcf_soc::prelude::*;
    let w = wireless_receiver(96, 64);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            candidates: names,
            technology: morphosys(),
            geometry: FabricGeometry::new(24_000, 1),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    // Both phases timed three times, keeping the fastest pass: min-time is
    // the standard way to strip scheduler/allocator noise from a ratio gate.
    const TIMING_REPS: usize = 3;
    // Cold reference: every point pays the full run.
    let mut cold_events = 0u64;
    let mut makespan = SimDuration::ZERO;
    let mut cold_secs = f64::INFINITY;
    for rep in 0..TIMING_REPS {
        let t0 = Instant::now();
        for _ in 0..WARM_FORK_POINTS {
            let (m, soc) = run_soc(build_soc(&w, &spec).expect("build cold point"));
            assert!(m.ok, "cold point failed: {:?}", m.error);
            if rep == 0 {
                cold_events += soc.sim.metrics().dispatched;
            }
            makespan = m.makespan;
        }
        cold_secs = cold_secs.min(t0.elapsed().as_secs_f64());
    }
    // Warm: one shared prefix snapshot, then every point forks from a live
    // base copy-on-write — `sweep_warm_fork` restores the base once and
    // rewinds it in place per point, so per-point cost is the tail plus
    // the diff the tail dirtied. The prefix run is inside the timed region
    // — it is part of what a warm sweep costs.
    let warm_at = |num: u64, den: u64| -> f64 {
        let points: Vec<usize> = (0..WARM_FORK_POINTS).collect();
        let mut secs = f64::INFINITY;
        for _ in 0..TIMING_REPS {
            let t1 = Instant::now();
            let at = SimDuration::fs(makespan.as_fs() * num / den);
            let snap = snapshot_prefix(&w, &spec, at).expect("capture prefix");
            let recs = sweep_warm_fork(
                &points,
                &snap,
                WarmFork::default(),
                || restore_soc(&w, &spec, &snap),
                |_, soc| {
                    let m = run_soc_mut(soc);
                    assert!(m.ok, "warm point failed: {:?}", m.error);
                    assert_eq!(
                        m.makespan, makespan,
                        "a warm fork must land exactly where the straight run does"
                    );
                    RunRecord::from_metrics("warm", vec![], &m)
                },
            );
            assert!(recs.iter().all(|r| r.ok), "all warm points must succeed");
            secs = secs.min(t1.elapsed().as_secs_f64());
        }
        secs
    };
    let warm_secs = warm_at(9, 10);
    let warm_secs_half = warm_at(1, 2);
    // Delta round trip (untimed): prove the incremental path the sweep
    // rests on. Fork at 1/2, advance a live sim to 9/10, capture the delta
    // against the fork, then apply it onto a *fresh* full restore of the
    // fork — the patched simulator must land on the same state hash as a
    // cold run paused at 9/10 that never saw a snapshot.
    let at_half = SimDuration::fs(makespan.as_fs() / 2);
    let at_nine = SimDuration::fs(makespan.as_fs() * 9 / 10);
    let snap_half = snapshot_prefix(&w, &spec, at_half).expect("capture half prefix");
    let mut live = restore_soc(&w, &spec, &snap_half).expect("restore live base");
    live.sim
        .run_until(drcf_kernel::prelude::SimTime::ZERO + at_nine)
        .expect("advance to 9/10");
    let delta = live.sim.snapshot_delta(&snap_half).expect("capture delta");
    let km = live.sim.metrics();
    let cold_nine = snapshot_prefix(&w, &spec, at_nine).expect("cold 9/10 capture");
    let mut patched = restore_soc(&w, &spec, &snap_half).expect("full restore of fork");
    patched.sim.restore_delta(&delta).expect("apply delta");
    let delta_identical = patched.sim.current_doc_hash() == Some(delta.child_hash())
        && delta.child_hash() == cold_nine.state_hash();
    // The patched simulator must also *run* like the straight one.
    let m_tail = run_soc_mut(&mut patched);
    assert!(m_tail.ok, "delta-patched tail failed: {:?}", m_tail.error);
    assert_eq!(
        m_tail.makespan, makespan,
        "delta-patched resume must land exactly where the straight run does"
    );
    let m = HotpathMeasurement::new("warm_fork_dse", cold_events, warm_secs).with_note(
        "effective throughput: cold-sweep event count over warm-fork wall time (shared prefix \
         snapshotted once at 9/10 of the makespan, one live base rewound copy-on-write per \
         point; identical per-point results asserted, delta round trip hash-checked)",
    );
    let stats = WarmForkStats {
        speedup: cold_secs / warm_secs,
        speedup_half: cold_secs / warm_secs_half,
        delta_identical,
        full_bytes: snap_half.byte_len() as u64,
        delta_bytes: km.snapshot_delta_bytes,
        dirty_components: km.snapshot_dirty_components,
    };
    (m, stats)
}

/// Shard count the `sharded_soc` bench targets.
pub const SHARDED_SOC_SHARDS: usize = 4;

/// The multi-fabric topology the `sharded_soc` bench runs: wide enough
/// (8 tiles) that 4 shards get 2 tiles each, heavy enough per window that
/// cross-shard synchronization amortizes.
pub fn sharded_soc_spec() -> drcf_soc::prelude::ShardedSocSpec {
    use drcf_soc::prelude::*;
    ShardedSocSpec {
        tiles: 8,
        work: 24,
        fanout: 8,
        horizon: SimDuration::us(300),
        hash_slices: true,
        ..ShardedSocSpec::default()
    }
}

/// Measure one sharded run of `spec` (min wall time over `reps` passes).
fn time_sharded(
    spec: &drcf_soc::prelude::ShardedSocSpec,
    shards: usize,
    reps: usize,
) -> (drcf_soc::prelude::ShardedSocRun, f64) {
    let mut best = f64::INFINITY;
    let mut run = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = match spec.run_with_shards(shards) {
            Ok(r) => r,
            Err(e) => panic!("sharded_soc run with {shards} shards failed: {e:?}"),
        };
        best = best.min(t0.elapsed().as_secs_f64());
        run = Some(r);
    }
    match run {
        Some(r) => (r, best),
        None => panic!("sharded_soc needs at least one timing rep"),
    }
}

/// Measure the sharded multi-fabric SoC bench: the identical 8-tile
/// topology run single-threaded (the conservative-lookahead oracle) and
/// with [`SHARDED_SOC_SHARDS`] worker shards. Returns the sharded
/// measurement (events = total dispatched, seconds = sharded wall), the
/// live serial-vs-sharded wall speedup, the shard count, and whether the
/// two reports — per-LP metrics, probes, and per-window state hashes —
/// matched bit-for-bit, and the sharded run itself (for its
/// parallel-efficiency profile).
pub fn sharded_soc() -> (
    HotpathMeasurement,
    f64,
    usize,
    bool,
    drcf_soc::prelude::ShardedSocRun,
) {
    const TIMING_REPS: usize = 2;
    let spec = sharded_soc_spec();
    let (oracle, serial_secs) = time_sharded(&spec, 1, TIMING_REPS);
    let (sharded, shard_secs) = time_sharded(&spec, SHARDED_SOC_SHARDS, TIMING_REPS);
    let identical = oracle.report.same_outcome(&sharded.report);
    assert!(
        identical,
        "sharded run diverged from the oracle at {:?}",
        oracle.report.first_divergence(&sharded.report)
    );
    let m = HotpathMeasurement::new("sharded_soc", sharded.events(), shard_secs).with_note(
        "8 fabric tiles over 4 worker shards, conservative bridge-latency lookahead; \
         events and per-window state hashes asserted bit-identical to the single-threaded \
         oracle; speedup is serial wall over sharded wall",
    );
    (
        m,
        serial_secs / shard_secs,
        SHARDED_SOC_SHARDS,
        identical,
        sharded,
    )
}

/// Shard count the `sharded_e12` bench targets (the partitioner cuts the
/// topology into [`SHARDED_E12_FABRICS`]` + 1` logical processes).
pub const SHARDED_E12_SHARDS: usize = 4;
/// Fabric clusters in the `sharded_e12` bench topology.
pub const SHARDED_E12_FABRICS: usize = 3;
/// Context switches each churn master forces in the `sharded_e12` bench.
pub const SHARDED_E12_SWITCHES: u32 = 20;

/// The E12 hierarchical topology the `sharded_e12` bench runs: three DRCF
/// clusters behind slow bridges, each thrashed by its own churn master
/// while a latency probe works the CPU-local memory. Heavy 4096-word
/// contexts keep every fabric LP busy between the 10 us bridge-lookahead
/// synchronization windows.
pub fn sharded_e12_graph() -> std::sync::Arc<drcf_soc::prelude::SocGraph> {
    std::sync::Arc::new(crate::e12_hierarchy::sharded_e12_graph(
        4096,
        SHARDED_E12_FABRICS,
        SHARDED_E12_SWITCHES,
        400,
    ))
}

/// Simulated horizon of the `sharded_e12` bench (covers the full churn —
/// [`SHARDED_E12_SWITCHES`] switches of 4096 words per cluster plus bridge
/// round trips, quiescent around 2.5 ms — with deterministic headroom).
pub const SHARDED_E12_HORIZON: SimDuration = SimDuration::ms(3);

/// Measure one partitioned E12 run (min wall time over `reps` passes).
fn time_sharded_e12(
    graph: &std::sync::Arc<drcf_soc::prelude::SocGraph>,
    shards: usize,
    reps: usize,
) -> (drcf_soc::prelude::PartitionedRun, f64) {
    let mut best = f64::INFINITY;
    let mut run = None;
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = crate::e12_hierarchy::run_sharded_e12(graph, shards, SHARDED_E12_HORIZON);
        best = best.min(t0.elapsed().as_secs_f64());
        run = Some(r);
    }
    match run {
        Some(r) => (r, best),
        None => panic!("sharded_e12 needs at least one timing rep"),
    }
}

/// Measure the sharded E12 bench: the identical hierarchical SocSpec cut
/// at its bus bridges by the automatic partitioner, run single-threaded
/// (the oracle) and with [`SHARDED_E12_SHARDS`] worker shards. Returns the
/// sharded measurement, the live serial-vs-sharded wall speedup, the shard
/// count, whether the reports matched bit-for-bit, and the sharded run
/// itself (for its critical-link and parallel-efficiency reports).
pub fn sharded_e12() -> (
    HotpathMeasurement,
    f64,
    usize,
    bool,
    drcf_soc::prelude::PartitionedRun,
) {
    const TIMING_REPS: usize = 2;
    let graph = sharded_e12_graph();
    let (oracle, serial_secs) = time_sharded_e12(&graph, 1, TIMING_REPS);
    let (sharded, shard_secs) = time_sharded_e12(&graph, SHARDED_E12_SHARDS, TIMING_REPS);
    let identical = oracle.report.same_outcome(&sharded.report);
    assert!(
        identical,
        "sharded E12 run diverged from the oracle at {:?}",
        oracle.report.first_divergence(&sharded.report)
    );
    let expected = SHARDED_E12_FABRICS as u64 * u64::from(SHARDED_E12_SWITCHES);
    let switches = crate::e12_hierarchy::e12_switches(&sharded);
    assert_eq!(switches, expected, "every churn access must force a switch");
    let m = HotpathMeasurement::new("sharded_e12", sharded.events(), shard_secs).with_note(
        "3 DRCF clusters behind bridges, cut into 4 LPs by the automatic partitioner; \
         events and per-window state hashes asserted bit-identical to the single-threaded \
         oracle; speedup is serial wall over sharded wall",
    );
    (
        m,
        serial_secs / shard_secs,
        SHARDED_E12_SHARDS,
        identical,
        sharded,
    )
}

/// Serve-layer cache outcome: the same sweep requested cold (empty store)
/// and then warm (answered from the content-addressed snapshot store).
pub struct ServeCacheStats {
    /// Cold wall time over warm wall time for the identical request.
    pub speedup: f64,
    /// Points the warm request answered from the store.
    pub hits: u64,
    /// Points in the request.
    pub points: u64,
    /// Warm records are bit-identical to the cold ones.
    pub identical: bool,
}

/// Measure the simulation-as-a-service cache: serve one clock sweep from an
/// empty store (simulates prefix + every point), then serve the identical
/// request again (everything answered from durable records). The warm
/// answer must be bit-identical; the wall ratio is the cache-hit speedup
/// the perf gate tracks.
pub fn serve_cache_bench() -> (HotpathMeasurement, ServeCacheStats) {
    use drcf_serve::prelude::*;
    let dir = std::env::temp_dir().join(format!("drcf-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = SnapshotStore::open(&dir).expect("open bench store");
    let req = SweepRequest::small(4_000, vec![150, 250, 350, 500, 700]);

    let t0 = Instant::now();
    let cold = process_sweep(&store, &req).expect("cold serve sweep");
    let cold_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let warm = process_sweep(&store, &req).expect("warm serve sweep");
    let warm_secs = t1.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(&dir);

    let stats = ServeCacheStats {
        speedup: cold_secs / warm_secs.max(1e-9),
        hits: warm.from_cache as u64,
        points: req.points.len() as u64,
        identical: warm.records == cold.records && cold.simulated == req.points.len(),
    };
    let m = HotpathMeasurement::new("serve_cache", req.points.len() as u64, cold_secs).with_note(
        "5-point CPU-clock sweep served cold from an empty snapshot store, then re-served \
         warm from durable records; events counts sweep points, seconds is the cold wall",
    );
    (m, stats)
}

/// Run the full hot-path suite with default sizes. Returns the
/// measurements plus the storm's live coalescing-on-vs-off wall speedup
/// and the warm-fork stats (speedups at both fork depths, delta
/// round-trip identity, snapshot sizes).
pub fn run_suite() -> (Vec<HotpathMeasurement>, f64, WarmForkStats) {
    let (storm, on_vs_off) = ctx_switch_storm();
    let (warm_fork, warm_stats) = warm_fork_dse();
    (
        vec![
            dense_clock(3000),
            fifo_heavy(16, 20_000),
            e5_sweep(),
            storm,
            warm_fork,
        ],
        on_vs_off,
        warm_stats,
    )
}

/// Pre-optimization throughput (events/sec), measured on the commit just
/// before the zero-allocation dispatch rework with this same harness
/// (`--bench-json`, release build). Kept as the fixed "before" reference
/// in `BENCH_kernel.json`; absolute numbers are machine-specific, the
/// ratio is the tracked quantity.
pub const BASELINE_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("dense_clock", 11_586_250.0),
    ("fifo_heavy", 23_567_612.0),
    ("e5_ctx_switch_sweep", 8_434_458.0),
    // Storm reference: median per-burst (coalescing off) throughput of the
    // identical system on the same box; the live on-vs-off ratio is also
    // reported separately as `ctx_switch_storm_on_vs_off`.
    ("ctx_switch_storm", 4_400_000.0),
];

/// Render the whole suite (plus baseline and speedups) as JSON.
pub fn bench_json() -> Json {
    let (mut current, storm_on_vs_off, warm_stats) = run_suite();
    let (sharded, sharded_speedup, sharded_shards, sharded_identical, soc_run) = sharded_soc();
    current.push(sharded);
    let (e12, e12_speedup, e12_shards, e12_identical, e12_run) = sharded_e12();
    current.push(e12);
    let (serve_m, serve_stats) = serve_cache_bench();
    current.push(serve_m);
    let eff_json = |eff: &drcf_kernel::prelude::EfficiencyReport| {
        Json::obj()
            .with("parallel_efficiency", eff.parallel_efficiency.into())
            .with("load_imbalance", eff.load_imbalance.into())
    };
    let soc_eff = soc_run.report.profile.efficiency();
    let e12_eff = e12_run.efficiency();
    let e12_cl = e12_run.critical_links();
    let mut baseline_obj = Json::obj();
    for (name, eps) in BASELINE_EVENTS_PER_SEC {
        let _ = baseline_obj.set(name, (*eps).into());
    }
    let mut speedups = Json::obj();
    for m in &current {
        if let Some((_, base)) = BASELINE_EVENTS_PER_SEC.iter().find(|(n, _)| *n == m.name) {
            if base.is_finite() && *base > 0.0 {
                let _ = speedups.set(&m.name, (m.events_per_sec / base).into());
            }
        }
    }
    let hw_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    Json::obj()
        .with("schema", "drcf-bench-kernel-v1".into())
        .with(
            "current",
            Json::Arr(current.iter().map(HotpathMeasurement::to_json).collect()),
        )
        .with("baseline_events_per_sec", baseline_obj)
        .with("speedup_vs_baseline", speedups)
        .with("ctx_switch_storm_on_vs_off", storm_on_vs_off.into())
        .with("warm_fork_speedup", warm_stats.speedup.into())
        .with("warm_fork_speedup_half", warm_stats.speedup_half.into())
        .with(
            "warm_fork_delta_identical",
            Json::Bool(warm_stats.delta_identical),
        )
        .with(
            "warm_fork_snapshot_full_bytes",
            warm_stats.full_bytes.into(),
        )
        .with(
            "warm_fork_snapshot_delta_bytes",
            warm_stats.delta_bytes.into(),
        )
        .with(
            "warm_fork_snapshot_dirty_components",
            warm_stats.dirty_components.into(),
        )
        .with("sharded_soc_speedup", sharded_speedup.into())
        .with("sharded_soc_shards", (sharded_shards as u64).into())
        .with("sharded_soc_identical", Json::Bool(sharded_identical))
        .with("sharded_e12_speedup", e12_speedup.into())
        .with("sharded_e12_shards", (e12_shards as u64).into())
        .with("sharded_e12_identical", Json::Bool(e12_identical))
        .with("sharded_soc_efficiency", eff_json(&soc_eff))
        .with("sharded_e12_efficiency", eff_json(&e12_eff))
        .with("sharded_e12_critical_link", e12_cl.json())
        .with("serve_cache_hit_speedup", serve_stats.speedup.into())
        .with("serve_cache_hits", serve_stats.hits.into())
        .with("serve_points", serve_stats.points.into())
        .with("serve_identical", Json::Bool(serve_stats.identical))
        .with("hw_threads", (hw_threads as u64).into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_clock_counts_events() {
        let m = dense_clock(50);
        // 8 clocks, >=4 subscriber deliveries per posedge, 50us horizon.
        assert!(m.events > 10_000, "only {} events", m.events);
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn fifo_heavy_conserves_and_counts() {
        let m = fifo_heavy(2, 500);
        assert!(m.events >= 2 * 500, "only {} events", m.events);
    }

    #[test]
    fn bench_json_shape() {
        let m = HotpathMeasurement::new("x", 100, 0.5);
        let j = m.to_json();
        assert_eq!(j.get("events").unwrap().as_u64(), Some(100));
        assert_eq!(j.get("events_per_sec").unwrap().as_f64(), Some(200.0));
    }

    #[test]
    fn sharded_soc_matches_oracle_on_a_small_topology() {
        let spec = drcf_soc::prelude::ShardedSocSpec {
            tiles: 4,
            horizon: SimDuration::us(20),
            hash_slices: true,
            ..sharded_soc_spec()
        };
        let (a, _) = time_sharded(&spec, 1, 1);
        let (b, _) = time_sharded(&spec, SHARDED_SOC_SHARDS, 1);
        assert!(
            a.report.same_outcome(&b.report),
            "diverged at {:?}",
            a.report.first_divergence(&b.report)
        );
        assert!(a.events() > 10_000, "events: {}", a.events());
    }
}
