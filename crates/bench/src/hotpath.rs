//! Kernel hot-path throughput measurements.
//!
//! Three workloads sized so each runs in the hundreds of milliseconds:
//!
//! - **dense_clock** — many free-running clocks with several edge
//!   subscribers each; stresses the periodic-event path and subscriber
//!   fan-out (the innermost loop of every synchronous model).
//! - **fifo_heavy** — producer/consumer pairs over bounded FIFOs with
//!   extra passive observers; stresses `notify_fifo` fan-out and the
//!   delta-queue recycling.
//! - **e5_sweep** — the full §5.3 context-switch sweep (real bus + fabric
//!   traffic); the end-to-end experiment workload every DSE point pays.
//!
//! Each measurement reports kernel events dispatched per wall-clock
//! second. [`bench_json`] renders the suite (plus the recorded
//! pre-optimization baseline) as the `BENCH_kernel.json` document that
//! tracks the repo's perf trajectory.

use std::time::Instant;

use drcf_dse::prelude::Json;
use drcf_kernel::prelude::*;

use crate::e5_ctx_switch::measure_switch_cost;

/// One workload's throughput measurement.
#[derive(Debug, Clone)]
pub struct HotpathMeasurement {
    /// Workload name.
    pub name: String,
    /// Kernel deliveries dispatched to components.
    pub events: u64,
    /// Wall-clock seconds for the run.
    pub seconds: f64,
    /// `events / seconds`.
    pub events_per_sec: f64,
    /// Kernel dispatch profile for single-simulator workloads (absent for
    /// aggregated sweeps).
    pub profile: Option<DispatchProfile>,
}

impl HotpathMeasurement {
    fn new(name: &str, events: u64, seconds: f64) -> Self {
        HotpathMeasurement {
            name: name.to_string(),
            events,
            seconds,
            events_per_sec: if seconds > 0.0 {
                events as f64 / seconds
            } else {
                0.0
            },
            profile: None,
        }
    }

    fn with_profile(mut self, m: &KernelMetrics, seconds: f64) -> Self {
        self.profile = Some(DispatchProfile::from_metrics(m, seconds));
        self
    }

    /// Encode as a JSON object.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("name", self.name.as_str().into())
            .with("events", self.events.into())
            .with("seconds", self.seconds.into())
            .with("events_per_sec", self.events_per_sec.into());
        if let Some(p) = &self.profile {
            let _ = j.set("fast_clock_fraction", p.fast_clock_fraction.into());
            let _ = j.set("avg_deltas_per_timestep", p.avg_deltas_per_timestep.into());
            let _ = j.set("notifications_per_event", p.notifications_per_event.into());
        }
        j
    }
}

/// Build the dense-clock model: `n_clocks` free-running clocks at
/// staggered frequencies, `subs_per_clock` posedge subscribers each.
fn build_dense_clock(sim: &mut Simulator, n_clocks: usize, subs_per_clock: usize) {
    for c in 0..n_clocks {
        // 50..x MHz staggered so edges rarely coincide (worst case for a
        // periodic fast path: no batching windfall).
        let clk = sim.add_clock_mhz(&format!("clk{c}"), 50 + 37 * c as u64);
        for s in 0..subs_per_clock {
            sim.add(
                &format!("sub{c}_{s}"),
                FnComponent::new(move |api, msg| {
                    if matches!(msg.kind, MsgKind::Start) {
                        api.subscribe_clock(clk, Edge::Pos);
                        if s == 0 {
                            api.subscribe_clock(clk, Edge::Neg);
                        }
                    }
                }),
            );
        }
    }
    // One foreground heartbeat so run_until sees foreground work; its
    // contribution (1 event/us) is noise next to the clock edges.
    sim.add(
        "heartbeat",
        FnComponent::new(|api, msg| match msg.kind {
            MsgKind::Start | MsgKind::Timer(_) => api.timer_in(SimDuration::us(1), 0),
            _ => {}
        }),
    );
}

/// Measure the dense-clock workload on a fresh simulator.
pub fn dense_clock(horizon_us: u64) -> HotpathMeasurement {
    let mut sim = Simulator::new();
    build_dense_clock(&mut sim, 8, 4);
    let t0 = Instant::now();
    let stop = sim.run_until(SimTime::ZERO + SimDuration::us(horizon_us));
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(stop, Ok(StopReason::TimeLimit));
    HotpathMeasurement::new("dense_clock", sim.metrics().dispatched, dt)
        .with_profile(&sim.metrics(), dt)
}

/// Measure the FIFO-heavy workload: `pairs` producer/consumer pairs plus
/// two passive observers per FIFO, `tokens` tokens per producer.
pub fn fifo_heavy(pairs: usize, tokens: u64) -> HotpathMeasurement {
    let mut sim = Simulator::new();
    for p in 0..pairs {
        let fifo = sim.add_fifo::<u64>(&format!("f{p}"), 8);
        sim.add(
            &format!("prod{p}"),
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.timer_in(SimDuration::ns(10), tokens),
                MsgKind::Timer(left) if left > 0 => {
                    if api.fifo_try_put(fifo, left).is_ok() {
                        api.timer_in(SimDuration::ns(10), left - 1);
                    } else {
                        // Full: retry after the consumer drains.
                        api.timer_in(SimDuration::ns(20), left);
                    }
                }
                _ => {}
            }),
        );
        sim.add(
            &format!("cons{p}"),
            FnComponent::new(move |api, msg| match msg.kind {
                MsgKind::Start => api.subscribe_fifo(fifo),
                MsgKind::Fifo(_, FifoEventKind::DataWritten) => {
                    while api.fifo_try_get(fifo).is_some() {}
                }
                _ => {}
            }),
        );
        for o in 0..2 {
            sim.add(
                &format!("obs{p}_{o}"),
                FnComponent::new(move |api, msg| {
                    if matches!(msg.kind, MsgKind::Start) {
                        api.subscribe_fifo(fifo);
                    }
                }),
            );
        }
    }
    let t0 = Instant::now();
    let stop = sim.run();
    let dt = t0.elapsed().as_secs_f64();
    assert_eq!(stop, Ok(StopReason::Quiescent));
    HotpathMeasurement::new("fifo_heavy", sim.metrics().dispatched, dt)
        .with_profile(&sim.metrics(), dt)
}

/// Measure the E5 context-switch sweep (serial, so the number is a pure
/// single-thread kernel throughput).
pub fn e5_sweep() -> HotpathMeasurement {
    let sizes = [64u64, 256, 1024, 4096];
    let widths = [1u64, 2, 4];
    let lat = [2u64, 8];
    let mut events = 0u64;
    let t0 = Instant::now();
    // One sweep is ~10ms; repeat so the timing is not noise-dominated.
    for _ in 0..16 {
        for &s in &sizes {
            for &w in &widths {
                for &l in &lat {
                    let p = measure_switch_cost(s, w, l);
                    events += p.dispatched;
                }
            }
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    HotpathMeasurement::new("e5_ctx_switch_sweep", events, dt)
}

/// Run the full hot-path suite with default sizes.
pub fn run_suite() -> Vec<HotpathMeasurement> {
    vec![dense_clock(3000), fifo_heavy(16, 20_000), e5_sweep()]
}

/// Pre-optimization throughput (events/sec), measured on the commit just
/// before the zero-allocation dispatch rework with this same harness
/// (`--bench-json`, release build). Kept as the fixed "before" reference
/// in `BENCH_kernel.json`; absolute numbers are machine-specific, the
/// ratio is the tracked quantity.
pub const BASELINE_EVENTS_PER_SEC: &[(&str, f64)] = &[
    ("dense_clock", 11_586_250.0),
    ("fifo_heavy", 23_567_612.0),
    ("e5_ctx_switch_sweep", 8_434_458.0),
];

/// Render the whole suite (plus baseline and speedups) as JSON.
pub fn bench_json() -> Json {
    let current = run_suite();
    let mut baseline_obj = Json::obj();
    for (name, eps) in BASELINE_EVENTS_PER_SEC {
        let _ = baseline_obj.set(name, (*eps).into());
    }
    let mut speedups = Json::obj();
    for m in &current {
        if let Some((_, base)) = BASELINE_EVENTS_PER_SEC.iter().find(|(n, _)| *n == m.name) {
            if base.is_finite() && *base > 0.0 {
                let _ = speedups.set(&m.name, (m.events_per_sec / base).into());
            }
        }
    }
    Json::obj()
        .with("schema", "drcf-bench-kernel-v1".into())
        .with(
            "current",
            Json::Arr(current.iter().map(HotpathMeasurement::to_json).collect()),
        )
        .with("baseline_events_per_sec", baseline_obj)
        .with("speedup_vs_baseline", speedups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_clock_counts_events() {
        let m = dense_clock(50);
        // 8 clocks, >=4 subscriber deliveries per posedge, 50us horizon.
        assert!(m.events > 10_000, "only {} events", m.events);
        assert!(m.seconds > 0.0);
    }

    #[test]
    fn fifo_heavy_conserves_and_counts() {
        let m = fifo_heavy(2, 500);
        assert!(m.events >= 2 * 500, "only {} events", m.events);
    }

    #[test]
    fn bench_json_shape() {
        let m = HotpathMeasurement::new("x", 100, 0.5);
        let j = m.to_json();
        assert_eq!(j.get("events").unwrap().as_u64(), Some(100));
        assert_eq!(j.get("events_per_sec").unwrap().as_f64(), Some(200.0));
    }
}
