//! E3 — Fig. 3: the ADRIATIC design flow, end to end.
//!
//! Walks every box of the flow diagram mechanically:
//! system specification (executable task graph) → profiling →
//! partitioning (rule-based candidate selection) → mapping (DRCF
//! transformation parameters) → system-level simulation → back-annotation
//! (measured numbers refine the next iteration's parameters).

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;
use drcf_transform::prelude::{select_candidates, SelectionRules};

use crate::common::{r1, r2, ExperimentResult};

/// All artifacts the flow produces, per phase.
#[derive(Debug, Clone)]
pub struct FlowArtifacts {
    /// Phase 1: specification size (tasks).
    pub tasks: usize,
    /// Phase 2: per-block busy fractions from the analytic profile.
    pub profile: Vec<(String, f64)>,
    /// Phase 3: the candidate group chosen for the DRCF.
    pub candidates: Vec<String>,
    /// Phase 4/5: baseline (all fixed) metrics.
    pub baseline: RunMetrics,
    /// Phase 4/5: reconfigurable-mapping metrics.
    pub mapped: RunMetrics,
    /// Phase 6: back-annotated per-switch cost measured in simulation, ns.
    pub measured_switch_cost_ns: f64,
}

/// Run the whole flow for the wireless receiver.
pub fn run_flow() -> FlowArtifacts {
    // 1. System specification.
    let w = wireless_receiver(4, 64);
    let tasks = w.graph.tasks.len();

    // 2. Profiling (the partitioning phase's input).
    let (profile, _) = asap_profile(&w).expect("library workloads are acyclic");
    let busy: Vec<(String, f64)> = profile
        .blocks
        .iter()
        .map(|b| (b.instance.clone(), b.busy_fraction))
        .collect();

    // 3. Partitioning: rules of thumb select the DRCF candidates.
    let groups = select_candidates(&profile, &SelectionRules::default());
    let candidates = groups
        .first()
        .map(|g| g.instances.clone())
        .unwrap_or_default();
    assert!(!candidates.is_empty(), "flow needs a candidate group");

    // 4+5. Mapping + system-level simulation, baseline and mapped.
    let baseline = run_soc(build_soc(&w, &SocSpec::default()).expect("baseline")).0;
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &candidates, 1.1, 1),
            candidates: candidates.clone(),
            technology: varicore(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        memory: drcf_bus::prelude::MemoryConfig {
            base: 0,
            size_words: 0x20000,
            ..drcf_bus::prelude::MemoryConfig::default()
        },
        ..SocSpec::default()
    };
    let mapped = run_soc(build_soc(&w, &spec).expect("mapped")).0;

    // 6. Back-annotation: measured reconfiguration cost per switch.
    let measured_switch_cost_ns = if mapped.switches > 0 {
        mapped.reconfig_overhead * mapped.makespan.as_ns_f64() / mapped.switches as f64
    } else {
        0.0
    };

    FlowArtifacts {
        tasks,
        profile: busy,
        candidates,
        baseline,
        mapped,
        measured_switch_cost_ns,
    }
}

/// Execute E3.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new("E3", "Fig. 3 — the ADRIATIC co-design flow end to end");
    let a = run_flow();

    let mut t = Table::new("flow phases and their artifacts", &["phase", "artifact"]);
    t.row(vec![
        "system specification".into(),
        format!("{} tasks, 3 kernels", a.tasks),
    ]);
    t.row(vec![
        "profiling".into(),
        a.profile
            .iter()
            .map(|(n, f)| format!("{n}={}", fmt_pct(*f)))
            .collect::<Vec<_>>()
            .join(", "),
    ]);
    t.row(vec![
        "partitioning (rules §5.1)".into(),
        format!("fold {{{}}} into one DRCF", a.candidates.join(", ")),
    ]);
    t.row(vec![
        "mapping".into(),
        "VariCore fabric, config images in system memory".into(),
    ]);
    t.row(vec![
        "system-level simulation".into(),
        format!(
            "baseline {} / mapped {} ({}x), area {} -> {} kgates",
            fmt_ns(a.baseline.makespan.as_ns_f64()),
            fmt_ns(a.mapped.makespan.as_ns_f64()),
            r2(a.mapped.makespan.as_ns_f64() / a.baseline.makespan.as_ns_f64()),
            r1(a.baseline.area_gates as f64 / 1000.0),
            r1(a.mapped.area_gates as f64 / 1000.0),
        ),
    ]);
    t.row(vec![
        "back-annotation".into(),
        format!(
            "measured {} per context switch feeds the next iteration",
            fmt_ns(a.measured_switch_cost_ns)
        ),
    ]);
    res.tables.push(t);

    assert!(a.baseline.ok && a.mapped.ok);
    assert!(a.mapped.area_gates < a.baseline.area_gates);
    assert!(a.measured_switch_cost_ns > 0.0);
    res.summary.push(format!(
        "one full flow iteration: {} candidate blocks selected by profile-driven rules, mapped, simulated ({} context switches), and back-annotated",
        a.candidates.len(),
        a.mapped.switches
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_produces_all_artifacts() {
        let a = run_flow();
        assert_eq!(a.tasks, 20);
        assert_eq!(a.profile.len(), 3);
        assert_eq!(a.candidates.len(), 3);
        assert!(a.mapped.switches >= 3);
    }

    #[test]
    fn e3_renders() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 6);
    }
}
