//! E12 (extension) — §4: "In real life, there is usually need for more
//! complex architectures."
//!
//! The paper criticizes partitioning methodologies restricted to a single
//! bus + single reconfigurable block. With the bus bridge, the same DRCF
//! system can be built hierarchically: the fabric and its configuration
//! memory live on a peripheral bus behind a bridge, so context-switch
//! traffic never touches the CPU's local bus. The experiment measures the
//! latency a latency-sensitive local master observes while the fabric
//! thrashes, in both topologies.

use std::sync::Arc;

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_kernel::json::{ju64, Json};
use drcf_kernel::prelude::*;
use drcf_kernel::snapshot as snap;
use drcf_soc::prelude::{run_partitioned, Part, PartitionedRun, SocGraph};

use crate::common::{r2, ExperimentResult};

/// A latency-sensitive master: reads the local memory every `period`,
/// recording each read's latency.
struct Prober {
    port: MasterPort,
    period: SimDuration,
    reads_left: u32,
    addr: Addr,
}

impl Component for Prober {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => api.timer_in(self.period, 0),
            MsgKind::Timer(_) => {
                if self.reads_left > 0 {
                    self.reads_left -= 1;
                    let a = self.addr;
                    self.port.read(api, a, 1);
                    let p = self.period;
                    api.timer_in(p, 0);
                }
            }
            _ => {
                let _ = self.port.take_response(api, msg);
            }
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("port", self.port.snapshot_json())
            .with("reads_left", ju64(u64::from(self.reads_left))))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.port.restore_json(snap::field(state, "port")?)?;
        self.reads_left = snap::u64_field(state, "reads_left")? as u32;
        Ok(())
    }
}

/// A churn master: alternates accesses between two DRCF contexts, forcing
/// a context switch per access.
struct Churner {
    port: MasterPort,
    accesses_left: u32,
    bases: [Addr; 2],
    i: usize,
}

impl Component for Churner {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        let next = |s: &mut Self, api: &mut Api<'_>| {
            if s.accesses_left > 0 {
                s.accesses_left -= 1;
                let addr = s.bases[s.i % 2];
                s.i += 1;
                s.port.write(api, addr, vec![s.i as u64]);
            }
        };
        match &msg.kind {
            MsgKind::Start => next(self, api),
            _ => {
                if self.port.take_response(api, msg).is_ok() {
                    next(self, api);
                }
            }
        }
    }

    fn snapshot(&mut self) -> SimResult<Json> {
        Ok(Json::obj()
            .with("port", self.port.snapshot_json())
            .with("accesses_left", ju64(u64::from(self.accesses_left)))
            .with("i", ju64(self.i as u64)))
    }

    fn restore(&mut self, state: &Json) -> SimResult<()> {
        self.port.restore_json(snap::field(state, "port")?)?;
        self.accesses_left = snap::u64_field(state, "accesses_left")? as u32;
        self.i = snap::usize_field(state, "i")?;
        Ok(())
    }
}

fn drcf(contexts_bus: ComponentId, config_words: u64) -> Drcf {
    Drcf::new(
        DrcfConfig {
            clock_mhz: 100,
            config_path: ConfigPath::SystemBus {
                bus: contexts_bus,
                priority: 3,
                burst: 16,
            },
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
            abort_load_of: vec![],
            coalesce_config_traffic: false,
        },
        vec![
            Context::new(
                Box::new(RegisterFile::new("ctx_a", 0x8000, 16, 1)),
                ContextParams {
                    config_addr: 0x1_0100,
                    config_size_words: config_words,
                    ..ContextParams::default()
                },
            ),
            Context::new(
                Box::new(RegisterFile::new("ctx_b", 0x8100, 16, 1)),
                ContextParams {
                    config_addr: 0x1_0100 + config_words,
                    config_size_words: config_words,
                    ..ContextParams::default()
                },
            ),
        ],
    )
}

/// Flat topology: everything on one bus.
/// ids: prober 0, churner 1, bus 2, local mem 3, cfg mem 4, drcf 5.
pub fn run_flat(config_words: u64) -> (f64, u64) {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 3).unwrap();
    map.add(0x1_0000, 0x1_7FFF, 4).unwrap();
    map.add(0x8000, 0x800F, 5).unwrap();
    map.add(0x8100, 0x810F, 5).unwrap();
    sim.add(
        "prober",
        Prober {
            port: MasterPort::new(2, 1),
            period: SimDuration::ns(500),
            reads_left: 200,
            addr: 0x10,
        },
    );
    sim.add(
        "churner",
        Churner {
            port: MasterPort::new(2, 1),
            accesses_left: 20,
            bases: [0x8000, 0x8100],
            i: 0,
        },
    );
    sim.add("bus", Bus::new(BusConfig::default(), map));
    sim.add(
        "local_mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    sim.add(
        "cfg_mem",
        Memory::new(MemoryConfig {
            base: 0x1_0000,
            size_words: 0x8000,
            ..MemoryConfig::default()
        }),
    );
    sim.add("drcf", drcf(2, config_words));
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let p = sim.get::<Prober>(0);
    let mean = p.port.latency.mean().as_ns_f64();
    let max = p.port.latency.max().as_fs() / 1_000_000;
    (mean, max)
}

/// Hierarchical topology: the fabric + config memory behind a bridge.
/// ids: prober 0, churner 1, bus0 2, local mem 3, bridge 4, bus1 5,
/// cfg mem 6, drcf 7.
pub fn run_hierarchical(config_words: u64) -> (f64, u64) {
    let mut sim = Simulator::new();
    let mut map0 = AddressMap::new();
    map0.add(0x0000, 0x0FFF, 3).unwrap();
    map0.add(0x8000, 0x1_FFFF, 4).unwrap(); // remote window -> bridge
    let mut map1 = AddressMap::new();
    map1.add(0x1_0000, 0x1_7FFF, 6).unwrap();
    map1.add(0x8000, 0x800F, 7).unwrap();
    map1.add(0x8100, 0x810F, 7).unwrap();
    sim.add(
        "prober",
        Prober {
            port: MasterPort::new(2, 1),
            period: SimDuration::ns(500),
            reads_left: 200,
            addr: 0x10,
        },
    );
    sim.add(
        "churner",
        Churner {
            port: MasterPort::new(2, 1),
            accesses_left: 20,
            bases: [0x8000, 0x8100],
            i: 0,
        },
    );
    sim.add("bus0", Bus::new(BusConfig::default(), map0));
    sim.add(
        "local_mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    sim.add("bridge", BusBridge::new(BridgeConfig::default(), 5));
    sim.add("bus1", Bus::new(BusConfig::default(), map1));
    sim.add(
        "cfg_mem",
        Memory::new(MemoryConfig {
            base: 0x1_0000,
            size_words: 0x8000,
            ..MemoryConfig::default()
        }),
    );
    // The fabric masters bus1 — its config traffic stays downstream.
    sim.add("drcf", drcf(5, config_words));
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let p = sim.get::<Prober>(0);
    let mean = p.port.latency.mean().as_ns_f64();
    let max = p.port.latency.max().as_fs() / 1_000_000;
    (mean, max)
}

/// Base of fabric cluster `c`'s address window in the sharded topology.
/// Clusters are spaced 1 MiW apart so every cluster's register + config
/// ranges are disjoint and a single bridge window covers exactly one.
fn fabric_base(c: usize) -> Addr {
    0x10_0000 * (c as Addr + 1)
}

/// The E12 system as a partitionable [`SocGraph`]: one CPU segment
/// (prober + local memory + one churn master per fabric cluster) and
/// `fabrics` peripheral segments, each holding its own config memory and
/// DRCF behind a slow bridge (100 forward / 100 return cycles at 10 MHz,
/// i.e. 10 us of conservative lookahead per direction). Cutting at the
/// bridges yields `fabrics + 1` logical processes whose context-switch
/// storms advance concurrently.
pub fn sharded_e12_graph(
    config_words: u64,
    fabrics: usize,
    accesses: u32,
    probe_reads: u32,
) -> SocGraph {
    let mut g = SocGraph::new();
    let cpu = g.add_segment("cpu", Some(BusConfig::default()));
    g.add_part(
        cpu,
        Part::new("prober", move |sim, ctx| {
            let bus = ctx.bus()?;
            Ok(sim.add(
                "prober",
                Prober {
                    port: MasterPort::new(bus, 1),
                    period: SimDuration::ns(500),
                    reads_left: probe_reads,
                    addr: 0x10,
                },
            ))
        })
        .with_weight(2)
        .with_probe(|sim, id| {
            let p = sim.get::<Prober>(id);
            Ok(Json::obj()
                .with("reads", ju64(p.port.latency.count()))
                .with("mean_latency_fs", ju64(p.port.latency.mean().as_fs()))
                .with("max_latency_fs", ju64(p.port.latency.max().as_fs())))
        }),
    );
    g.add_part(cpu, mem_part("local_mem", 0x0000, 0x1000));
    for c in 0..fabrics {
        let base = fabric_base(c);
        g.add_part(
            cpu,
            Part::new(&format!("churner{c}"), move |sim, ctx| {
                let bus = ctx.bus()?;
                Ok(sim.add(
                    &format!("churner{c}"),
                    Churner {
                        port: MasterPort::new(bus, 1),
                        accesses_left: accesses,
                        bases: [base + 0x8000, base + 0x8100],
                        i: 0,
                    },
                ))
            })
            .with_probe(|sim, id| {
                let ch = sim.get::<Churner>(id);
                Ok(Json::obj()
                    .with("issued", ju64(ch.i as u64))
                    .with("accesses_left", ju64(u64::from(ch.accesses_left))))
            }),
        );
        let fab = g.add_segment(&format!("fabric{c}"), Some(BusConfig::default()));
        g.add_part(
            fab,
            mem_part(&format!("cfg_mem{c}"), base + 0x1_0000, 0x8000),
        );
        g.add_part(
            fab,
            Part::new(&format!("drcf{c}"), move |sim, ctx| {
                let bus = ctx.bus()?;
                Ok(sim.add(
                    &format!("drcf{c}"),
                    Drcf::new(
                        DrcfConfig {
                            clock_mhz: 100,
                            config_path: ConfigPath::SystemBus {
                                bus,
                                priority: 3,
                                burst: 16,
                            },
                            scheduler: SchedulerConfig::default(),
                            overlap_load_exec: false,
                            abort_load_of: vec![],
                            coalesce_config_traffic: false,
                        },
                        vec![
                            Context::new(
                                Box::new(RegisterFile::new("ctx_a", base + 0x8000, 16, 1)),
                                ContextParams {
                                    config_addr: base + 0x1_0100,
                                    config_size_words: config_words,
                                    ..ContextParams::default()
                                },
                            ),
                            Context::new(
                                Box::new(RegisterFile::new("ctx_b", base + 0x8100, 16, 1)),
                                ContextParams {
                                    config_addr: base + 0x1_0100 + config_words,
                                    config_size_words: config_words,
                                    ..ContextParams::default()
                                },
                            ),
                        ],
                    ),
                ))
            })
            .with_claim(base + 0x8000, base + 0x800F)
            .with_claim(base + 0x8100, base + 0x810F)
            .with_weight(4)
            .with_probe(|sim, id| {
                let f = sim.get::<Drcf>(id);
                Ok(Json::obj()
                    .with("switches", ju64(f.stats.switches))
                    .with("config_words", ju64(f.stats.config_words)))
            }),
        );
        g.add_bridge(
            &format!("bridge{c}"),
            BridgeConfig {
                forward_cycles: 100,
                return_cycles: 100,
                clock_mhz: 10,
                priority: 1,
            },
            cpu,
            fab,
            (base + 0x8000, base + 0x1_FFFF),
        );
    }
    g
}

/// A memory part claiming `[base, base + words)` with deterministic slave
/// timing registered at its segment bus (required for coalescing and for
/// the partitioner's address map).
fn mem_part(name: &str, base: Addr, words: usize) -> Part {
    let cfg = MemoryConfig {
        base,
        size_words: words,
        ..MemoryConfig::default()
    };
    let timing = cfg.slave_timing();
    let owned = name.to_string();
    Part::new(name, move |sim, _ctx| {
        Ok(sim.add(&owned, Memory::new(cfg.clone())))
    })
    .with_claim(base, base + words as Addr - 1)
    .with_timing(timing)
}

/// Run the sharded E12 graph to `horizon` with per-window state hashing.
/// `shards == 1` is the single-LP oracle; any other count must be
/// bit-identical to it.
pub fn run_sharded_e12(
    graph: &Arc<SocGraph>,
    shards: usize,
    horizon: SimDuration,
) -> PartitionedRun {
    let cfg = ShardConfig::to(SimTime::ZERO + horizon)
        .shards(shards)
        .hash_slices(true);
    run_sharded_e12_with(graph, &cfg)
}

/// Run the sharded E12 graph under an explicit [`ShardConfig`] — the
/// hook the experiments CLI uses to enable per-LP tracing
/// (`ShardConfig::trace`) on top of the standard hashing setup.
pub fn run_sharded_e12_with(graph: &Arc<SocGraph>, cfg: &ShardConfig) -> PartitionedRun {
    match run_partitioned(graph, cfg) {
        Ok(r) => r,
        Err(e) => panic!("sharded E12 run with {} shards failed: {e:?}", cfg.shards),
    }
}

/// Total context switches across every fabric segment of a sharded E12 run.
pub fn e12_switches(run: &PartitionedRun) -> u64 {
    let mut total = 0;
    for lp in &run.report.lps {
        let parts = lp.probe.get("parts").and_then(Json::as_obj).unwrap_or(&[]);
        for (name, p) in parts {
            if name.starts_with("drcf") {
                total += p.get("switches").and_then(Json::as_u64).unwrap_or(0);
            }
        }
    }
    total
}

/// Execute E12.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E12",
        "extension (§4) — hierarchical bus: insulating the CPU from configuration traffic",
    );
    let mut t = Table::new(
        "local-master read latency while the fabric thrashes (20 switches)",
        &[
            "topology",
            "config words",
            "mean latency (ns)",
            "max latency (ns)",
        ],
    );
    let mut pairs = Vec::new();
    for words in [512u64, 4096] {
        let flat = run_flat(words);
        let hier = run_hierarchical(words);
        t.row(vec![
            "flat (single bus)".into(),
            words.to_string(),
            r2(flat.0),
            flat.1.to_string(),
        ]);
        t.row(vec![
            "hierarchical (bridge)".into(),
            words.to_string(),
            r2(hier.0),
            hier.1.to_string(),
        ]);
        pairs.push((words, flat, hier));
    }
    res.tables.push(t);

    for (words, flat, hier) in &pairs {
        assert!(
            hier.0 < flat.0,
            "hierarchy must shield the local master ({words} words): {} vs {}",
            hier.0,
            flat.0
        );
    }
    // The shielding grows with config volume.
    let small_gain = pairs[0].1 .0 / pairs[0].2 .0;
    let large_gain = pairs[1].1 .0 / pairs[1].2 .0;
    assert!(large_gain >= small_gain * 0.9);
    res.summary.push(format!(
        "moving the fabric + config memory behind a bridge cuts the local master's mean read latency {:.1}x (4096-word contexts) — the 'more complex architectures' the paper's §4 demands are expressible and measurable",
        large_gain
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_shields_local_traffic() {
        let flat = run_flat(2048);
        let hier = run_hierarchical(2048);
        assert!(hier.0 < flat.0, "hier {} vs flat {}", hier.0, flat.0);
    }

    #[test]
    fn e12_renders() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4);
    }

    #[test]
    fn sharded_e12_cuts_into_one_lp_per_fabric_plus_cpu() {
        let g = Arc::new(sharded_e12_graph(256, 2, 4, 20));
        let plan = drcf_soc::prelude::plan_partition(&g).expect("plan");
        assert_eq!(plan.lp_count(), 3, "cpu + 2 fabric segments");
        assert_eq!(plan.cut.len(), 2, "both bridges cut");
        assert!(plan.local.is_empty(), "no merged bridges");
    }

    #[test]
    fn sharded_e12_matches_the_single_lp_oracle() {
        let g = Arc::new(sharded_e12_graph(256, 1, 6, 100));
        let horizon = SimDuration::us(300);
        let oracle = run_sharded_e12(&g, 1, horizon);
        let sharded = run_sharded_e12(&g, 2, horizon);
        assert!(
            oracle.report.same_outcome(&sharded.report),
            "diverged at {:?}",
            oracle.report.first_divergence(&sharded.report)
        );
        assert_eq!(oracle.metrics, sharded.metrics);
        // The churn actually completed: every access forced a switch.
        assert_eq!(
            e12_switches(&sharded),
            6,
            "churn must finish in the horizon"
        );
        assert!(sharded.report.messages > 0, "traffic must cross the cut");
    }
}
