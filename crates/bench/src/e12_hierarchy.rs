//! E12 (extension) — §4: "In real life, there is usually need for more
//! complex architectures."
//!
//! The paper criticizes partitioning methodologies restricted to a single
//! bus + single reconfigurable block. With the bus bridge, the same DRCF
//! system can be built hierarchically: the fabric and its configuration
//! memory live on a peripheral bus behind a bridge, so context-switch
//! traffic never touches the CPU's local bus. The experiment measures the
//! latency a latency-sensitive local master observes while the fabric
//! thrashes, in both topologies.

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_kernel::prelude::*;

use crate::common::{r2, ExperimentResult};

/// A latency-sensitive master: reads the local memory every `period`,
/// recording each read's latency.
struct Prober {
    port: MasterPort,
    period: SimDuration,
    reads_left: u32,
    addr: Addr,
}

impl Component for Prober {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => api.timer_in(self.period, 0),
            MsgKind::Timer(_) => {
                if self.reads_left > 0 {
                    self.reads_left -= 1;
                    let a = self.addr;
                    self.port.read(api, a, 1);
                    let p = self.period;
                    api.timer_in(p, 0);
                }
            }
            _ => {
                let _ = self.port.take_response(api, msg);
            }
        }
    }
}

/// A churn master: alternates accesses between two DRCF contexts, forcing
/// a context switch per access.
struct Churner {
    port: MasterPort,
    accesses_left: u32,
    bases: [Addr; 2],
    i: usize,
}

impl Component for Churner {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        let next = |s: &mut Self, api: &mut Api<'_>| {
            if s.accesses_left > 0 {
                s.accesses_left -= 1;
                let addr = s.bases[s.i % 2];
                s.i += 1;
                s.port.write(api, addr, vec![s.i as u64]);
            }
        };
        match &msg.kind {
            MsgKind::Start => next(self, api),
            _ => {
                if self.port.take_response(api, msg).is_ok() {
                    next(self, api);
                }
            }
        }
    }
}

fn drcf(contexts_bus: ComponentId, config_words: u64) -> Drcf {
    Drcf::new(
        DrcfConfig {
            clock_mhz: 100,
            config_path: ConfigPath::SystemBus {
                bus: contexts_bus,
                priority: 3,
                burst: 16,
            },
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
            abort_load_of: vec![],
            coalesce_config_traffic: false,
        },
        vec![
            Context::new(
                Box::new(RegisterFile::new("ctx_a", 0x8000, 16, 1)),
                ContextParams {
                    config_addr: 0x1_0100,
                    config_size_words: config_words,
                    ..ContextParams::default()
                },
            ),
            Context::new(
                Box::new(RegisterFile::new("ctx_b", 0x8100, 16, 1)),
                ContextParams {
                    config_addr: 0x1_0100 + config_words,
                    config_size_words: config_words,
                    ..ContextParams::default()
                },
            ),
        ],
    )
}

/// Flat topology: everything on one bus.
/// ids: prober 0, churner 1, bus 2, local mem 3, cfg mem 4, drcf 5.
pub fn run_flat(config_words: u64) -> (f64, u64) {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 3).unwrap();
    map.add(0x1_0000, 0x1_7FFF, 4).unwrap();
    map.add(0x8000, 0x800F, 5).unwrap();
    map.add(0x8100, 0x810F, 5).unwrap();
    sim.add(
        "prober",
        Prober {
            port: MasterPort::new(2, 1),
            period: SimDuration::ns(500),
            reads_left: 200,
            addr: 0x10,
        },
    );
    sim.add(
        "churner",
        Churner {
            port: MasterPort::new(2, 1),
            accesses_left: 20,
            bases: [0x8000, 0x8100],
            i: 0,
        },
    );
    sim.add("bus", Bus::new(BusConfig::default(), map));
    sim.add(
        "local_mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    sim.add(
        "cfg_mem",
        Memory::new(MemoryConfig {
            base: 0x1_0000,
            size_words: 0x8000,
            ..MemoryConfig::default()
        }),
    );
    sim.add("drcf", drcf(2, config_words));
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let p = sim.get::<Prober>(0);
    let mean = p.port.latency.mean().as_ns_f64();
    let max = p.port.latency.max().as_fs() / 1_000_000;
    (mean, max)
}

/// Hierarchical topology: the fabric + config memory behind a bridge.
/// ids: prober 0, churner 1, bus0 2, local mem 3, bridge 4, bus1 5,
/// cfg mem 6, drcf 7.
pub fn run_hierarchical(config_words: u64) -> (f64, u64) {
    let mut sim = Simulator::new();
    let mut map0 = AddressMap::new();
    map0.add(0x0000, 0x0FFF, 3).unwrap();
    map0.add(0x8000, 0x1_FFFF, 4).unwrap(); // remote window -> bridge
    let mut map1 = AddressMap::new();
    map1.add(0x1_0000, 0x1_7FFF, 6).unwrap();
    map1.add(0x8000, 0x800F, 7).unwrap();
    map1.add(0x8100, 0x810F, 7).unwrap();
    sim.add(
        "prober",
        Prober {
            port: MasterPort::new(2, 1),
            period: SimDuration::ns(500),
            reads_left: 200,
            addr: 0x10,
        },
    );
    sim.add(
        "churner",
        Churner {
            port: MasterPort::new(2, 1),
            accesses_left: 20,
            bases: [0x8000, 0x8100],
            i: 0,
        },
    );
    sim.add("bus0", Bus::new(BusConfig::default(), map0));
    sim.add(
        "local_mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    sim.add("bridge", BusBridge::new(BridgeConfig::default(), 5));
    sim.add("bus1", Bus::new(BusConfig::default(), map1));
    sim.add(
        "cfg_mem",
        Memory::new(MemoryConfig {
            base: 0x1_0000,
            size_words: 0x8000,
            ..MemoryConfig::default()
        }),
    );
    // The fabric masters bus1 — its config traffic stays downstream.
    sim.add("drcf", drcf(5, config_words));
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let p = sim.get::<Prober>(0);
    let mean = p.port.latency.mean().as_ns_f64();
    let max = p.port.latency.max().as_fs() / 1_000_000;
    (mean, max)
}

/// Execute E12.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E12",
        "extension (§4) — hierarchical bus: insulating the CPU from configuration traffic",
    );
    let mut t = Table::new(
        "local-master read latency while the fabric thrashes (20 switches)",
        &[
            "topology",
            "config words",
            "mean latency (ns)",
            "max latency (ns)",
        ],
    );
    let mut pairs = Vec::new();
    for words in [512u64, 4096] {
        let flat = run_flat(words);
        let hier = run_hierarchical(words);
        t.row(vec![
            "flat (single bus)".into(),
            words.to_string(),
            r2(flat.0),
            flat.1.to_string(),
        ]);
        t.row(vec![
            "hierarchical (bridge)".into(),
            words.to_string(),
            r2(hier.0),
            hier.1.to_string(),
        ]);
        pairs.push((words, flat, hier));
    }
    res.tables.push(t);

    for (words, flat, hier) in &pairs {
        assert!(
            hier.0 < flat.0,
            "hierarchy must shield the local master ({words} words): {} vs {}",
            hier.0,
            flat.0
        );
    }
    // The shielding grows with config volume.
    let small_gain = pairs[0].1 .0 / pairs[0].2 .0;
    let large_gain = pairs[1].1 .0 / pairs[1].2 .0;
    assert!(large_gain >= small_gain * 0.9);
    res.summary.push(format!(
        "moving the fabric + config memory behind a bridge cuts the local master's mean read latency {:.1}x (4096-word contexts) — the 'more complex architectures' the paper's §4 demands are expressible and measurable",
        large_gain
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hierarchy_shields_local_traffic() {
        let flat = run_flat(2048);
        let hier = run_hierarchical(2048);
        assert!(hier.0 < flat.0, "hier {} vs flat {}", hier.0, flat.0);
    }

    #[test]
    fn e12_renders() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4);
    }
}
