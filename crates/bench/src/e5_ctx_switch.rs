//! E5 — §5.3: the context-switch cost model.
//!
//! "The context switch does not only create delay to the activities because
//! of the reconfiguration, but it also creates bus transformations, which
//! may harm the total performance of the system."
//!
//! Sweeps context size × bus width (cycles/word) × memory latency and
//! reports the measured per-switch cost and its composition, verifying that
//! the cost scales with the modeled memory traffic.

use drcf_bus::prelude::*;
use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_kernel::prelude::*;

use crate::common::{r2, ExperimentResult};
use crate::e4_transform::ScriptProbe;

/// One sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchPoint {
    /// Context image size, words.
    pub config_words: u64,
    /// Bus data cycles per word.
    pub cycles_per_word: u64,
    /// Memory first-word read latency, cycles.
    pub mem_latency: u64,
    /// Measured mean cost of one context switch, ns.
    pub switch_cost_ns: f64,
    /// Switches performed.
    pub switches: u64,
    /// Kernel events dispatched during the measurement run (throughput
    /// accounting for the hot-path benchmark harness).
    pub dispatched: u64,
}

/// Build a 2-context thrash system and measure the mean switch cost.
pub fn measure_switch_cost(
    config_words: u64,
    cycles_per_word: u64,
    mem_latency: u64,
) -> SwitchPoint {
    measure_switch_cost_stateful(config_words, 0, cycles_per_word, mem_latency)
}

/// Like [`measure_switch_cost`], with `state_words` of live state per
/// context (save on eviction + restore on reload — the stateful-context
/// extension).
pub fn measure_switch_cost_stateful(
    config_words: u64,
    state_words: u64,
    cycles_per_word: u64,
    mem_latency: u64,
) -> SwitchPoint {
    measure_switch_cost_opts(
        config_words,
        state_words,
        cycles_per_word,
        mem_latency,
        false,
    )
}

/// Full-knob variant: `coalesce` additionally enables the coalesced
/// configuration-traffic fast path (timing-neutral; only the kernel event
/// count changes).
pub fn measure_switch_cost_opts(
    config_words: u64,
    state_words: u64,
    cycles_per_word: u64,
    mem_latency: u64,
    coalesce: bool,
) -> SwitchPoint {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x7FFF, 2).unwrap();
    map.add(0x8000, 0x800F, 3).unwrap();
    map.add(0x8100, 0x810F, 3).unwrap();

    // Alternate between the two contexts 8 times; every access misses.
    let mut script = Vec::new();
    for i in 0..8u64 {
        let base = if i % 2 == 0 { 0x8000 } else { 0x8100 };
        script.push((BusOp::Write, base, i));
    }
    sim.add("probe", ScriptProbe::new(1, script));
    let mem_cfg = MemoryConfig {
        size_words: 0x8000,
        read_latency: mem_latency,
        ..MemoryConfig::default()
    };
    let mut bus = Bus::new(
        BusConfig {
            cycles_per_word,
            ..BusConfig::default()
        },
        map,
    );
    if coalesce {
        bus.register_slave_timing(2, mem_cfg.slave_timing());
    }
    sim.add("bus", bus);
    sim.add("mem", Memory::new(mem_cfg));
    let contexts = vec![
        Context::new(
            Box::new(RegisterFile::new("a", 0x8000, 16, 1)),
            ContextParams {
                config_addr: 0x100,
                config_size_words: config_words,
                state_words,
                state_addr: 0x100 + 2 * config_words,
                ..ContextParams::default()
            },
        ),
        Context::new(
            Box::new(RegisterFile::new("b", 0x8100, 16, 1)),
            ContextParams {
                config_addr: 0x100 + config_words,
                config_size_words: config_words,
                state_words,
                state_addr: 0x100 + 2 * config_words + state_words,
                ..ContextParams::default()
            },
        ),
    ];
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: coalesce,
            },
            contexts,
        ),
    );
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let f = sim.get::<Drcf>(3);
    let switches = f.stats.switches;
    assert_eq!(switches, 8, "every access must thrash");
    let cost = f.stats.reconfig.as_ns_f64() / switches as f64;
    SwitchPoint {
        config_words,
        cycles_per_word,
        mem_latency,
        switch_cost_ns: cost,
        switches,
        dispatched: sim.metrics().dispatched,
    }
}

/// Execute E5.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E5",
        "§5.3 — context-switch cost: configuration size x bus width x memory latency",
    );
    let sizes = [64u64, 256, 1024, 4096];
    let widths = [1u64, 2, 4]; // cycles per word: 64-bit, 32-bit, 16-bit bus
    let lat = [2u64, 8];
    let points: Vec<(u64, u64, u64)> = cartesian3(&sizes, &widths, &lat);
    let measured = sweep_with(&points, |&(s, w, l)| measure_switch_cost(s, w, l));

    let mut t = Table::new(
        "mean context-switch cost (8-switch thrash, config over system bus)",
        &[
            "config words",
            "cyc/word",
            "mem lat",
            "switch cost",
            "cost/word (ns)",
        ],
    );
    for p in &measured {
        t.row(vec![
            p.config_words.to_string(),
            p.cycles_per_word.to_string(),
            p.mem_latency.to_string(),
            fmt_ns(p.switch_cost_ns),
            r2(p.switch_cost_ns / p.config_words as f64),
        ]);
    }
    res.tables.push(t);

    // Shape checks: cost grows with size and with narrower buses.
    for w in &widths {
        for l in &lat {
            let series: Vec<&SwitchPoint> = measured
                .iter()
                .filter(|p| p.cycles_per_word == *w && p.mem_latency == *l)
                .collect();
            for pair in series.windows(2) {
                assert!(
                    pair[1].switch_cost_ns > pair[0].switch_cost_ns,
                    "cost must grow with config size"
                );
            }
            // Large contexts: cost ~ linear in size (within 25%).
            let big = series.last().unwrap();
            let mid = series[series.len() - 2];
            let growth = big.switch_cost_ns / mid.switch_cost_ns;
            assert!(
                (3.0..=5.3).contains(&growth),
                "expected ~4x for 4x size, got {growth}"
            );
        }
    }
    // Stateful-context extension: state save/restore traffic on top of the
    // configuration stream.
    let mut t2 = Table::new(
        "stateful contexts: switch cost vs live state (1024-word images)",
        &["state words", "switch cost", "overhead vs stateless"],
    );
    let stateless = measure_switch_cost_stateful(1024, 0, 1, 2);
    for state in [0u64, 64, 256, 1024] {
        let p = measure_switch_cost_stateful(1024, state, 1, 2);
        t2.row(vec![
            state.to_string(),
            fmt_ns(p.switch_cost_ns),
            format!(
                "{:+.1}%",
                (p.switch_cost_ns / stateless.switch_cost_ns - 1.0) * 100.0
            ),
        ]);
        assert!(p.switch_cost_ns >= stateless.switch_cost_ns);
    }
    res.tables.push(t2);

    let narrow = measured
        .iter()
        .find(|p| p.config_words == 4096 && p.cycles_per_word == 4 && p.mem_latency == 2)
        .unwrap();
    let wide = measured
        .iter()
        .find(|p| p.config_words == 4096 && p.cycles_per_word == 1 && p.mem_latency == 2)
        .unwrap();
    res.summary.push(format!(
        "switch cost is transfer-dominated: quadrupling per-word cycles scales the 4096-word switch {:.2}x",
        narrow.switch_cost_ns / wide.switch_cost_ns
    ));
    res.summary.push(
        "cost grows linearly with context size across the whole sweep (the §5.3 parameters 1-3 \
         fully determine it)"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_cost_monotone_in_size() {
        let small = measure_switch_cost(64, 1, 2);
        let large = measure_switch_cost(1024, 1, 2);
        assert!(large.switch_cost_ns > 10.0 * small.switch_cost_ns / 16.0);
        assert!(large.switch_cost_ns > small.switch_cost_ns);
    }

    #[test]
    fn narrow_bus_costs_more() {
        let wide = measure_switch_cost(1024, 1, 2);
        let narrow = measure_switch_cost(1024, 4, 2);
        assert!(narrow.switch_cost_ns > 2.0 * wide.switch_cost_ns);
    }

    #[test]
    fn e5_runs() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 24);
        assert_eq!(r.tables[1].rows.len(), 4);
    }

    #[test]
    fn coalescing_is_timing_neutral_and_cheaper() {
        for &(cfg, state, cyc, lat) in &[
            (64u64, 0u64, 1u64, 2u64),
            (1024, 256, 4, 8),
            (4096, 0, 2, 2),
        ] {
            let per_burst = measure_switch_cost_opts(cfg, state, cyc, lat, false);
            let coalesced = measure_switch_cost_opts(cfg, state, cyc, lat, true);
            assert_eq!(per_burst.switch_cost_ns, coalesced.switch_cost_ns);
            assert_eq!(per_burst.switches, coalesced.switches);
            assert!(
                coalesced.dispatched < per_burst.dispatched,
                "coalescing must shrink the event count: {} vs {}",
                coalesced.dispatched,
                per_burst.dispatched
            );
        }
    }

    #[test]
    fn state_words_increase_switch_cost_monotonically() {
        let costs: Vec<f64> = [0u64, 128, 512]
            .iter()
            .map(|&s| measure_switch_cost_stateful(512, s, 1, 2).switch_cost_ns)
            .collect();
        assert!(costs[0] < costs[1] && costs[1] < costs[2], "{costs:?}");
    }
}
