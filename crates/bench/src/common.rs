//! Shared experiment plumbing.

use drcf_dse::prelude::Table;

/// One experiment's rendered outcome.
#[derive(Debug, Clone, Default)]
pub struct ExperimentResult {
    /// Experiment id (E1..E11).
    pub id: String,
    /// What paper artifact it regenerates.
    pub title: String,
    /// Result tables.
    pub tables: Vec<Table>,
    /// Headline findings, one sentence each.
    pub summary: Vec<String>,
}

impl ExperimentResult {
    /// New, empty result.
    pub fn new(id: &str, title: &str) -> Self {
        ExperimentResult {
            id: id.to_string(),
            title: title.to_string(),
            ..Default::default()
        }
    }

    /// Render everything as plain text.
    pub fn render(&self) -> String {
        let mut out = format!("\n######## {} — {} ########\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        for s in &self.summary {
            out.push_str("  * ");
            out.push_str(s);
            out.push('\n');
        }
        out
    }

    /// Render tables as markdown (for EXPERIMENTS.md).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("### {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render_markdown());
            out.push('\n');
        }
        for s in &self.summary {
            out.push_str("- ");
            out.push_str(s);
            out.push('\n');
        }
        out
    }
}

/// Round to 1 decimal for stable table output.
pub fn r1(v: f64) -> String {
    format!("{v:.1}")
}

/// Round to 2 decimals.
pub fn r2(v: f64) -> String {
    format!("{v:.2}")
}

/// Ratio with guard.
pub fn ratio(a: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::INFINITY
    } else {
        a / b
    }
}
