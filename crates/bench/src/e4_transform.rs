//! E4 — Fig. 4 + the §5.2 listings: the automatic transformation.
//!
//! Runs the four-phase transformation on the paper's running example,
//! emits the before/after listings, and verifies the behavior-preservation
//! claim: the transformed system returns bit-identical bus-visible data,
//! with timing differing only by the modeled reconfiguration.

use drcf_bus::prelude::*;
use drcf_core::prelude::{morphosys, Drcf, FabricGeometry};
use drcf_dse::prelude::*;
use drcf_kernel::prelude::*;
use drcf_transform::prelude::*;

use crate::common::ExperimentResult;

/// A probe master running a fixed access script against the accelerators.
pub struct ScriptProbe {
    port: MasterPort,
    script: Vec<(BusOp, Addr, Word)>,
    pc: usize,
    /// Data of every read response, in order.
    pub reads: Vec<Vec<Word>>,
    /// Completion time.
    pub finished_at: Option<SimTime>,
}

impl ScriptProbe {
    /// New probe on `bus` running `script`.
    pub fn new(bus: ComponentId, script: Vec<(BusOp, Addr, Word)>) -> Self {
        ScriptProbe {
            port: MasterPort::new(bus, 1),
            script,
            pc: 0,
            reads: vec![],
            finished_at: None,
        }
    }

    fn next(&mut self, api: &mut Api<'_>) {
        if let Some(&(op, addr, v)) = self.script.get(self.pc) {
            self.pc += 1;
            match op {
                BusOp::Read => {
                    self.port.read(api, addr, 1);
                }
                BusOp::Write => {
                    self.port.write(api, addr, vec![v]);
                }
            }
        } else {
            self.finished_at = Some(api.now());
        }
    }
}

impl Component for ScriptProbe {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => self.next(api),
            _ => {
                if let Ok(r) = self.port.take_response(api, msg) {
                    assert!(r.is_ok(), "probe access failed: {r:?}");
                    if r.op == BusOp::Read {
                        self.reads.push(r.data);
                    }
                    self.next(api);
                }
            }
        }
    }
}

/// The access script used for the equivalence check: exercises both
/// accelerators in an interleaved pattern.
pub fn equivalence_script() -> Vec<(BusOp, Addr, Word)> {
    let mut s = Vec::new();
    for round in 0..4u64 {
        for base in [0x2000u64, 0x2100] {
            s.push((BusOp::Write, base + round, 10 * round + base / 0x100));
            s.push((BusOp::Read, base + round, 0));
        }
    }
    s
}

/// Run a design against the script; returns (reads, finish time, switches).
pub fn run_design(
    design: &Design,
    script: Vec<(BusOp, Addr, Word)>,
) -> (Vec<Vec<Word>>, SimTime, u64) {
    let e = elaborate(
        design,
        ElaborationOptions::default(),
        vec![(
            "probe".into(),
            Box::new(move |bus| Box::new(ScriptProbe::new(bus, script))),
        )],
    )
    .expect("elaboration");
    let mut sim = e.sim;
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    let probe = sim.get::<ScriptProbe>(e.masters[0]);
    let reads = probe.reads.clone();
    let finished = probe.finished_at.expect("probe finished");
    let switches = e
        .instances
        .get("drcf1")
        .map(|&id| sim.get::<Drcf>(id).stats.switches)
        .unwrap_or(0);
    (reads, finished, switches)
}

/// Execute E4.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E4",
        "Fig. 4 / §5.2 — automatic DRCF transformation and its behavior preservation",
    );

    let original = example_design(2);
    let result = transform_design(
        &original,
        &["hwa0", "hwa1"],
        &TemplateOptions::new(morphosys(), FabricGeometry::new(40_000, 1)),
        ConfigTransport::SharedInterfaceBus {
            split_transactions: true,
        },
    )
    .expect("transformation");

    // Structural table: what the rewrite did.
    let mut t = Table::new(
        "transformation summary",
        &["design", "instances", "modules", "DRCF contexts"],
    );
    t.row(vec![
        "original".into(),
        original.top.instances.len().to_string(),
        original.modules.len().to_string(),
        "-".into(),
    ]);
    let ModuleKind::Drcf(spec) = &result
        .design
        .module(&result.drcf_module)
        .expect("generated module")
        .kind
    else {
        unreachable!()
    };
    t.row(vec![
        "transformed".into(),
        result.design.top.instances.len().to_string(),
        result.design.modules.len().to_string(),
        spec.context_modules.len().to_string(),
    ]);
    res.tables.push(t);

    // Equivalence.
    let script = equivalence_script();
    let (reads_a, t_a, sw_a) = run_design(&original, script.clone());
    let (reads_b, t_b, sw_b) = run_design(&result.design, script);
    assert_eq!(reads_a, reads_b, "bus-visible data must be identical");
    assert_eq!(sw_a, 0);
    assert!(sw_b > 0, "the DRCF must actually reconfigure");
    assert!(t_b > t_a, "reconfiguration must cost time");

    let mut t = Table::new(
        "equivalence run (16 interleaved accesses)",
        &[
            "design",
            "reads",
            "identical data",
            "finish",
            "context switches",
        ],
    );
    t.row(vec![
        "original (2 accelerators)".into(),
        reads_a.len().to_string(),
        "-".into(),
        format!("{t_a}"),
        sw_a.to_string(),
    ]);
    t.row(vec![
        "transformed (1 DRCF)".into(),
        reads_b.len().to_string(),
        "yes".into(),
        format!("{t_b}"),
        sw_b.to_string(),
    ]);
    res.tables.push(t);

    res.summary.push(format!(
        "the generated DRCF returns bit-identical data; makespan grows {:.2}x from {sw_b} modeled context switches",
        t_b.as_fs() as f64 / t_a.as_fs() as f64
    ));
    res.summary.push(
        "emitted listings (codegen) reproduce the paper's before/after `top' and `drcf_own' structure"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_equivalence_holds() {
        let r = run();
        assert_eq!(r.tables.len(), 2);
        assert_eq!(r.summary.len(), 2);
    }

    #[test]
    fn equivalence_holds_for_three_way_fold() {
        let original = example_design(3);
        let result = transform_design(
            &original,
            &["hwa0", "hwa1", "hwa2"],
            &TemplateOptions::new(morphosys(), FabricGeometry::new(40_000, 1)),
            ConfigTransport::SharedInterfaceBus {
                split_transactions: true,
            },
        )
        .unwrap();
        let mut script = equivalence_script();
        script.push((BusOp::Write, 0x2205, 77));
        script.push((BusOp::Read, 0x2205, 0));
        let (a, _, _) = run_design(&original, script.clone());
        let (b, _, sw) = run_design(&result.design, script);
        assert_eq!(a, b);
        assert!(sw >= 3);
    }
}
