//! E8 — Chapter 3: reconfigurable-technology comparison.
//!
//! "The different categories of dynamically reconfigurable technologies
//! have very different characteristics and therefore, a unified model of
//! them at the system-level is impossibility. One way of achieving accurate
//! simulation results ... is to parameterise the configuration memory
//! transfers at context switch and the delays associated with the
//! reconfiguration process."
//!
//! The same wireless workload runs with the fabric parameterized by each
//! Chapter-3 preset; granularity drives configuration volume, which drives
//! reconfiguration overhead and energy.

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r1, r2, ExperimentResult};

/// Run the workload on one technology preset.
pub fn run_tech(tech: &Technology) -> RunRecord {
    let w = wireless_receiver(4, 64);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let slots = tech.on_chip_contexts.min(names.len());
    let spec = SocSpec {
        memory: drcf_bus::prelude::MemoryConfig {
            base: 0,
            size_words: 0x40000, // room for fine-grain images
            ..drcf_bus::prelude::MemoryConfig::default()
        },
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.1, slots.max(1)),
            candidates: names,
            technology: tech.clone(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig {
                slots: slots.max(1),
                ..SchedulerConfig::default()
            },
            overlap_load_exec: tech.on_chip_contexts > 1,
        },
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok, "{}: {m:?}", tech.name);
    RunRecord::from_metrics("technology", vec![("tech".into(), tech.name.into())], &m)
}

/// Execute E8.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E8",
        "Chapter 3 — technology presets: Virtex-II Pro vs VariCore vs MorphoSys",
    );
    let techs = all_presets();
    let records: Vec<RunRecord> = techs.iter().map(run_tech).collect();

    let mut t = Table::new(
        "wireless receiver, 4 frames x 64 samples, config over system bus",
        &[
            "technology",
            "granularity",
            "makespan",
            "switches",
            "config kwords",
            "reconfig ovh",
            "energy (mJ)",
        ],
    );
    for (tech, r) in techs.iter().zip(&records) {
        t.row(vec![
            tech.name.to_string(),
            format!("{:?}", tech.granularity),
            fmt_ns(r.makespan_ns),
            r.switches.to_string(),
            r1(r.config_words as f64 / 1000.0),
            fmt_pct(r.reconfig_overhead),
            r2(r.energy_mj),
        ]);
    }
    res.tables.push(t);

    // Shape: fine grain pays far more configuration traffic than coarse.
    let fine = &records[0]; // Virtex-II Pro
    let coarse = &records[2]; // MorphoSys
    assert!(
        fine.config_words > 20 * coarse.config_words,
        "fine-grain config volume must dwarf coarse-grain ({} vs {})",
        fine.config_words,
        coarse.config_words
    );
    assert!(fine.reconfig_overhead > coarse.reconfig_overhead);
    assert!(fine.makespan_ns > coarse.makespan_ns);
    res.summary.push(format!(
        "fine-grain (Virtex-II Pro) streams {:.0}x the configuration data of coarse-grain (MorphoSys) for the same contexts, and loses {} of runtime to reconfiguration vs {}",
        fine.config_words as f64 / coarse.config_words as f64,
        fmt_pct(fine.reconfig_overhead),
        fmt_pct(coarse.reconfig_overhead)
    ));
    res.summary.push(
        "the same application model reproduces all three technology classes purely through the \
         §5.3 parameters — the paper's parameterization claim"
            .to_string(),
    );
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn technology_ordering_holds() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 3);
    }

    #[test]
    fn morphosys_multi_context_store_raises_hit_rate() {
        let coarse = run_tech(&morphosys());
        let fine = run_tech(&virtex2_pro());
        // 32 on-chip contexts hold all three kernels after first loads.
        assert!(coarse.hit_rate > fine.hit_rate);
        assert!(coarse.switches <= fine.switches);
    }
}
