//! E10 — MorphoSys-style context scheduling policies.
//!
//! The paper's related work (\[4\] MorphoSys, \[5\] Maestre et al.) centers on
//! hiding context-reload time: "While the RC array is executing one of the
//! 16 contexts, the other 16 contexts can be reloaded into the context
//! memory." The scheduler extension reproduces that trade space:
//!
//! * **reactive / 1 slot** — the paper's base scheduler;
//! * **multi-slot LRU** — a context store holding several contexts;
//! * **multi-slot + sequence prefetch (+ background load)** — the
//!   Maestre-style static schedule, overlapping reload with execution.

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::{r2, ExperimentResult};

/// One scheduling policy under test.
#[derive(Debug, Clone)]
pub struct Policy {
    /// Display name.
    pub name: &'static str,
    /// Scheduler slots.
    pub slots: usize,
    /// Prefetch by static sequence?
    pub prefetch: bool,
    /// Background (overlapped) loading?
    pub overlap: bool,
}

/// The policy ladder.
pub fn policies() -> Vec<Policy> {
    vec![
        Policy {
            name: "reactive, 1 slot (paper §5.3)",
            slots: 1,
            prefetch: false,
            overlap: false,
        },
        Policy {
            name: "reactive, 2 slots LRU",
            slots: 2,
            prefetch: false,
            overlap: false,
        },
        Policy {
            name: "prefetch(seq), 2 slots",
            slots: 2,
            prefetch: true,
            overlap: false,
        },
        Policy {
            name: "prefetch(seq)+background, 2 slots",
            slots: 2,
            prefetch: true,
            overlap: true,
        },
    ]
}

/// Run the churn workload under one policy.
pub fn run_policy(p: &Policy) -> RunRecord {
    // Alternating standards, one fabric, two kernels per standard.
    let w = multi_standard(10, 64, 1);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    // Static context sequence: the workload alternates A(fir,fft) and
    // B(dct,aes) — the compile-time schedule a Maestre-style framework
    // would derive. Context ids follow workload accel order.
    let prefetch = if p.prefetch {
        PrefetchPolicy::Sequence(vec![0, 1, 2, 3])
    } else {
        PrefetchPolicy::None
    };
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.1, p.slots),
            candidates: names,
            technology: varicore(),
            config_path: SocConfigPath::DirectPort,
            scheduler: SchedulerConfig {
                slots: p.slots,
                prefetch,
                eviction: EvictionPolicy::Lru,
            },
            overlap_load_exec: p.overlap,
        },
        memory: drcf_bus::prelude::MemoryConfig {
            base: 0,
            size_words: 0x20000,
            dual_port: true,
            ..drcf_bus::prelude::MemoryConfig::default()
        },
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok, "{}: {m:?}", p.name);
    RunRecord::from_metrics("sched", vec![("policy".into(), p.name.into())], &m)
}

/// Execute E10.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E10",
        "MorphoSys/Maestre scheduling policies — hiding context-reload time",
    );
    let pols = policies();
    let records: Vec<RunRecord> = pols.iter().map(run_policy).collect();
    let mut t = Table::new(
        "multi-standard terminal, 10 frames, switch every frame, VariCore fabric",
        &[
            "policy",
            "makespan",
            "switches",
            "hit rate",
            "blocking reconfig ovh",
        ],
    );
    for r in &records {
        t.row(vec![
            r.param("policy").unwrap().to_string(),
            fmt_ns(r.makespan_ns),
            r.switches.to_string(),
            fmt_pct(r.hit_rate),
            fmt_pct(r.reconfig_overhead),
        ]);
    }
    res.tables.push(t);

    let reactive1 = &records[0];
    let lru2 = &records[1];
    let overlap = &records[3];
    assert!(
        lru2.makespan_ns <= reactive1.makespan_ns,
        "a second slot can only help this alternating workload"
    );
    assert!(
        overlap.makespan_ns < reactive1.makespan_ns,
        "background prefetch must beat the reactive baseline"
    );
    assert!(overlap.reconfig_overhead < reactive1.reconfig_overhead);
    res.summary.push(format!(
        "prefetch with background loading cuts makespan {}x vs the paper's reactive single-slot scheduler and reduces blocking reconfiguration from {} to {}",
        r2(reactive1.makespan_ns / overlap.makespan_ns),
        fmt_pct(reactive1.reconfig_overhead),
        fmt_pct(overlap.reconfig_overhead)
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_policies_improve_monotonically_enough() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4);
    }

    #[test]
    fn second_slot_raises_hit_rate() {
        let r1 = run_policy(&policies()[0]);
        let r2 = run_policy(&policies()[1]);
        assert!(r2.hit_rate >= r1.hit_rate);
    }
}
