//! E6 — §5.3, closing remark: memory organizations.
//!
//! "In addition, this methodology may be used to measure the effects of
//! different memory organizations or implementation to the total system
//! performance."
//!
//! The multi-standard workload (heavy context churn) runs with four
//! configuration-memory organizations:
//!
//! 1. images in system memory, loaded over the shared system bus;
//! 2. a dedicated configuration port into a single-ported memory
//!    (no bus contention, still memory-port contention);
//! 3. a dedicated port into a dual-ported memory (fully independent);
//! 4. a fixed-rate loader that models *no* traffic at all — the baseline
//!    the paper criticizes related work \[8\] for ("the memory traffic
//!    associated to context switching is not modeled").

use drcf_core::prelude::*;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

use crate::common::ExperimentResult;

/// Run the churn workload under one organization.
pub fn run_org(name: &str, config_path: SocConfigPath, dual_port: bool) -> RunRecord {
    let w = multi_standard(8, 64, 1);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        memory: drcf_bus::prelude::MemoryConfig {
            base: 0,
            size_words: 0x20000, // fine-grain images are ~86K words total
            dual_port,
            ..drcf_bus::prelude::MemoryConfig::default()
        },
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.1, 1),
            candidates: names,
            technology: virtex2_pro(), // fine grain: big images, traffic matters
            config_path,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok, "{name}: {m:?}");
    RunRecord::from_metrics("mem_org", vec![("organization".into(), name.into())], &m)
}

/// The four organizations under test, in presentation order.
pub fn org_cases() -> Vec<(&'static str, SocConfigPath, bool)> {
    vec![
        ("shared system bus", SocConfigPath::SystemBus, false),
        (
            "dedicated port, single-port mem",
            SocConfigPath::DirectPort,
            false,
        ),
        (
            "dedicated port, dual-port mem",
            SocConfigPath::DirectPort,
            true,
        ),
        (
            "fixed-rate (traffic not modeled)",
            SocConfigPath::FixedRate { words_per_cycle: 1 },
            false,
        ),
    ]
}

/// All four organizations, in presentation order.
pub fn run_all() -> Vec<RunRecord> {
    org_cases()
        .into_iter()
        .map(|(name, path, dual)| run_org(name, path, dual))
        .collect()
}

/// Execute E6.
pub fn run() -> ExperimentResult {
    let mut res = ExperimentResult::new(
        "E6",
        "§5.3 — effect of configuration-memory organization on total system performance",
    );
    let records = run_all();
    let mut t = Table::new(
        "multi-standard terminal, 8 frames, switch every frame, Virtex-II Pro images",
        &[
            "organization",
            "makespan",
            "bus util",
            "bus words",
            "reconfig ovh",
        ],
    );
    for r in &records {
        t.row(vec![
            r.param("organization").unwrap().to_string(),
            fmt_ns(r.makespan_ns),
            fmt_pct(r.bus_utilization),
            r.bus_words.to_string(),
            fmt_pct(r.reconfig_overhead),
        ]);
    }
    res.tables.push(t);

    let shared = &records[0];
    let dedicated = &records[1];
    let dual = &records[2];
    let none = &records[3];
    // Shape: moving config off the bus helps; dual-porting helps again (or
    // at least never hurts); every organization with traffic modeled is
    // slower than pretending there is none.
    assert!(dedicated.makespan_ns <= shared.makespan_ns);
    assert!(dual.makespan_ns <= dedicated.makespan_ns);
    assert!(
        shared.bus_words > dual.bus_words,
        "config words left the bus"
    );
    res.summary.push(format!(
        "a dedicated config port cuts makespan {:.2}x vs loading over the shared bus; dual-porting the config memory gives {:.2}x total",
        shared.makespan_ns / dedicated.makespan_ns,
        shared.makespan_ns / dual.makespan_ns
    ));
    res.summary.push(format!(
        "ignoring configuration traffic entirely (the OCAPI-XL-style baseline) underestimates makespan by {:.1}% vs the shared-bus organization — the modeling gap the paper's methodology closes",
        (shared.makespan_ns / none.makespan_ns - 1.0) * 100.0
    ));
    res
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn organizations_order_as_expected() {
        let r = run();
        assert_eq!(r.tables[0].rows.len(), 4);
        assert_eq!(r.summary.len(), 2);
    }
}
