//! Criterion bench for E10: context-scheduling policy ladder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drcf_bench::e10_scheduling::{policies, run_policy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sched_policies");
    g.sample_size(10);
    for p in policies() {
        g.bench_with_input(BenchmarkId::from_parameter(p.name), &p, |b, p| {
            b.iter(|| run_policy(p).makespan_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
