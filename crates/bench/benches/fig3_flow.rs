//! Criterion bench for E3 (paper Fig. 3): a full flow iteration.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e3_flow::run_flow;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_flow");
    g.sample_size(10);
    g.bench_function("full_iteration", |b| {
        b.iter(|| {
            let a = run_flow();
            assert!(a.mapped.ok);
            a.measured_switch_cost_ns
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
