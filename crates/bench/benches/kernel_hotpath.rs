//! Micro-benchmarks of the kernel dispatch hot path: the three workloads
//! of `drcf_bench::hotpath`, timed per-iteration so regressions show up in
//! the per-workload numbers, plus a fast-vs-legacy clock-path comparison.
//!
//! The canonical throughput document (`BENCH_kernel.json`) comes from
//! `cargo run --release -p drcf-bench --bin experiments -- --bench-json`;
//! this bench is the quick inner-loop check while touching the kernel.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drcf_bench::hotpath;
use drcf_kernel::prelude::*;

fn clock_grid(sim: &mut Simulator, legacy: bool) {
    sim.set_legacy_clock_path(legacy);
    for c in 0..8u64 {
        let clk = sim.add_clock_mhz(&format!("clk{c}"), 50 + 37 * c);
        for s in 0..4 {
            sim.add(
                &format!("sub{c}_{s}"),
                FnComponent::new(move |api, msg| {
                    if matches!(msg.kind, MsgKind::Start) {
                        api.subscribe_clock(clk, Edge::Pos);
                        if s == 0 {
                            api.subscribe_clock(clk, Edge::Neg);
                        }
                    }
                }),
            );
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_hotpath");
    g.sample_size(10);

    g.bench_function("dense_clock_300us", |b| {
        b.iter(|| hotpath::dense_clock(300).events)
    });
    g.bench_function("fifo_heavy_4x2000", |b| {
        b.iter(|| hotpath::fifo_heavy(4, 2000).events)
    });

    // Same clocked model on both dispatch paths; the gap is the win of the
    // per-clock next-edge slots over the general heap.
    for legacy in [false, true] {
        let name = if legacy {
            "clock_grid_200us_legacy_heap"
        } else {
            "clock_grid_200us_fast_path"
        };
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut sim = Simulator::new();
                clock_grid(&mut sim, legacy);
                let _ = sim.run_until(SimTime::ZERO + SimDuration::us(200));
                sim.metrics().dispatched
            })
        });
    }

    g.throughput(Throughput::Elements(1));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
