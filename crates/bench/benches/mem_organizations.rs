//! Criterion bench for E6 (§5.3): memory-organization comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e6_mem_org::{org_cases, run_org};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("mem_organizations");
    g.sample_size(10);
    for (name, path, dual) in org_cases() {
        let path2 = path.clone();
        g.bench_function(name, move |b| {
            b.iter(|| run_org(name, path2.clone(), dual).makespan_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
