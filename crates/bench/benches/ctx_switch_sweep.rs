//! Criterion bench for E5 (§5.3): one context-switch cost measurement at
//! representative small/large points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drcf_bench::e5_ctx_switch::measure_switch_cost;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ctx_switch_sweep");
    g.sample_size(10);
    for words in [64u64, 1024, 4096] {
        g.bench_with_input(BenchmarkId::from_parameter(words), &words, |b, &w| {
            b.iter(|| measure_switch_cost(w, 1, 2).switch_cost_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
