//! Criterion bench for E2 (paper Fig. 2): measure the whole
//! implementation-style ladder.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e2_efficiency::measure_ladder;
use drcf_soc::prelude::wireless_receiver;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_efficiency");
    g.sample_size(10);
    let w = wireless_receiver(2, 64);
    g.bench_function("style_ladder", |b| {
        b.iter(|| {
            let pts = measure_ladder(&w);
            assert_eq!(pts.len(), 5);
            pts.last().unwrap().mops_per_mw
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
