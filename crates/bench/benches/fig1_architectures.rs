//! Criterion bench for E1 (paper Fig. 1): simulate the same workload on
//! the fixed-accelerator SoC vs the DRCF SoC.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e1_architectures::run_pair;
use drcf_soc::prelude::wireless_receiver;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_architectures");
    g.sample_size(10);
    let w = wireless_receiver(4, 64);
    g.bench_function("fixed_vs_drcf", |b| {
        b.iter(|| {
            let (fixed, folded) = run_pair(&w);
            assert!(fixed.ok && folded.ok);
            (fixed.makespan, folded.makespan)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
