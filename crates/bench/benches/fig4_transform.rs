//! Criterion bench for E4 (paper Fig. 4): the four-phase transformation
//! plus one equivalence simulation per side.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e4_transform::{equivalence_script, run_design};
use drcf_core::prelude::{morphosys, FabricGeometry};
use drcf_transform::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4_transform");
    g.sample_size(10);
    let design = example_design(3);
    let opts = TemplateOptions::new(morphosys(), FabricGeometry::new(64_000, 1));
    g.bench_function("transform_only", |b| {
        b.iter(|| {
            transform_design(
                &design,
                &["hwa0", "hwa1", "hwa2"],
                &opts,
                ConfigTransport::SharedInterfaceBus {
                    split_transactions: true,
                },
            )
            .unwrap()
        })
    });
    let transformed = transform_design(
        &design,
        &["hwa0", "hwa1", "hwa2"],
        &opts,
        ConfigTransport::SharedInterfaceBus {
            split_transactions: true,
        },
    )
    .unwrap();
    g.bench_function("equivalence_run", |b| {
        b.iter(|| {
            let (a, _, _) = run_design(&design, equivalence_script());
            let (x, _, _) = run_design(&transformed.design, equivalence_script());
            assert_eq!(a, x);
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
