//! Criterion bench for E8 (Chapter 3): the same workload on each
//! technology preset.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drcf_bench::e8_technologies::run_tech;
use drcf_core::prelude::all_presets;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("technology_presets");
    g.sample_size(10);
    for tech in all_presets() {
        g.bench_with_input(BenchmarkId::from_parameter(tech.name), &tech, |b, t| {
            b.iter(|| run_tech(t).makespan_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
