//! Criterion bench for E13 (extension): the three data-movement modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drcf_bench::e13_data_movement::run_point;
use drcf_soc::prelude::SocCopyMode;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("data_movement");
    g.sample_size(10);
    for (name, mode) in [
        ("cpu_direct", SocCopyMode::CpuDirect),
        ("cpu_relay", SocCopyMode::CpuViaMemory),
        ("dma", SocCopyMode::Dma),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &mode, |b, &m| {
            b.iter(|| run_point(128, m, false).makespan_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
