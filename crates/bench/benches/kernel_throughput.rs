//! Simulator-throughput microbench: raw event rate of the kernel and the
//! full bus stack (the substrate's own performance, not a paper figure).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use drcf_kernel::prelude::*;

struct TimerChain {
    remaining: u64,
}
impl Component for TimerChain {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match msg.kind {
            MsgKind::Start => api.timer_in(SimDuration::ns(1), 0),
            MsgKind::Timer(_) if self.remaining > 0 => {
                self.remaining -= 1;
                api.timer_in(SimDuration::ns(1), 0);
            }
            _ => {}
        }
    }
}

fn bench(c: &mut Criterion) {
    const EVENTS: u64 = 100_000;
    let mut g = c.benchmark_group("kernel_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(EVENTS));
    g.bench_function("timer_chain_100k", |b| {
        b.iter(|| {
            let mut sim = Simulator::new();
            sim.add("chain", TimerChain { remaining: EVENTS });
            assert_eq!(sim.run(), Ok(StopReason::Quiescent));
            sim.metrics().dispatched
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
