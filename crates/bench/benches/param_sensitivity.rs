//! Criterion bench for E11 (§5.5/§6): parameter-sensitivity sweep points.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use drcf_bench::e11_sensitivity::run_scaled;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("param_sensitivity");
    g.sample_size(10);
    for scale in [50u64, 100, 150] {
        g.bench_with_input(BenchmarkId::from_parameter(scale), &scale, |b, &s| {
            b.iter(|| run_scaled(s, 100).makespan_ns)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
