//! Criterion bench for E7 (§5.4-3): the deadlock grid — all four
//! bus-mode x config-path cases.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e7_deadlock::{run_case, PathFlavor};
use drcf_bus::prelude::BusMode;
use drcf_kernel::prelude::StopReason;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("split_vs_blocking");
    g.sample_size(10);
    g.bench_function("deadlock_grid", |b| {
        b.iter(|| {
            let (dead, _) = run_case(BusMode::Blocking, PathFlavor::SharedBus);
            assert!(dead.is_err_and(|e| e.is_deadlock()));
            let (ok, _) = run_case(BusMode::Split, PathFlavor::SharedBus);
            assert_eq!(ok, Ok(StopReason::Quiescent));
            let (ok2, _) = run_case(BusMode::Blocking, PathFlavor::Dedicated);
            assert_eq!(ok2, Ok(StopReason::Quiescent));
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
