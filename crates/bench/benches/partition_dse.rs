//! Criterion bench for E9 (§5.1): exhaustive partitioning exploration
//! (parallel subset sweep + Pareto extraction).

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_core::prelude::morphosys;
use drcf_dse::prelude::*;
use drcf_soc::prelude::*;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition_dse");
    g.sample_size(10);
    let w = wireless_receiver(2, 32);
    g.bench_function("all_subsets_with_pareto", |b| {
        b.iter(|| {
            let outcomes = explore_partitions(&w, &SocSpec::default(), &morphosys(), 2);
            let records: Vec<RunRecord> = outcomes.iter().map(|o| o.record.clone()).collect();
            pareto_front(&records, &[objectives::makespan, objectives::area]).len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
