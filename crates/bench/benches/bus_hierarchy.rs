//! Criterion bench for E12 (extension): flat vs hierarchical topology
//! under fabric churn.

use criterion::{criterion_group, criterion_main, Criterion};
use drcf_bench::e12_hierarchy::{run_flat, run_hierarchical};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bus_hierarchy");
    g.sample_size(10);
    g.bench_function("flat", |b| b.iter(|| run_flat(2048)));
    g.bench_function("hierarchical", |b| b.iter(|| run_hierarchical(2048)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
