//! # drcf — System-Level Modeling of Dynamically Reconfigurable Hardware
//!
//! A Rust reproduction of the ADRIATIC methodology (Pelkonen, Masselos,
//! Čupák — RAW/IPDPS 2003): a deterministic event-driven simulation kernel
//! with SystemC 2.0 semantics, a bus-cycle-level SoC substrate, the DRCF
//! (Dynamically Reconfigurable Fabric) component with its §5.3 context
//! scheduler, the Fig. 4 automatic transformation, and a design-space
//! exploration layer.
//!
//! This facade crate re-exports every workspace crate under one roof and
//! hosts the runnable examples and cross-crate integration tests.
//!
//! ```
//! use drcf::kernel::prelude::*;
//! let mut sim = Simulator::new();
//! sim.add("noop", NullComponent);
//! assert_eq!(sim.run(), Ok(StopReason::Quiescent));
//! ```

#![warn(missing_docs)]

pub use drcf_bus as bus;
pub use drcf_core as core;
pub use drcf_dse as dse;
pub use drcf_kernel as kernel;
pub use drcf_serve as serve;
pub use drcf_soc as soc;
pub use drcf_transform as transform;

/// One prelude over the whole stack.
pub mod prelude {
    pub use drcf_bus::prelude::*;
    pub use drcf_core::prelude::*;
    pub use drcf_dse::prelude::*;
    pub use drcf_kernel::prelude::*;
    pub use drcf_serve::prelude::*;
    pub use drcf_soc::prelude::*;
    pub use drcf_transform::prelude::{
        elaborate, emit_design, emit_hier_module, example_design, select_candidates,
        transform_design, ConfigTransport, ElaborationOptions, SelectionRules, TemplateOptions,
    };
}
