#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_kernel.json.

Usage: perf_gate.py [path-to-BENCH_kernel.json]

Reads the bench JSON written by `experiments --bench-json`, embeds the
commit SHA (from $GITHUB_SHA, or `git rev-parse HEAD` as a fallback) into
the file as a `"commit"` field so the uploaded artifact is traceable to
the exact revision, and exits non-zero if any `speedup_vs_baseline`
entry has dropped below 1.0 — i.e. if the current tree is slower than
the baked per-scenario baseline on any workload — or if the live
`warm_fork_speedup` (cold DSE sweep vs. snapshot-forked sweep, measured
in the same process) falls below 1.5x.

The baselines live in `crates/bench/src/hotpath.rs`
(`BASELINE_EVENTS_PER_SEC`); see EXPERIMENTS.md for how they were
measured and how to re-bake them.
"""

import json
import os
import subprocess
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    with open(path, encoding="utf-8") as f:
        bench = json.load(f)

    sha = os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.check_output(
                ["git", "rev-parse", "HEAD"], text=True
            ).strip()
        except (OSError, subprocess.CalledProcessError):
            sha = "unknown"
    bench["commit"] = sha
    with open(path, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=2)
        f.write("\n")

    speedups = bench.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"perf gate: no speedup_vs_baseline in {path}", file=sys.stderr)
        return 1

    failed = []
    for name in sorted(speedups):
        ratio = speedups[name]
        verdict = "ok" if ratio >= 1.0 else "REGRESSION"
        print(f"perf gate: {name:24s} {ratio:6.2f}x vs baseline  [{verdict}]")
        if ratio < 1.0:
            failed.append(name)

    ratio = bench.get("ctx_switch_storm_on_vs_off")
    if ratio is not None:
        print(f"perf gate: storm coalescing on-vs-off {ratio:.2f}x")

    warm = bench.get("warm_fork_speedup")
    if warm is not None:
        verdict = "ok" if warm >= 1.5 else "REGRESSION"
        print(f"perf gate: warm-fork DSE speedup {warm:.2f}x (floor 1.5x)  [{verdict}]")
        if warm < 1.5:
            failed.append("warm_fork_speedup")

    if failed:
        print(
            f"perf gate: FAILED — slower than baseline on: {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate: all {len(speedups)} scenarios at or above baseline ({sha[:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
