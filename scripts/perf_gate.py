#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_kernel.json.

Usage: perf_gate.py [path-to-BENCH_kernel.json]

Reads the bench JSON written by `experiments --bench-json`, embeds the
commit SHA (from $GITHUB_SHA, or `git rev-parse HEAD` as a fallback) into
the file as a `"commit"` field so the uploaded artifact is traceable to
the exact revision, appends a one-line summary of the run to
`BENCH_history.jsonl` (commit, timestamp, per-bench throughput, the
live speedups, the sharded runs' critical-link and parallel-efficiency
reports, and a `host` record with the hardware thread count and any
`DRCF_SHARDS` override; the file is deduplicated by commit SHA, keeping
the latest entry per commit, so re-runs of the same revision don't
inflate the trajectory), and exits non-zero if:

- any `speedup_vs_baseline` entry has dropped below 1.0 — i.e. the
  current tree is slower than the baked per-scenario baseline;
- the live `warm_fork_speedup` (cold DSE sweep vs. copy-on-write
  warm-forked sweep, fork at 9/10 of the makespan) falls below 3.0x;
- `warm_fork_speedup` does not exceed `warm_fork_speedup_half` (the same
  sweep forked at 1/2 of the makespan): a longer shared prefix must help
  more, or the incremental fork path has stopped scaling with prefix
  length;
- `warm_fork_delta_identical` is false — a delta capture applied onto a
  full-snapshot restore landed on a different `state_hash` than a cold
  run (correctness gate, applies on any hardware);
- `sharded_soc_identical` or `sharded_e12_identical` is false — a sharded
  run diverged from its single-threaded oracle (correctness gates; they
  apply on any hardware);
- `sharded_soc_speedup` falls below 2.0x, or `sharded_e12_speedup` (the
  automatically partitioned E12 hierarchical topology) below 1.5x, *when
  the machine has at least 4 hardware threads* (`hw_threads`). On narrower
  machines a sharded bench cannot exhibit parallel speedup, so the number
  is reported informationally and only the bit-identity is enforced;
- `serve_cache_hit_speedup` (the identical sweep request re-served from
  the content-addressed snapshot store vs. served cold) falls below 2.0x,
  `serve_cache_hits` < `serve_points` (a repeat request failed to answer
  entirely from the store), or `serve_identical` is false — the warm
  answer must be bit-identical to the cold one (correctness gate).

The baselines live in `crates/bench/src/hotpath.rs`
(`BASELINE_EVENTS_PER_SEC`); see EXPERIMENTS.md for how they were
measured and how to re-bake them.
"""

import json
import os
import subprocess
import sys
import time

HISTORY = "BENCH_history.jsonl"
WARM_FORK_SPEEDUP_FLOOR = 3.0
SHARDED_SPEEDUP_FLOOR = 2.0
SHARDED_E12_SPEEDUP_FLOOR = 1.5
SHARDED_MIN_HW_THREADS = 4
SERVE_CACHE_SPEEDUP_FLOOR = 2.0


def history_entry(bench: dict, sha: str) -> dict:
    """The one-line summary of this run for the history file."""
    entry = {
        "commit": sha,
        "timestamp": int(time.time()),
        "schema": bench.get("schema"),
        "events_per_sec": {
            m["name"]: m.get("events_per_sec")
            for m in bench.get("current", [])
            if isinstance(m, dict) and "name" in m
        },
        "speedup_vs_baseline": bench.get("speedup_vs_baseline", {}),
    }
    for key in (
        "ctx_switch_storm_on_vs_off",
        "warm_fork_speedup",
        "warm_fork_speedup_half",
        "warm_fork_delta_identical",
        "warm_fork_snapshot_full_bytes",
        "warm_fork_snapshot_delta_bytes",
        "warm_fork_snapshot_dirty_components",
        "sharded_soc_speedup",
        "sharded_soc_shards",
        "sharded_soc_identical",
        "sharded_soc_efficiency",
        "sharded_e12_speedup",
        "sharded_e12_shards",
        "sharded_e12_identical",
        "sharded_e12_efficiency",
        "sharded_e12_critical_link",
        "serve_cache_hit_speedup",
        "serve_cache_hits",
        "serve_points",
        "serve_identical",
        "hw_threads",
    ):
        if key in bench:
            entry[key] = bench[key]
    # Host context: the parallel-efficiency numbers are only comparable
    # between runs on similar machines, so record what this one was.
    entry["host"] = {
        "hw_threads": bench.get("hw_threads", os.cpu_count()),
        "drcf_shards": os.environ.get("DRCF_SHARDS"),
    }
    return entry


def append_history(bench: dict, sha: str, history_path: str) -> None:
    """Append this run to the history file, deduplicating by commit SHA.

    The file stays one line per commit: an existing entry for the same SHA
    is replaced by the new one (latest wins, moved to the end), entries for
    other commits keep their relative order, and unparseable lines are
    dropped rather than replayed forever.
    """
    kept = []
    try:
        with open(history_path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    old = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(old, dict) and old.get("commit") != sha:
                    kept.append(old)
    except FileNotFoundError:
        pass
    kept.append(history_entry(bench, sha))
    with open(history_path, "w", encoding="utf-8") as f:
        for entry in kept:
            json.dump(entry, f, separators=(",", ":"), sort_keys=True)
            f.write("\n")


def gate_sharded(bench: dict, prefix: str, floor: float, failed: list) -> None:
    """Apply the bit-identity (always) and speedup (wide machines only)
    gates for one sharded bench, named by its key prefix."""
    identical = bench.get(f"{prefix}_identical")
    if identical is not None and not identical:
        print(
            f"perf gate: {prefix} DIVERGED from the single-threaded oracle",
            file=sys.stderr,
        )
        failed.append(f"{prefix}_identical")

    speedup = bench.get(f"{prefix}_speedup")
    if speedup is not None:
        hw = bench.get("hw_threads", 1)
        shards = bench.get(f"{prefix}_shards", "?")
        if hw >= SHARDED_MIN_HW_THREADS:
            verdict = "ok" if speedup >= floor else "REGRESSION"
            print(
                f"perf gate: {prefix} speedup {speedup:.2f}x at {shards} shards "
                f"(floor {floor}x, {hw} hw threads)  [{verdict}]"
            )
            if speedup < floor:
                failed.append(f"{prefix}_speedup")
        else:
            print(
                f"perf gate: {prefix} speedup {speedup:.2f}x at {shards} shards "
                f"(informational: only {hw} hw thread(s), floor needs "
                f">= {SHARDED_MIN_HW_THREADS}; bit-identity still enforced)"
            )


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    with open(path, encoding="utf-8") as f:
        bench = json.load(f)

    sha = os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.check_output(
                ["git", "rev-parse", "HEAD"], text=True
            ).strip()
        except (OSError, subprocess.CalledProcessError):
            sha = "unknown"
    bench["commit"] = sha
    with open(path, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=2)
        f.write("\n")

    history_path = os.path.join(os.path.dirname(path) or ".", HISTORY)
    append_history(bench, sha, history_path)
    print(f"perf gate: appended run {sha[:12]} to {history_path} (deduped by commit)")

    speedups = bench.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"perf gate: no speedup_vs_baseline in {path}", file=sys.stderr)
        return 1

    failed = []
    for name in sorted(speedups):
        ratio = speedups[name]
        verdict = "ok" if ratio >= 1.0 else "REGRESSION"
        print(f"perf gate: {name:24s} {ratio:6.2f}x vs baseline  [{verdict}]")
        if ratio < 1.0:
            failed.append(name)

    ratio = bench.get("ctx_switch_storm_on_vs_off")
    if ratio is not None:
        print(f"perf gate: storm coalescing on-vs-off {ratio:.2f}x")

    warm = bench.get("warm_fork_speedup")
    if warm is not None:
        floor = WARM_FORK_SPEEDUP_FLOOR
        verdict = "ok" if warm >= floor else "REGRESSION"
        print(
            f"perf gate: warm-fork DSE speedup {warm:.2f}x at 9/10 fork "
            f"(floor {floor}x)  [{verdict}]"
        )
        if warm < floor:
            failed.append("warm_fork_speedup")
        # Prefix-length scaling: forking later (9/10 of the makespan) skips
        # more shared prefix than forking at 1/2, so it must pay off more.
        half = bench.get("warm_fork_speedup_half")
        if half is not None:
            verdict = "ok" if warm > half else "REGRESSION"
            print(
                f"perf gate: warm-fork speedup scaling {half:.2f}x @1/2 -> "
                f"{warm:.2f}x @9/10  [{verdict}]"
            )
            if warm <= half:
                failed.append("warm_fork_prefix_scaling")

    delta_ok = bench.get("warm_fork_delta_identical")
    if delta_ok is not None:
        if delta_ok:
            print("perf gate: warm-fork delta round trip bit-identical  [ok]")
        else:
            print(
                "perf gate: warm-fork delta restore DIVERGED from the cold run",
                file=sys.stderr,
            )
            failed.append("warm_fork_delta_identical")

    gate_sharded(bench, "sharded_soc", SHARDED_SPEEDUP_FLOOR, failed)
    gate_sharded(bench, "sharded_e12", SHARDED_E12_SPEEDUP_FLOOR, failed)

    serve = bench.get("serve_cache_hit_speedup")
    if serve is not None:
        floor = SERVE_CACHE_SPEEDUP_FLOOR
        hits = bench.get("serve_cache_hits", 0)
        points = bench.get("serve_points", 0)
        verdict = "ok" if serve >= floor else "REGRESSION"
        print(
            f"perf gate: serve cache-hit speedup {serve:.2f}x, "
            f"{hits}/{points} points from store (floor {floor}x)  [{verdict}]"
        )
        if serve < floor:
            failed.append("serve_cache_hit_speedup")
        if hits < points:
            print(
                "perf gate: repeat sweep request was NOT fully answered from the store",
                file=sys.stderr,
            )
            failed.append("serve_cache_hits")
        if not bench.get("serve_identical", True):
            print(
                "perf gate: store-served records DIVERGED from the cold run",
                file=sys.stderr,
            )
            failed.append("serve_identical")

    if failed:
        print(
            f"perf gate: FAILED — {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate: all {len(speedups)} scenarios at or above baseline ({sha[:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
