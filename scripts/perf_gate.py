#!/usr/bin/env python3
"""CI perf-regression gate for BENCH_kernel.json.

Usage: perf_gate.py [path-to-BENCH_kernel.json]

Reads the bench JSON written by `experiments --bench-json`, embeds the
commit SHA (from $GITHUB_SHA, or `git rev-parse HEAD` as a fallback) into
the file as a `"commit"` field so the uploaded artifact is traceable to
the exact revision, appends a one-line summary of the run to
`BENCH_history.jsonl` (commit, timestamp, per-bench throughput and the
live speedups) so the perf trajectory accumulates across PRs instead of
being overwritten in place, and exits non-zero if:

- any `speedup_vs_baseline` entry has dropped below 1.0 — i.e. the
  current tree is slower than the baked per-scenario baseline;
- the live `warm_fork_speedup` (cold DSE sweep vs. snapshot-forked sweep)
  falls below 1.5x;
- `sharded_soc_identical` is false — the sharded run diverged from the
  single-threaded oracle (this is a correctness gate and applies on any
  hardware);
- `sharded_soc_speedup` falls below 2.0x *when the machine has at least
  4 hardware threads* (`hw_threads`). On narrower machines the sharded
  bench cannot exhibit parallel speedup, so the number is reported
  informationally and only the bit-identity is enforced.

The baselines live in `crates/bench/src/hotpath.rs`
(`BASELINE_EVENTS_PER_SEC`); see EXPERIMENTS.md for how they were
measured and how to re-bake them.
"""

import json
import os
import subprocess
import sys
import time

HISTORY = "BENCH_history.jsonl"
SHARDED_SPEEDUP_FLOOR = 2.0
SHARDED_MIN_HW_THREADS = 4


def append_history(bench: dict, sha: str, history_path: str) -> None:
    """Append one line summarizing this run to the history file."""
    entry = {
        "commit": sha,
        "timestamp": int(time.time()),
        "schema": bench.get("schema"),
        "events_per_sec": {
            m["name"]: m.get("events_per_sec")
            for m in bench.get("current", [])
            if isinstance(m, dict) and "name" in m
        },
        "speedup_vs_baseline": bench.get("speedup_vs_baseline", {}),
    }
    for key in (
        "ctx_switch_storm_on_vs_off",
        "warm_fork_speedup",
        "sharded_soc_speedup",
        "sharded_soc_shards",
        "sharded_soc_identical",
        "hw_threads",
    ):
        if key in bench:
            entry[key] = bench[key]
    with open(history_path, "a", encoding="utf-8") as f:
        json.dump(entry, f, separators=(",", ":"), sort_keys=True)
        f.write("\n")


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "BENCH_kernel.json"
    with open(path, encoding="utf-8") as f:
        bench = json.load(f)

    sha = os.environ.get("GITHUB_SHA")
    if not sha:
        try:
            sha = subprocess.check_output(
                ["git", "rev-parse", "HEAD"], text=True
            ).strip()
        except (OSError, subprocess.CalledProcessError):
            sha = "unknown"
    bench["commit"] = sha
    with open(path, "w", encoding="utf-8") as f:
        json.dump(bench, f, indent=2)
        f.write("\n")

    history_path = os.path.join(os.path.dirname(path) or ".", HISTORY)
    append_history(bench, sha, history_path)
    print(f"perf gate: appended run {sha[:12]} to {history_path}")

    speedups = bench.get("speedup_vs_baseline", {})
    if not speedups:
        print(f"perf gate: no speedup_vs_baseline in {path}", file=sys.stderr)
        return 1

    failed = []
    for name in sorted(speedups):
        ratio = speedups[name]
        verdict = "ok" if ratio >= 1.0 else "REGRESSION"
        print(f"perf gate: {name:24s} {ratio:6.2f}x vs baseline  [{verdict}]")
        if ratio < 1.0:
            failed.append(name)

    ratio = bench.get("ctx_switch_storm_on_vs_off")
    if ratio is not None:
        print(f"perf gate: storm coalescing on-vs-off {ratio:.2f}x")

    warm = bench.get("warm_fork_speedup")
    if warm is not None:
        verdict = "ok" if warm >= 1.5 else "REGRESSION"
        print(f"perf gate: warm-fork DSE speedup {warm:.2f}x (floor 1.5x)  [{verdict}]")
        if warm < 1.5:
            failed.append("warm_fork_speedup")

    identical = bench.get("sharded_soc_identical")
    if identical is not None and not identical:
        print(
            "perf gate: sharded_soc DIVERGED from the single-threaded oracle",
            file=sys.stderr,
        )
        failed.append("sharded_soc_identical")

    sharded = bench.get("sharded_soc_speedup")
    if sharded is not None:
        hw = bench.get("hw_threads", 1)
        shards = bench.get("sharded_soc_shards", "?")
        if hw >= SHARDED_MIN_HW_THREADS:
            verdict = "ok" if sharded >= SHARDED_SPEEDUP_FLOOR else "REGRESSION"
            print(
                f"perf gate: sharded_soc speedup {sharded:.2f}x at {shards} shards "
                f"(floor {SHARDED_SPEEDUP_FLOOR}x, {hw} hw threads)  [{verdict}]"
            )
            if sharded < SHARDED_SPEEDUP_FLOOR:
                failed.append("sharded_soc_speedup")
        else:
            print(
                f"perf gate: sharded_soc speedup {sharded:.2f}x at {shards} shards "
                f"(informational: only {hw} hw thread(s), floor needs "
                f">= {SHARDED_MIN_HW_THREADS}; bit-identity still enforced)"
            )

    if failed:
        print(
            f"perf gate: FAILED — {', '.join(failed)}",
            file=sys.stderr,
        )
        return 1
    print(f"perf gate: all {len(speedups)} scenarios at or above baseline ({sha[:12]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
