//! Fault injection as a first-class, supported workflow: every test here
//! deliberately breaks something — an address decode, a slave response, a
//! context load, the bus protocol itself — and checks that the failure
//! surfaces as a *typed* [`SimError`] (or an `ok = false` record at the DSE
//! layer) while the rest of the system still runs to completion.

use drcf::prelude::*;

/// Component ids: 0 master, 1 bus, 2 memory, 3 drcf.
fn drcf_system(
    bus_mode: BusMode,
    abort: Vec<ContextId>,
    script: Vec<(BusOp, Addr, Word)>,
) -> Simulator {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x0FFF, 2).expect("memory range");
    map.add(0x2000, 0x20FF, 3).expect("DRCF range");
    sim.add("cpu", ScriptedMaster::new(1, script));
    sim.add(
        "bus",
        Bus::new(
            BusConfig {
                mode: bus_mode,
                ..BusConfig::default()
            },
            map,
        ),
    );
    sim.add(
        "mem",
        Memory::new(MemoryConfig {
            size_words: 0x1000,
            ..MemoryConfig::default()
        }),
    );
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: abort,
                coalesce_config_traffic: false,
            },
            vec![Context::new(
                Box::new(RegisterFile::new("hwa", 0x2000, 16, 2)),
                ContextParams {
                    config_addr: 0x100,
                    config_size_words: 64,
                    ..ContextParams::default()
                },
            )],
        ),
    );
    sim
}

/// A blocking master issuing one access at a time, like a SystemC thread.
struct ScriptedMaster {
    port: MasterPort,
    script: Vec<(BusOp, Addr, Word)>,
    pc: usize,
    replies: Vec<BusResponse>,
}

impl ScriptedMaster {
    fn new(bus: ComponentId, script: Vec<(BusOp, Addr, Word)>) -> Self {
        ScriptedMaster {
            port: MasterPort::new(bus, 1),
            script,
            pc: 0,
            replies: vec![],
        }
    }

    fn next(&mut self, api: &mut Api<'_>) {
        if let Some(&(op, addr, v)) = self.script.get(self.pc) {
            self.pc += 1;
            match op {
                BusOp::Read => {
                    self.port.read(api, addr, 1);
                }
                BusOp::Write => {
                    self.port.write(api, addr, vec![v]);
                }
            }
        }
    }
}

impl Component for ScriptedMaster {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        match &msg.kind {
            MsgKind::Start => self.next(api),
            _ => {
                if let Ok(r) = self.port.take_response(api, msg) {
                    self.replies.push(r);
                    self.next(api);
                }
            }
        }
    }
}

/// A CPU program touching an unmapped address: the decode miss is reported
/// as a failed run with a diagnostic, and every other instruction still
/// executes (the workload's makespan is unchanged in kind, not aborted).
#[test]
fn unmapped_address_fails_the_run_with_a_diagnostic() {
    let w = wireless_receiver(1, 32);
    let bindings = assign_bindings(&w, &SocSpec::default());
    let mut program = compile(&w.graph, &bindings, 50).expect("compile");
    program.insert(
        0,
        Instr::Read {
            addr: 0xDEAD_0000,
            burst: 1,
        },
    );
    let mut soc = build_soc(&w, &SocSpec::default()).expect("build");
    *soc.sim.get_mut::<Cpu>(0) = Cpu::new(CpuConfig::default(), 1, program);
    let (m, _) = run_soc(soc);
    assert!(!m.ok, "decode error must fail the run");
    let err = m.error.expect("failed run carries a message");
    assert!(!err.is_empty());
    assert!(
        m.makespan.as_ns_f64() > 0.0,
        "rest of the workload completed"
    );
}

/// A fault range on the bus makes an otherwise-valid slave access come
/// back as a bus error: the injected fault is counted, the CPU sees the
/// error response, and the run is reported as failed.
#[test]
fn injected_slave_bus_error_is_counted_and_reported() {
    let w = wireless_receiver(1, 32);
    let spec = SocSpec {
        bus: BusConfig {
            // Covers the memory's low words, which the workload traffic hits.
            fault_ranges: vec![(0x0, 0xFFFF)],
            ..BusConfig::default()
        },
        ..SocSpec::default()
    };
    let soc = build_soc(&w, &spec).expect("build");
    let bus_id = soc.bus;
    let (m, soc) = run_soc(soc);
    assert!(!m.ok, "injected bus faults must fail the run");
    assert!(m.error.is_some());
    assert!(
        soc.sim.get::<Bus>(bus_id).stats.injected_faults >= 1,
        "the monitor attributes the failures to fault injection"
    );
}

/// A context load aborted mid-reconfiguration (paper §5.3: the load is a
/// multi-cycle bus transfer, so it *can* be interrupted): the victim
/// context is marked failed and its requests get error responses, but the
/// simulation still drains and the abort is a typed `ConfigLoad` error.
#[test]
fn mid_reconfig_load_abort_is_a_typed_config_error() {
    let mut sim = drcf_system(
        BusMode::Split,
        vec![0],
        vec![(BusOp::Write, 0x2000, 7), (BusOp::Read, 0x2000, 0)],
    );
    let err = sim.run().expect_err("aborted load must fail the run");
    assert_eq!(err.kind, SimErrorKind::ConfigLoad, "{err}");
    assert!(err.to_string().contains("aborted"), "{err}");
    // Fault isolation: the master still got (error) responses for both
    // accesses instead of hanging forever.
    let m = sim.get::<ScriptedMaster>(0);
    assert_eq!(m.replies.len(), 2);
    assert!(m.replies.iter().all(|r| !r.is_ok()));
}

/// The same abort injected through the SoC builder's supported knob.
#[test]
fn soc_spec_forwards_load_aborts_to_the_fabric() {
    let w = wireless_receiver(1, 32);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.2, 1),
            candidates: names,
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        abort_load_of: vec![0],
        ..SocSpec::default()
    };
    let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(!m.ok, "aborted context load must fail the run");
    let err = m.error.expect("diagnostic present");
    assert!(err.contains("abort"), "{err}");
}

/// Paper §5.4 limitation 3: a blocking bus deadlocks when the DRCF must
/// load a context over the bus that is being held for the triggering
/// transfer. The kernel reports this as a typed deadlock carrying the
/// number of outstanding obligations — not as a hang or a panic.
#[test]
fn blocking_bus_deadlock_is_typed_with_obligation_count() {
    let mut sim = drcf_system(BusMode::Blocking, vec![], vec![(BusOp::Write, 0x2000, 1)]);
    let err = sim.run().expect_err("blocking bus must deadlock");
    assert!(err.is_deadlock(), "expected deadlock, got {err}");
    let pending = err.pending_obligations().expect("deadlock carries count");
    assert!(pending >= 2, "CPU txn + stuck config read, got {pending}");
    // The split-transaction fix from the paper resolves it.
    let mut fixed = drcf_system(BusMode::Split, vec![], vec![(BusOp::Write, 0x2000, 1)]);
    assert_eq!(fixed.run(), Ok(StopReason::Quiescent));
}

/// A DSE sweep where one point deadlocks and another panics: both become
/// `ok = false` records with non-empty error strings at their positions,
/// and every other point completes normally — one bad design point cannot
/// take down the exploration.
#[test]
fn sweep_isolates_deadlocking_and_panicking_points() {
    #[derive(Clone, Copy, Debug)]
    enum Point {
        Fine,
        Deadlocks,
        Panics,
    }
    let points = [Point::Fine, Point::Deadlocks, Point::Panics, Point::Fine];
    let recs = sweep(&points, |p| {
        let label = vec![("point".to_string(), format!("{p:?}"))];
        match p {
            Point::Panics => panic!("injected evaluator bug"),
            Point::Deadlocks => {
                let mut sim =
                    drcf_system(BusMode::Blocking, vec![], vec![(BusOp::Write, 0x2000, 1)]);
                match sim.run() {
                    Ok(_) => unreachable!("blocking point must deadlock"),
                    Err(e) => RunRecord::failed("fault-sweep", label, e.to_string()),
                }
            }
            Point::Fine => {
                let w = wireless_receiver(1, 32);
                let (m, _) = run_soc(build_soc(&w, &SocSpec::default()).expect("build"));
                RunRecord::from_metrics("fault-sweep", label, &m)
            }
        }
    });
    assert_eq!(recs.len(), points.len(), "one record per point, in order");
    assert!(recs[0].ok && recs[3].ok, "healthy points complete");
    assert!(!recs[1].ok && !recs[2].ok);
    let deadlock_err = recs[1].error.as_deref().expect("deadlock message");
    assert!(
        deadlock_err.to_lowercase().contains("deadlock"),
        "{deadlock_err}"
    );
    let panic_err = recs[2].error.as_deref().expect("panic message");
    assert!(panic_err.contains("injected evaluator bug"), "{panic_err}");
    // Failed points sort last under the makespan objective.
    assert!(recs[1].makespan_ns.is_infinite());
}
