//! Cross-crate integration: sharded tracing end to end.
//!
//! A multi-LP run with every LP's recorder enabled must merge into ONE
//! Chrome trace-event document that (a) round-trips through the
//! workspace JSON parser, (b) carries one process track per LP plus the
//! synthesized `round` spans on each kernel track, (c) keeps begin/end
//! span pairs balanced per track, and (d) is *identical at every shard
//! count* — the merge only uses simulated-time data, so the document is
//! part of the deterministic outcome, not of the execution mode.

use drcf::prelude::*;

fn traced_spec() -> ShardedSocSpec {
    ShardedSocSpec {
        tiles: 4,
        horizon: SimDuration::us(50),
        hash_slices: true,
        trace_capacity: Some(1 << 14),
        ..ShardedSocSpec::default()
    }
}

fn merged_doc(shards: usize) -> (ShardedSocRun, Json) {
    let run = traced_spec().run_with_shards(shards).expect("sharded run");
    let doc = chrome_trace_sharded(&run.report).expect("merge traced run");
    (run, doc)
}

#[test]
fn merged_document_is_shard_count_invariant() {
    let (r1, d1) = merged_doc(1);
    let (r2, d2) = merged_doc(2);
    let (r4, d4) = merged_doc(4);
    assert!(r1.report.same_outcome(&r2.report));
    assert!(r1.report.same_outcome(&r4.report));
    // The merge draws only on simulated-time data (harvested events,
    // round/horizon bounds, envelope counts) — never on wall clocks — so
    // the whole document, not just an event multiset, must be identical
    // whether the LPs ran inline or on 2 or 4 worker threads.
    let (t1, t2, t4) = (d1.to_string(), d2.to_string(), d4.to_string());
    assert_eq!(t1, t2, "merged trace differs between 1 and 2 shards");
    assert_eq!(t1, t4, "merged trace differs between 1 and 4 shards");
}

#[test]
fn merged_document_has_one_process_track_per_lp_with_balanced_spans() {
    let (run, doc) = merged_doc(2);
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).expect("merged trace must parse");
    let events = back
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // One process_name metadata record per LP, carrying the tile names.
    let processes: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(Json::as_str) == Some("process_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert_eq!(processes.len(), run.report.lps.len());
    for i in 0..run.report.lps.len() {
        let tile = format!("tile{i}");
        assert!(processes.contains(&tile.as_str()), "missing {tile}");
    }

    // Per (pid, tid): every E closes a B and the run ends closed — the
    // synthesized round spans land on the kernel track, where the
    // recorder emits no B/E of its own, so balance must hold everywhere.
    let key_of = |e: &Json| {
        let pid = e.get("pid").and_then(Json::as_f64)? as i64;
        let tid = e.get("tid").and_then(Json::as_f64)? as i64;
        Some((pid, tid))
    };
    let mut keys: Vec<(i64, i64)> = events.iter().filter_map(key_of).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut round_spans = 0usize;
    for key in keys {
        let mut depth = 0i64;
        for e in events.iter().filter(|e| key_of(e) == Some(key)) {
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => {
                    depth += 1;
                    if e.get("name").and_then(Json::as_str) == Some("round") {
                        round_spans += 1;
                    }
                }
                Some("E") => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B on {key:?}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unclosed spans on {key:?}");
    }
    // Every LP closes every window, so the merged document carries at
    // least one round span per LP per synchronization round.
    assert!(
        round_spans as u64 >= run.report.rounds * run.report.lps.len() as u64,
        "only {round_spans} round spans for {} rounds x {} LPs",
        run.report.rounds,
        run.report.lps.len()
    );
    // Round spans carry the horizon-bound attribution for Perfetto.
    let bound = events
        .iter()
        .find(|e| {
            e.get("name").and_then(Json::as_str) == Some("round")
                && e.get("ph").and_then(Json::as_str) == Some("B")
        })
        .and_then(|e| e.get("args")?.get("bound")?.as_str())
        .expect("round spans carry a bound arg");
    assert!(
        bound == "end" || bound == "window" || bound.starts_with("link:"),
        "unexpected bound {bound:?}"
    );
}

#[test]
fn jsonl_merge_tags_every_line_with_its_lp() {
    let (run, _) = merged_doc(2);
    let text = jsonl_sharded(&run.report).expect("jsonl merge");
    let mut event_lines = 0u64;
    let mut round_lines = 0u64;
    for line in text.lines() {
        let v = Json::parse(line).expect("each JSONL line parses");
        assert!(v.get("lp").is_some(), "line without lp tag: {line}");
        if v.get("kind").and_then(Json::as_str) == Some("round") {
            round_lines += 1;
        } else {
            event_lines += 1;
        }
    }
    let harvested: u64 = run
        .report
        .lps
        .iter()
        .map(|l| l.trace_events.len() as u64)
        .sum();
    assert_eq!(event_lines, harvested);
    assert_eq!(
        round_lines,
        run.report
            .profile
            .lps
            .iter()
            .map(|l| l.windows.len() as u64)
            .sum::<u64>()
    );
}

#[test]
fn merging_an_untraced_run_is_a_loud_typed_error() {
    let spec = ShardedSocSpec {
        trace_capacity: None,
        ..traced_spec()
    };
    let run = spec.run_with_shards(2).expect("untraced run");
    let err = chrome_trace_sharded(&run.report).expect_err("must refuse");
    assert_eq!(err.kind, SimErrorKind::Validation);
    assert!(err.message.contains("tracing is off"), "{}", err.message);
    assert!(
        jsonl_sharded(&run.report).is_err(),
        "jsonl merge must refuse too"
    );
}
