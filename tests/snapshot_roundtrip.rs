//! Snapshot/restore as a first-class, supported workflow on the full SoC:
//! a run paused mid-flight, serialized to text, restored into a freshly
//! built system, and resumed must be bit-identical to the straight run —
//! including snapshots taken mid-context-switch (configuration train in
//! flight) and runs where an injected bus fault overlapping a
//! configuration image forces the coalesced train back onto the per-burst
//! path and ends the run in a typed error.

use drcf::prelude::*;
use proptest::prelude::*;

fn drcf_spec(workload: &Workload) -> SocSpec {
    let names: Vec<String> = workload.accels.iter().map(|a| a.name.clone()).collect();
    SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(workload, &names, 1.2, 1),
            candidates: names,
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    }
}

/// Everything a run leaves behind, rendered for bit-exact comparison.
fn observables(m: &RunMetrics, soc: &BuiltSoc) -> String {
    let cpu = soc.sim.get::<Cpu>(soc.cpu);
    let fabric = soc.drcf.map(|d| soc.sim.get::<Drcf>(d));
    format!(
        "metrics={m:?} now={} read_log={:?} fabric_stats={:?}",
        soc.sim.now().as_fs(),
        cpu.read_log,
        fabric.map(|f| &f.stats),
    )
}

/// Straight run, pausing run, and text-round-tripped resumed run of the
/// same spec must agree on every observable. Returns the straight
/// observables for extra assertions.
fn assert_roundtrip(w: &Workload, spec: &SocSpec, at: SimDuration) -> String {
    let (straight_m, straight) = run_soc(build_soc(w, spec).expect("build straight"));
    let want = observables(&straight_m, &straight);

    let paused_spec = SocSpec {
        snapshot_at: Some(at),
        ..spec.clone()
    };
    let (paused_m, paused) = run_soc(build_soc(w, &paused_spec).expect("build paused"));
    assert_eq!(
        observables(&paused_m, &paused),
        want,
        "pausing to snapshot must not perturb the run"
    );

    let text = paused.snapshot.expect("snapshot captured").to_text();
    let snap = Snapshot::parse(&text).expect("snapshot text parses");
    let (resumed_m, resumed) = run_soc(restore_soc(w, spec, &snap).expect("restore"));
    assert_eq!(
        observables(&resumed_m, &resumed),
        want,
        "resumed run diverged from the straight run"
    );
    assert_eq!(
        resumed.sim.observe_events(),
        straight.sim.observe_events(),
        "trace event streams diverged"
    );
    want
}

/// The first reconfiguration window of the straight run: `(start, done)`
/// of the earliest `SwitchStart`/`SwitchDone` pair in the fabric event
/// log.
fn first_switch_window(w: &Workload, spec: &SocSpec) -> (SimTime, SimTime) {
    let (m, soc) = run_soc(build_soc(w, spec).expect("build probe"));
    assert!(m.ok, "{m:?}");
    let drcf = soc.drcf.expect("fabric mapping");
    let events = &soc.sim.get::<Drcf>(drcf).stats.events;
    let start = events
        .iter()
        .find(|e| e.kind == FabricEventKind::SwitchStart)
        .expect("a switch started")
        .at;
    let done = events
        .iter()
        .find(|e| e.kind == FabricEventKind::SwitchDone && e.at > start)
        .expect("a switch finished")
        .at;
    (start, done)
}

#[test]
fn snapshot_mid_context_switch_resumes_bit_identical() {
    let w = wireless_receiver(2, 32);
    let spec = drcf_spec(&w);
    // Snapshot strictly inside the first reconfiguration window, while the
    // coalesced configuration train is on the bus.
    let (start, done) = first_switch_window(&w, &spec);
    assert!(done > start, "switch window is non-empty");
    let mid = SimTime((start.as_fs() + done.as_fs()) / 2);
    assert!(mid > start && mid < done, "snapshot point is mid-switch");
    assert_roundtrip(&w, &spec, mid.since(SimTime::ZERO));
}

#[test]
fn snapshot_with_fault_overlap_decoalesce_resumes_identically() {
    let w = wireless_receiver(2, 32);
    let mut spec = drcf_spec(&w);
    // Overlap the *last* context's configuration image with an injected
    // bus fault range: the coalesced train over that image must fall back
    // to per-burst bursts so the fault fires exactly as modeled, and the
    // failed load surfaces as a typed error.
    let probe = build_soc(&w, &spec).expect("build probe");
    let last = probe.context_params.last().expect("contexts planned");
    spec.bus.fault_ranges = vec![(last.config_addr, last.config_addr + 4)];
    let (m, soc) = run_soc(build_soc(&w, &spec).expect("build faulty"));
    assert!(!m.ok, "the fault must end the run in a typed error");
    assert!(m.error.is_some());
    assert!(
        soc.sim.get::<Bus>(soc.bus).stats.injected_faults > 0,
        "the fault fired on the per-burst path"
    );
    // Snapshot during the *first* context's (clean) load — before the
    // poisoned image is touched — and check the resumed run reproduces
    // the identical failure.
    let drcf = soc.drcf.expect("fabric mapping");
    let events = &soc.sim.get::<Drcf>(drcf).stats.events;
    let start = events
        .iter()
        .find(|e| e.kind == FabricEventKind::SwitchStart)
        .expect("a clean switch started")
        .at;
    let done = events
        .iter()
        .find(|e| e.kind == FabricEventKind::SwitchDone && e.at > start)
        .expect("the clean switch finished")
        .at;
    let mid = SimTime((start.as_fs() + done.as_fs()) / 2);
    let got = assert_roundtrip(&w, &spec, mid.since(SimTime::ZERO));
    assert!(got.contains("ok: false"), "round-trip preserved the error");
}

/// Delta-chain round trip on the full SoC: full snapshot at `cuts[0]`,
/// one text-round-tripped `drcf-snapshot-delta-v1` document per later cut
/// (all captured on one live timeline), applied in order onto a fresh
/// full-restored system. Verifies parent-hash linkage at every link, that
/// the chain tip's `state_hash` equals an unsnapshotted run paused at the
/// last cut, and that the patched system resumes bit-identically to the
/// straight run.
fn assert_delta_chain(w: &Workload, spec: &SocSpec, cuts: &[SimDuration]) {
    assert!(cuts.len() >= 2, "need a base cut plus at least one delta");
    let (straight_m, straight) = run_soc(build_soc(w, spec).expect("build straight"));
    let want = observables(&straight_m, &straight);
    // One live timeline: full capture at the first cut, deltas after it.
    let base = snapshot_prefix(w, spec, cuts[0]).expect("capture base");
    let mut live = restore_soc(w, spec, &base).expect("restore live timeline");
    let mut deltas = Vec::new();
    let mut parent = base.state_hash();
    for &at in &cuts[1..] {
        live.sim
            .run_until(SimTime::ZERO + at)
            .expect("advance live timeline");
        let d = live.sim.snapshot_delta_from(parent).expect("capture delta");
        assert_eq!(d.parent_hash(), parent, "delta chains to its parent");
        parent = d.child_hash();
        // The delta document must survive the text round trip, like full
        // snapshots do.
        deltas.push(SnapshotDelta::parse(&d.to_text()).expect("delta text parses"));
    }
    // The chain tip must be the same state an unsnapshotted run paused at
    // the last cut captures.
    let cold = snapshot_prefix(w, spec, *cuts.last().expect("cuts")).expect("cold capture");
    assert_eq!(
        parent,
        cold.state_hash(),
        "delta-chain tip diverged from the never-snapshotted run"
    );
    // Fresh system: full restore of the base, then patch delta by delta.
    let mut patched = restore_soc(w, spec, &base).expect("full restore of base");
    for d in &deltas {
        patched.sim.restore_delta(d).expect("apply delta");
    }
    assert_eq!(
        patched.sim.current_doc_hash(),
        Some(parent),
        "patched simulator stands at the chain tip"
    );
    let resumed_m = run_soc_mut(&mut patched);
    assert_eq!(
        observables(&resumed_m, &patched),
        want,
        "delta-chain resume diverged from the straight run"
    );
}

/// Every `(SwitchStart, SwitchDone)` window of the straight run's fabric
/// event log, in order.
fn switch_windows(w: &Workload, spec: &SocSpec) -> (SimDuration, Vec<(SimTime, SimTime)>) {
    let (m, soc) = run_soc(build_soc(w, spec).expect("build probe"));
    assert!(m.ok, "{m:?}");
    let drcf = soc.drcf.expect("fabric mapping");
    let mut windows = Vec::new();
    let mut start = None;
    for e in &soc.sim.get::<Drcf>(drcf).stats.events {
        match e.kind {
            FabricEventKind::SwitchStart => start = Some(e.at),
            FabricEventKind::SwitchDone => {
                if let Some(s) = start.take() {
                    windows.push((s, e.at));
                }
            }
            _ => {}
        }
    }
    (m.makespan, windows)
}

#[test]
fn delta_chain_through_config_trains_resumes_bit_identical() {
    let w = wireless_receiver(2, 32);
    let spec = drcf_spec(&w);
    let (makespan, windows) = switch_windows(&w, &spec);
    assert!(windows.len() >= 2, "need two reconfiguration windows");
    let mid =
        |(s, d): (SimTime, SimTime)| SimTime((s.as_fs() + d.as_fs()) / 2).since(SimTime::ZERO);
    // Base captured mid-first-train (configuration words on the bus), one
    // delta captured mid-second-train, one near the end of the run: both
    // the full document and the incremental ones carry in-flight coalesced
    // train state.
    let cuts = [
        mid(windows[0]),
        mid(windows[1]),
        SimDuration::fs(makespan.as_fs() * 9 / 10),
    ];
    assert_delta_chain(&w, &spec, &cuts);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For random small workloads, snapshot fractions, and tracing
    /// settings, restore-then-resume is bit-identical to the straight run
    /// (RunMetrics, CPU read log, FabricStats, trace event streams).
    #[test]
    fn restore_vs_straight_run(
        frames in 1usize..3,
        samples_pow in 4u32..6,
        num in 1u64..8,
        traced in any::<bool>(),
    ) {
        let w = wireless_receiver(frames, 1usize << samples_pow);
        let mut spec = drcf_spec(&w);
        if traced {
            spec.trace_capacity = Some(1 << 14);
        }
        let (m, _) = run_soc(build_soc(&w, &spec).expect("build probe"));
        prop_assert!(m.ok, "{m:?}");
        let at = SimDuration::fs(m.makespan.as_fs() * num / 8);
        assert_roundtrip(&w, &spec, at);
    }

    /// Random mutation schedules: a full snapshot at a random fraction of
    /// the makespan followed by deltas captured at random later fractions
    /// (all on one live timeline) must chain by parent hash, land on the
    /// identical `state_hash` as an unsnapshotted run, and resume
    /// bit-identically to the straight run after a full-restore + patch.
    #[test]
    fn delta_chain_vs_full_restore_and_straight_run(
        frames in 1usize..3,
        samples_pow in 4u32..6,
        base in 1u64..6,
        steps in proptest::collection::vec(1u64..4, 1..4),
        traced in any::<bool>(),
    ) {
        let w = wireless_receiver(frames, 1usize << samples_pow);
        let mut spec = drcf_spec(&w);
        if traced {
            spec.trace_capacity = Some(1 << 14);
        }
        let (m, _) = run_soc(build_soc(&w, &spec).expect("build probe"));
        prop_assert!(m.ok, "{m:?}");
        // Strictly increasing tenths of the makespan: the base fraction,
        // then one cut per step, capped inside the run.
        let mut tenths = vec![base];
        for s in steps {
            let last = *tenths.last().expect("cuts");
            let next = (last + s).min(9);
            if next > last {
                tenths.push(next);
            }
        }
        let cuts: Vec<SimDuration> = tenths
            .iter()
            .map(|&n| SimDuration::fs(m.makespan.as_fs() * n / 10))
            .collect();
        assert_delta_chain(&w, &spec, &cuts);
    }
}
