//! Cross-crate integration: the structured-tracing pipeline end to end.
//!
//! A full-system DRCF run with the recorder on must export a Chrome
//! trace-event document that (a) round-trips through the workspace JSON
//! parser, (b) has one named track per active component, and (c) carries
//! balanced, properly stacked begin/end span pairs on every track — the
//! property that makes the file loadable by Perfetto without repair.

use drcf::prelude::*;

fn traced_soc() -> (RunMetrics, BuiltSoc) {
    let w = wireless_receiver(2, 32);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.2, 1),
            candidates: names,
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        trace_capacity: Some(1 << 18),
        ..SocSpec::default()
    };
    run_soc(build_soc(&w, &spec).expect("build"))
}

#[test]
fn perfetto_export_round_trips_with_balanced_spans() {
    let (m, soc) = traced_soc();
    assert!(m.ok, "{m:?}");
    assert_eq!(
        soc.sim.recorder().dropped(),
        0,
        "ring buffer was large enough — wraparound would unbalance spans"
    );

    let doc = chrome_trace(&soc.sim);
    let text = doc.to_string_pretty();
    let back = Json::parse(&text).expect("exported trace must parse");
    let events = back
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    // One named track per instrumented component (lane 0), plus the
    // fabric's background-load lane and the kernel phase track.
    let tracks: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    for expected in ["cpu", "system_bus", "drcf", "drcf:1", "kernel"] {
        assert!(
            tracks.contains(&expected),
            "missing track {expected:?} in {tracks:?}"
        );
    }

    // Per track: every E closes a B, depth never goes negative, and the
    // run ends with every span closed.
    let tid_of = |e: &Json| e.get("tid").and_then(Json::as_f64).map(|t| t as i64);
    let mut tids: Vec<i64> = events.iter().filter_map(tid_of).collect();
    tids.sort_unstable();
    tids.dedup();
    let mut total_spans = 0usize;
    for tid in tids {
        let mut depth = 0i64;
        for e in events.iter().filter(|e| tid_of(e) == Some(tid)) {
            match e.get("ph").and_then(Json::as_str) {
                Some("B") => {
                    depth += 1;
                    total_spans += 1;
                }
                Some("E") => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B on tid {tid}");
                }
                _ => {}
            }
        }
        assert_eq!(depth, 0, "unclosed spans on tid {tid}");
    }
    assert!(total_spans > 10, "a real run produces many spans");

    // Timestamps are non-decreasing (Perfetto tolerates but flags
    // out-of-order events; the recorder is chronological by construction).
    let mut last = f64::MIN;
    for e in events {
        if let Some(ts) = e.get("ts").and_then(Json::as_f64) {
            assert!(ts >= last, "timestamps regressed");
            last = ts;
        }
    }
}

#[test]
fn jsonl_export_parses_line_by_line() {
    let (m, soc) = traced_soc();
    assert!(m.ok);
    let text = jsonl(&soc.sim);
    let mut lines = 0;
    for line in text.lines() {
        let v = Json::parse(line).expect("each JSONL line parses");
        assert!(v.get("ts_fs").is_some());
        assert!(v.get("comp").and_then(Json::as_str).is_some());
        lines += 1;
    }
    assert_eq!(lines, soc.sim.observe_events().len());
}

#[test]
fn disabled_recorder_exports_empty_but_valid_documents() {
    let w = wireless_receiver(1, 16);
    let (m, soc) = run_soc(build_soc(&w, &SocSpec::default()).expect("build"));
    assert!(m.ok);
    let doc = chrome_trace(&soc.sim);
    let back = Json::parse(&doc.to_string()).unwrap();
    assert_eq!(
        back.get("traceEvents")
            .and_then(Json::as_arr)
            .map(<[Json]>::len),
        Some(0)
    );
    assert!(jsonl(&soc.sim).is_empty());
}
