//! Cross-crate integration: the transformation methodology end to end,
//! including property-based equivalence over randomized designs and
//! access scripts.

use drcf::prelude::*;
use drcf::transform::prelude::{BlockProfile, ProfileData};
use drcf_bus::prelude::BusOp;
use proptest::prelude::*;

fn template_opts() -> TemplateOptions {
    TemplateOptions::new(morphosys(), FabricGeometry::new(64_000, 1))
}

fn split() -> ConfigTransport {
    ConfigTransport::SharedInterfaceBus {
        split_transactions: true,
    }
}

/// Probe master identical to the bench one but local to the test.
struct Probe {
    port: MasterPort,
    script: Vec<(BusOp, Addr, Word)>,
    pc: usize,
    reads: Vec<Vec<Word>>,
}

impl Component for Probe {
    fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
        let issue = |s: &mut Self, api: &mut Api<'_>| {
            if let Some(&(op, addr, v)) = s.script.get(s.pc) {
                s.pc += 1;
                match op {
                    BusOp::Read => {
                        s.port.read(api, addr, 1);
                    }
                    BusOp::Write => {
                        s.port.write(api, addr, vec![v]);
                    }
                }
            }
        };
        match &msg.kind {
            MsgKind::Start => issue(self, api),
            _ => {
                if let Ok(r) = self.port.take_response(api, msg) {
                    assert!(r.is_ok(), "{r:?}");
                    if r.op == BusOp::Read {
                        self.reads.push(r.data);
                    }
                    issue(self, api);
                }
            }
        }
    }
}

fn run_script(
    design: &drcf::transform::design::Design,
    script: Vec<(BusOp, Addr, Word)>,
) -> Vec<Vec<Word>> {
    let e = elaborate(
        design,
        ElaborationOptions::default(),
        vec![(
            "probe".into(),
            Box::new(move |bus| {
                Box::new(Probe {
                    port: MasterPort::new(bus, 1),
                    script,
                    pc: 0,
                    reads: vec![],
                })
            }),
        )],
    )
    .expect("elaborate");
    let mut sim = e.sim;
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));
    sim.get::<Probe>(e.masters[0]).reads.clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any design size, any candidate subset and any access script,
    /// the transformed design is observationally equivalent to the
    /// original.
    #[test]
    fn transformation_preserves_behavior(
        n_acc in 2usize..5,
        fold_mask in 1u32..16,
        ops in proptest::collection::vec((any::<bool>(), 0u64..4u64, 0u64..16, 0u64..100), 1..24),
    ) {
        let design = example_design(n_acc);
        let fold: Vec<String> = (0..n_acc)
            .filter(|i| fold_mask & (1 << i) != 0)
            .map(|i| format!("hwa{i}"))
            .collect();
        prop_assume!(!fold.is_empty());
        let fold_refs: Vec<&str> = fold.iter().map(String::as_str).collect();
        let result = transform_design(&design, &fold_refs, &template_opts(), split())
            .expect("legal transformation");

        // Script over the accelerators' register windows (each claims 16
        // words from 0x2000 + i*0x100).
        let script: Vec<(BusOp, Addr, Word)> = ops
            .iter()
            .map(|&(is_read, acc, off, v)| {
                let addr = 0x2000 + (acc % n_acc as u64) * 0x100 + (off % 16);
                (if is_read { BusOp::Read } else { BusOp::Write }, addr, v)
            })
            .collect();
        let a = run_script(&design, script.clone());
        let b = run_script(&result.design, script);
        prop_assert_eq!(a, b);
    }

    /// The §5.1 rule engine never groups blocks whose overlap exceeds the
    /// threshold, and groups are size-coherent.
    #[test]
    fn candidate_groups_respect_rules(
        busys in proptest::collection::vec(0.0f64..1.0, 2..7),
        gates in proptest::collection::vec(2_000u64..80_000, 2..7),
        overlaps in proptest::collection::vec(0.0f64..0.4, 0..20),
    ) {
        let n = busys.len().min(gates.len());
        let blocks: Vec<BlockProfile> = (0..n)
            .map(|i| BlockProfile {
                instance: format!("b{i}"),
                busy_fraction: busys[i],
                gate_count: gates[i],
                change_prone: false,
            })
            .collect();
        let mut overlap = Vec::new();
        let mut k = 0;
        for i in 0..n {
            for j in (i + 1)..n {
                if k < overlaps.len() {
                    overlap.push((format!("b{i}"), format!("b{j}"), overlaps[k]));
                    k += 1;
                }
            }
        }
        let profile = ProfileData {
            blocks: blocks.clone(),
            overlap,
        };
        let rules = SelectionRules::default();
        let groups = select_candidates(&profile, &rules);
        for g in &groups {
            // Utilization rule (no change-prone blocks in this test).
            for name in &g.instances {
                let b = blocks.iter().find(|b| &b.instance == name).unwrap();
                prop_assert!(b.busy_fraction <= rules.max_utilization);
            }
            // Overlap rule.
            for (x, a) in g.instances.iter().enumerate() {
                for b in &g.instances[x + 1..] {
                    prop_assert!(profile.overlap_of(a, b) <= rules.max_overlap);
                }
            }
            // Size-coherence rule.
            let sizes: Vec<u64> = g
                .instances
                .iter()
                .map(|name| blocks.iter().find(|b| &b.instance == name).unwrap().gate_count)
                .collect();
            let lo = *sizes.iter().min().unwrap();
            let hi = *sizes.iter().max().unwrap();
            prop_assert!(hi as f64 / lo as f64 <= rules.max_size_ratio);
        }
    }
}

/// Deadlock-risk candidate sets are rejected before any simulation is
/// built — the static check matches the dynamic outcome.
#[test]
fn static_deadlock_check_matches_dynamic_behavior() {
    let design = example_design(2);
    // Static: rejected.
    let blocking = ConfigTransport::SharedInterfaceBus {
        split_transactions: false,
    };
    assert!(transform_design(&design, &["hwa0", "hwa1"], &template_opts(), blocking).is_err());

    // Dynamic: forcing the same configuration anyway deadlocks.
    let result = transform_design(&design, &["hwa0", "hwa1"], &template_opts(), split())
        .expect("legal under split");
    let e = elaborate(
        &result.design,
        ElaborationOptions {
            bus: BusConfig {
                mode: BusMode::Blocking,
                ..BusConfig::default()
            },
            ..ElaborationOptions::default()
        },
        vec![(
            "probe".into(),
            Box::new(|bus| {
                Box::new(Probe {
                    port: MasterPort::new(bus, 1),
                    script: vec![(BusOp::Write, 0x2000, 1)],
                    pc: 0,
                    reads: vec![],
                })
            }),
        )],
    )
    .expect("elaborate");
    let mut sim = e.sim;
    assert!(sim.run().is_err_and(|e| e.is_deadlock()));
}

/// §5.3 step 5 requires the DRCF to "keep track of each context's active
/// time and of the time the DRCF spends reconfiguring itself". The derived
/// [`ReconfigTimeline`] must agree exactly with that raw accounting: row
/// sums reproduce the fabric's aggregate counters, per-context figures
/// match `per_context`, and per-context reconfiguration intervals (derived
/// from the SwitchStart/SwitchDone event log) sum to the fabric's total.
#[test]
fn reconfig_timeline_agrees_with_step5_accounting() {
    let w = wireless_receiver(3, 48);
    let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
    let spec = SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(&w, &names, 1.2, 1),
            candidates: names.clone(),
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig::default(),
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    };
    let (m, soc) = run_soc(build_soc(&w, &spec).expect("build"));
    assert!(m.ok, "{m:?}");
    let drcf_id = soc.drcf.expect("mapping folds a fabric");
    let stats = &soc.sim.get::<Drcf>(drcf_id).stats;

    // The timeline in the metrics is the one derived from these stats.
    let t = &m.timeline;
    assert_eq!(t.rows.len(), stats.per_context.len());
    assert_eq!(t.switches, stats.switches);
    assert_eq!(t.config_words, stats.config_words);
    assert_eq!(
        t.total_reconfig,
        stats.reconfig + stats.reconfig_overlapped,
        "blocking + overlapped reconfiguration"
    );
    assert_eq!(t.blocking_reconfig, stats.reconfig);
    assert_eq!(t.overlapped_reconfig, stats.reconfig_overlapped);

    // Per-context rows restate per_context verbatim...
    for (i, row) in t.rows.iter().enumerate() {
        let cs = &stats.per_context[i];
        assert_eq!(row.name, names[i]);
        assert_eq!(row.activations, cs.switches_in);
        assert_eq!(row.accesses, cs.accesses);
        assert_eq!(row.active, cs.active);
        assert_eq!(row.wait, cs.wait);
    }
    // ...and the per-context reconfiguration split (from the event log)
    // sums back to the aggregate, since every load completed.
    let row_reconfig: SimDuration = t
        .rows
        .iter()
        .fold(SimDuration::ZERO, |acc, r| acc + r.reconfig);
    assert_eq!(row_reconfig, t.total_reconfig);
    assert_eq!(t.contexts_loaded, 3, "all three kernels loaded");
    assert_eq!(t.total_active(), stats.total_active());

    // The invariant the paper's instrumentation is built on still holds.
    assert!(stats.invariant_holds(soc.sim.now()));
}

/// Emitted listings of the transformed design always contain the DRCF
/// skeleton markers the paper's listing shows.
#[test]
fn emitted_listings_have_paper_structure() {
    for n in 2..5usize {
        let design = example_design(n);
        let fold: Vec<String> = (0..n).map(|i| format!("hwa{i}")).collect();
        let fold_refs: Vec<&str> = fold.iter().map(String::as_str).collect();
        let r = transform_design(&design, &fold_refs, &template_opts(), split()).unwrap();
        let txt = emit_design(&r.design);
        assert!(txt.contains("class drcf_own : public sc_module"));
        assert!(txt.contains("SC_THREAD(arb_and_instr);"));
        assert!(txt.contains("drcf1 = new drcf_own(\"DRCF1\");"));
        for i in 0..n {
            assert!(
                txt.contains(&format!("hwacc{i} *hwacc{i}_i;")),
                "context decl {i}"
            );
        }
    }
}
