//! Cross-crate equivalence: the coalesced configuration-traffic fast path
//! must be a pure wall-clock optimization. For any SoC the full run record
//! — makespan, bus utilization and words, per-master contention rows,
//! reconfiguration timeline, context counters, energy — is bit-identical
//! with `coalesce_config_traffic` on and off, including runs where a fault
//! forces the bus back onto the per-burst path mid-load.

use drcf::prelude::*;
use proptest::prelude::*;

/// Build the spec both ways and return the two full run records plus the
/// final simulated times. Everything except the internal event count must
/// match.
fn run_both(workload: &Workload, spec: &SocSpec) -> ((String, u64), (String, u64), (u64, u64)) {
    let observe = |coalesce: bool| {
        let spec = SocSpec {
            coalesce_config_traffic: coalesce,
            ..spec.clone()
        };
        let (m, soc) = run_soc(build_soc(workload, &spec).expect("build"));
        let now = soc.sim.now();
        (
            (format!("{m:?}"), now.as_fs()),
            soc.sim.metrics().dispatched,
        )
    };
    let (off, ev_off) = observe(false);
    let (on, ev_on) = observe(true);
    ((off.0, off.1), (on.0, on.1), (ev_off, ev_on))
}

fn drcf_spec(workload: &Workload, slots: usize) -> SocSpec {
    let names: Vec<String> = workload.accels.iter().map(|a| a.name.clone()).collect();
    SocSpec {
        mapping: Mapping::Drcf {
            geometry: size_fabric(workload, &names, 1.2, 1),
            candidates: names,
            technology: morphosys(),
            config_path: SocConfigPath::SystemBus,
            scheduler: SchedulerConfig {
                slots,
                ..SchedulerConfig::default()
            },
            overlap_load_exec: false,
        },
        ..SocSpec::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized workload shapes, memory timings and poll cadences: the
    /// coalesced and per-burst worlds produce identical run records.
    #[test]
    fn coalescing_preserves_the_full_run_record(
        kind in 0u8..3,
        frames in 2usize..5,
        words in 16usize..96,
        read_latency in 1u64..6,
        write_latency in 1u64..4,
        per_word in 0u64..3,
        poll in 20u64..80,
        slots in 1usize..3,
    ) {
        let w = match kind {
            0 => wireless_receiver(frames, words),
            1 => video_pipeline(frames, words),
            _ => multi_standard(frames + 1, words, 2),
        };
        let mut spec = drcf_spec(&w, slots);
        spec.memory = MemoryConfig {
            base: 0,
            size_words: 0x20000,
            read_latency,
            write_latency,
            per_word,
            ..MemoryConfig::default()
        };
        spec.poll_interval_cycles = poll;
        let (off, on, _) = run_both(&w, &spec);
        prop_assert_eq!(off, on);
    }

    /// Fault injection: aborting a context's load mid-reconfiguration makes
    /// the fabric re-issue traffic on the per-burst path. The two worlds
    /// must still agree on every observable, fault handling included.
    #[test]
    fn coalescing_preserves_fault_injected_runs(
        frames in 2usize..5,
        words in 24usize..80,
        victim in 0usize..3,
        read_latency in 1u64..5,
    ) {
        let w = multi_standard(frames + 1, words, 1);
        let mut spec = drcf_spec(&w, 1);
        spec.memory = MemoryConfig {
            base: 0,
            size_words: 0x20000,
            read_latency,
            ..MemoryConfig::default()
        };
        spec.abort_load_of = vec![victim];
        let (off, on, _) = run_both(&w, &spec);
        prop_assert_eq!(off, on);
    }
}

/// On a storm-shaped workload (repeated context switches over the system
/// bus) coalescing strictly reduces the kernel's dispatched-event count
/// while leaving the record untouched — the optimization actually engages.
#[test]
fn coalescing_reduces_event_count_on_switch_heavy_runs() {
    let w = multi_standard(6, 64, 1);
    let spec = drcf_spec(&w, 1);
    let (off, on, (ev_off, ev_on)) = run_both(&w, &spec);
    assert_eq!(off, on);
    assert!(
        ev_on < ev_off,
        "coalescing must shrink the event count: {ev_on} vs {ev_off}"
    );
}
