//! Cross-crate integration: full SoC runs spanning every layer of the
//! stack (kernel → bus → fabric → SoC → DSE).

use drcf::prelude::*;

/// Every workload completes on every mapping with zero bus errors and a
/// consistent fabric accounting.
#[test]
fn all_workloads_complete_on_both_architectures() {
    let workloads = vec![
        wireless_receiver(3, 64),
        video_pipeline(3, 64),
        multi_standard(6, 32, 2),
    ];
    for w in workloads {
        let fixed = run_soc(build_soc(&w, &SocSpec::default()).expect("fixed build")).0;
        assert!(fixed.ok, "{}: fixed run failed", w.name);
        assert_eq!(fixed.errors, 0, "{}", w.name);

        let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
        let spec = SocSpec {
            mapping: Mapping::Drcf {
                geometry: size_fabric(&w, &names, 1.2, 1),
                candidates: names,
                technology: morphosys(),
                config_path: SocConfigPath::SystemBus,
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
            },
            ..SocSpec::default()
        };
        let folded = run_soc(build_soc(&w, &spec).expect("drcf build")).0;
        assert!(folded.ok, "{}: drcf run failed", w.name);
        assert_eq!(folded.errors, 0, "{}", w.name);
        assert!(folded.switches > 0, "{}", w.name);
        assert!(folded.makespan >= fixed.makespan, "{}", w.name);
        assert!(folded.area_gates < fixed.area_gates, "{}", w.name);
    }
}

/// Two identical builds produce bit-identical metrics (determinism across
/// the full stack).
#[test]
fn full_stack_determinism() {
    let run = || {
        let w = multi_standard(5, 48, 1);
        let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
        let spec = SocSpec {
            mapping: Mapping::Drcf {
                geometry: size_fabric(&w, &names, 1.1, 2),
                candidates: names,
                technology: varicore(),
                config_path: SocConfigPath::SystemBus,
                scheduler: SchedulerConfig {
                    slots: 2,
                    ..SchedulerConfig::default()
                },
                overlap_load_exec: false,
            },
            memory: MemoryConfig {
                base: 0,
                size_words: 0x20000,
                ..MemoryConfig::default()
            },
            ..SocSpec::default()
        };
        let (m, soc) = run_soc(build_soc(&w, &spec).expect("build"));
        (
            m.makespan,
            m.bus_words,
            m.switches,
            m.config_words,
            soc.sim.metrics(),
        )
    };
    assert_eq!(run(), run());
}

/// The rayon-parallel sweep gives the identical records as the serial one
/// for a real multi-configuration exploration.
#[test]
fn parallel_sweep_equals_serial() {
    let points: Vec<(u64, usize)> = cartesian2(&[32u64, 64], &[1usize, 2]);
    let eval = |&(samples, slots): &(u64, usize)| {
        let w = wireless_receiver(2, samples as usize);
        let names: Vec<String> = w.accels.iter().map(|a| a.name.clone()).collect();
        let spec = SocSpec {
            mapping: Mapping::Drcf {
                geometry: size_fabric(&w, &names, 1.1, slots),
                candidates: names,
                technology: morphosys(),
                config_path: SocConfigPath::SystemBus,
                scheduler: SchedulerConfig {
                    slots,
                    ..SchedulerConfig::default()
                },
                overlap_load_exec: false,
            },
            ..SocSpec::default()
        };
        let (m, _) = run_soc(build_soc(&w, &spec).expect("build"));
        RunRecord::from_metrics(
            "sweep",
            vec![
                ("samples".into(), samples.to_string()),
                ("slots".into(), slots.to_string()),
            ],
            &m,
        )
    };
    let par = sweep(&points, eval);
    let ser = sweep_serial(&points, eval);
    assert_eq!(par, ser);
    assert_eq!(par.len(), 4);
}

/// The DMA moves application data while the fabric reconfigures over the
/// same bus — contention integrates correctly (no deadlock in split mode,
/// both finish).
#[test]
fn dma_and_fabric_share_the_bus() {
    let mut sim = Simulator::new();
    let mut map = AddressMap::new();
    map.add(0x0000, 0x7FFF, 2).unwrap(); // memory
    map.add(0x8000, 0x800F, 3).unwrap(); // fabric
    map.add(0xD000, 0xD003, 4).unwrap(); // DMA registers

    // Driver: kick a DMA copy, then poke the fabric (forcing a config load
    // that competes with the DMA for the bus).
    struct Driver {
        port: MasterPort,
        step: usize,
        done: bool,
    }
    impl Component for Driver {
        fn handle(&mut self, api: &mut Api<'_>, msg: Msg) {
            match &msg.kind {
                MsgKind::Start => {
                    api.send(
                        4,
                        DmaProgram {
                            src: 0x1000,
                            dst: 0x2000,
                            words: 256,
                            notify: 0,
                            tag: 1,
                        },
                        Delay::Delta,
                    );
                    self.port.write(api, 0x8000, vec![7]);
                }
                _ => {
                    if msg.user_ref::<DmaDone>().is_some() {
                        self.done = true;
                        return;
                    }
                    if self.port.take_response(api, msg).is_ok() {
                        self.step += 1;
                    }
                }
            }
        }
    }
    sim.add(
        "driver",
        Driver {
            port: MasterPort::new(1, 1),
            step: 0,
            done: false,
        },
    );
    sim.add("bus", Bus::new(BusConfig::default(), map));
    let mut mem = Memory::new(MemoryConfig {
        size_words: 0x8000,
        ..MemoryConfig::default()
    });
    for i in 0..256 {
        mem.poke(0x1000 + i, i + 1);
    }
    sim.add("mem", mem);
    sim.add(
        "drcf",
        Drcf::new(
            DrcfConfig {
                clock_mhz: 100,
                config_path: ConfigPath::SystemBus {
                    bus: 1,
                    priority: 3,
                    burst: 16,
                },
                scheduler: SchedulerConfig::default(),
                overlap_load_exec: false,
                abort_load_of: vec![],
                coalesce_config_traffic: false,
            },
            vec![Context::new(
                Box::new(RegisterFile::new("ctx", 0x8000, 16, 1)),
                ContextParams {
                    config_addr: 0x100,
                    config_size_words: 512,
                    ..ContextParams::default()
                },
            )],
        ),
    );
    sim.add("dma", Dma::new(DmaConfig::default(), 1));
    assert_eq!(sim.run(), Ok(StopReason::Quiescent));

    let driver = sim.get::<Driver>(0);
    assert!(driver.done, "DMA must complete");
    assert_eq!(driver.step, 1, "fabric access must complete");
    let mem = sim.get::<Memory>(2);
    assert_eq!(mem.peek(0x2000 + 255), Some(256), "DMA data landed");
    let fabric = sim.get::<Drcf>(3);
    assert_eq!(fabric.stats.switches, 1);
    let bus = sim.get::<Bus>(1);
    // All three masters (driver=0, fabric=3, DMA=4) were granted the bus.
    assert!(bus.stats.grants_for(0) >= 1, "driver granted");
    assert!(bus.stats.grants_for(3) >= 1, "fabric config reads granted");
    assert!(bus.stats.grants_for(4) >= 1, "DMA granted");
}

/// Error injection: a CPU program touching an unmapped address keeps the
/// system running to completion, but the run is reported as failed with a
/// typed error message instead of silently succeeding.
#[test]
fn unmapped_access_is_survivable() {
    let w = wireless_receiver(1, 32);
    let bindings = assign_bindings(&w, &SocSpec::default());
    let mut program = compile(&w.graph, &bindings, 50).unwrap();
    program.insert(
        0,
        Instr::Read {
            addr: 0xDEAD_0000,
            burst: 1,
        },
    );
    // Build normally, then swap in the fault-injected program.
    let mut soc = build_soc(&w, &SocSpec::default()).unwrap();
    *soc.sim.get_mut::<Cpu>(0) = Cpu::new(CpuConfig::default(), 1, program);
    let (m, soc) = run_soc(soc);
    assert!(!m.ok, "the injected decode error escalates to a failed run");
    let err = m.error.as_deref().unwrap_or("");
    assert!(!err.is_empty(), "failed runs carry a diagnostic message");
    assert_eq!(m.errors, 1, "exactly the injected error");
    assert!(
        soc.sim.reports().count(Severity::Warning) >= 1
            || soc.sim.reports().count(Severity::Error) >= 1
    );
    // Fault isolation: the rest of the workload still ran to completion.
    assert!(m.makespan.as_ns_f64() > 0.0, "workload still completed");
}
